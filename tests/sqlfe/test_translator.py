"""Tests for SQL → QuerySpec translation against a catalog."""

import pytest

from repro.algebra.expressions import And, Comparison, Or
from repro.core.statistics import AttributeStats, CollectionStats
from repro.errors import QueryError, UnknownAttributeError, UnknownCollectionError
from repro.mediator.catalog import MediatorCatalog
from repro.sqlfe.translator import translate_sql


@pytest.fixture
def catalog():
    catalog = MediatorCatalog()
    emp = CollectionStats.from_extent(
        "Emp",
        100,
        50,
        attributes=[
            AttributeStats("eid"),
            AttributeStats("dept"),
            AttributeStats("salary"),
        ],
    )
    dept = CollectionStats.from_extent(
        "Dept", 10, 30, attributes=[AttributeStats("did"), AttributeStats("city")]
    )
    catalog.add_collection("Emp", "w1", ("eid", "dept", "salary"), emp)
    catalog.add_collection("Dept", "w2", ("did", "city"), dept)
    return catalog


class TestResolution:
    def test_unqualified_attribute_resolved(self, catalog):
        spec = translate_sql("SELECT * FROM Emp WHERE salary = 1", catalog)
        predicate = spec.filters["Emp"][0]
        assert predicate.left.collection == "Emp"

    def test_qualified_attribute_kept(self, catalog):
        spec = translate_sql("SELECT * FROM Emp WHERE Emp.salary = 1", catalog)
        assert spec.filters["Emp"][0].left.collection == "Emp"

    def test_unknown_collection(self, catalog):
        with pytest.raises(UnknownCollectionError):
            translate_sql("SELECT * FROM Nope", catalog)

    def test_unknown_attribute(self, catalog):
        with pytest.raises(UnknownAttributeError):
            translate_sql("SELECT * FROM Emp WHERE zzz = 1", catalog)

    def test_qualifier_not_in_from(self, catalog):
        with pytest.raises(QueryError):
            translate_sql("SELECT * FROM Emp WHERE Dept.city = 'x'", catalog)


class TestClassification:
    def test_filters_and_joins_split(self, catalog):
        spec = translate_sql(
            "SELECT * FROM Emp, Dept "
            "WHERE Emp.dept = Dept.did AND salary > 10 AND city = 'Paris'",
            catalog,
        )
        assert len(spec.joins) == 1
        assert [str(p) for p in spec.filters["Emp"]] == ["Emp.salary > 10"]
        assert [str(p) for p in spec.filters["Dept"]] == ["Dept.city = 'Paris'"]

    def test_join_on_syntax(self, catalog):
        spec = translate_sql(
            "SELECT * FROM Emp JOIN Dept ON Emp.dept = Dept.did", catalog
        )
        assert len(spec.joins) == 1

    def test_single_collection_or_is_filter(self, catalog):
        spec = translate_sql(
            "SELECT * FROM Emp WHERE salary = 1 OR salary = 2", catalog
        )
        assert isinstance(spec.filters["Emp"][0], Or)

    def test_between_becomes_range_filter(self, catalog):
        spec = translate_sql(
            "SELECT * FROM Emp WHERE salary BETWEEN 5 AND 9", catalog
        )
        # BETWEEN expands to two conjuncts classified separately.
        predicates = spec.filters["Emp"]
        assert len(predicates) == 2
        assert {p.op for p in predicates} == {">=", "<="}

    def test_cross_collection_or_rejected(self, catalog):
        with pytest.raises(QueryError):
            translate_sql(
                "SELECT * FROM Emp, Dept "
                "WHERE Emp.dept = Dept.did AND (salary = 1 OR city = 'x')",
                catalog,
            )

    def test_non_equi_join_rejected(self, catalog):
        with pytest.raises(QueryError):
            translate_sql(
                "SELECT * FROM Emp, Dept WHERE Emp.dept < Dept.did", catalog
            )


class TestSelectShapes:
    def test_projection(self, catalog):
        spec = translate_sql("SELECT eid, salary FROM Emp", catalog)
        assert spec.projection == ["eid", "salary"]

    def test_star_projection(self, catalog):
        spec = translate_sql("SELECT * FROM Emp", catalog)
        assert spec.projection is None

    def test_aggregates(self, catalog):
        spec = translate_sql(
            "SELECT dept, COUNT(*) AS n, AVG(salary) AS pay "
            "FROM Emp GROUP BY dept",
            catalog,
        )
        assert spec.group_by == ["dept"]
        assert [a.alias for a in spec.aggregates] == ["n", "pay"]

    def test_group_by_without_aggregate_rejected(self, catalog):
        with pytest.raises(QueryError):
            translate_sql("SELECT dept FROM Emp GROUP BY dept", catalog)

    def test_stray_column_with_aggregate_rejected(self, catalog):
        with pytest.raises(QueryError):
            translate_sql(
                "SELECT salary, COUNT(*) AS n FROM Emp GROUP BY dept", catalog
            )

    def test_order_and_distinct(self, catalog):
        spec = translate_sql(
            "SELECT DISTINCT dept FROM Emp ORDER BY dept DESC", catalog
        )
        assert spec.distinct
        assert spec.order_by == ["dept"]
        assert spec.order_descending


class TestQuerySpecValidation:
    def test_duplicate_collections_rejected(self, catalog):
        with pytest.raises(QueryError):
            translate_sql("SELECT * FROM Emp, Emp", catalog)
