"""Tests for column aliases flowing through translation and execution."""

import pytest

from repro.errors import QueryError


class TestAliasTranslation:
    def test_alias_recorded_as_rename(self, federation):
        spec = federation.parse("SELECT sid AS supplier_id FROM Suppliers")
        assert spec.projection == ["supplier_id"]
        assert spec.projection_renames == {"supplier_id": "sid"}

    def test_unaliased_columns_have_no_renames(self, federation):
        spec = federation.parse("SELECT sid, city FROM Suppliers")
        assert spec.projection == ["sid", "city"]
        assert spec.projection_renames == {}

    def test_mixed(self, federation):
        spec = federation.parse("SELECT sid, city AS location FROM Suppliers")
        assert spec.projection == ["sid", "location"]
        assert spec.projection_renames == {"location": "city"}


class TestAliasExecution:
    def test_rows_carry_alias_names(self, federation):
        result = federation.query(
            "SELECT sid AS supplier_id, city FROM Suppliers WHERE sid = 3"
        )
        assert result.rows == [{"supplier_id": 3, "city": "city3"}]

    def test_alias_in_union_compatibility(self, federation):
        result = federation.query(
            "SELECT sid AS k FROM Suppliers WHERE sid < 3 "
            "UNION ALL SELECT oid AS k FROM Orders WHERE oid < 2"
        )
        assert sorted(r["k"] for r in result.rows) == [0, 0, 1, 1, 2]

    def test_incompatible_aliases_rejected(self, federation):
        with pytest.raises(QueryError, match="not compatible"):
            federation.parse(
                "SELECT sid AS a FROM Suppliers UNION ALL "
                "SELECT oid AS b FROM Orders"
            )

    def test_distinct_over_aliased_projection(self, federation):
        result = federation.query(
            "SELECT DISTINCT city AS place FROM Suppliers"
        )
        assert sorted(r["place"] for r in result.rows) == [
            f"city{i}" for i in range(5)
        ]
