"""Unit tests for the SQL parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sqlfe.parser import parse_sql
from repro.sqlfe.sql_ast import (
    AndCond,
    BetweenCond,
    ColumnRef,
    ComparisonCond,
    Literal,
    NotCond,
    OrCond,
)


class TestSelectList:
    def test_select_star(self):
        query = parse_sql("SELECT * FROM Emp")
        assert query.select_star
        assert query.collections == ["Emp"]

    def test_columns(self):
        query = parse_sql("SELECT name, Emp.salary FROM Emp")
        assert query.items[0].column == ColumnRef("name")
        assert query.items[1].column == ColumnRef("salary", "Emp")

    def test_aliases(self):
        query = parse_sql("SELECT salary AS pay FROM Emp")
        assert query.items[0].alias == "pay"
        assert query.items[0].output_name == "pay"

    def test_aggregates(self):
        query = parse_sql("SELECT COUNT(*) AS n, AVG(salary) FROM Emp")
        assert query.items[0].aggregate == "count"
        assert query.items[0].aggregate_arg is None
        assert query.items[1].aggregate == "avg"
        assert query.items[1].output_name == "avg(salary)"

    def test_sum_star_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT SUM(*) FROM Emp")

    def test_keywords_case_insensitive(self):
        query = parse_sql("select * from Emp where salary = 1")
        assert query.collections == ["Emp"]


class TestFromClause:
    def test_comma_list(self):
        query = parse_sql("SELECT * FROM A, B, C")
        assert query.collections == ["A", "B", "C"]

    def test_join_on(self):
        query = parse_sql("SELECT * FROM A JOIN B ON A.x = B.y")
        assert query.collections == ["A", "B"]
        join = query.joins_on[0]
        assert join.left == ColumnRef("x", "A")
        assert join.right == ColumnRef("y", "B")

    def test_chained_joins(self):
        query = parse_sql(
            "SELECT * FROM A JOIN B ON A.x = B.y JOIN C ON B.z = C.w"
        )
        assert query.collections == ["A", "B", "C"]
        assert len(query.joins_on) == 2


class TestWhere:
    def test_simple_comparison(self):
        query = parse_sql("SELECT * FROM E WHERE salary = 100")
        condition = query.where
        assert isinstance(condition, ComparisonCond)
        assert condition.op == "="
        assert condition.right == Literal(100)

    def test_all_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            query = parse_sql(f"SELECT * FROM E WHERE x {op} 1")
            assert query.where.op == op

    def test_diamond_not_equal(self):
        query = parse_sql("SELECT * FROM E WHERE x <> 1")
        assert query.where.op == "!="

    def test_string_literal(self):
        query = parse_sql("SELECT * FROM E WHERE name = 'Naacke'")
        assert query.where.right == Literal("Naacke")

    def test_float_literal(self):
        query = parse_sql("SELECT * FROM E WHERE x = 2.5")
        assert query.where.right == Literal(2.5)

    def test_and_or_not_precedence(self):
        query = parse_sql("SELECT * FROM E WHERE a = 1 OR b = 2 AND c = 3")
        condition = query.where
        assert isinstance(condition, OrCond)
        assert isinstance(condition.right, AndCond)

    def test_parentheses(self):
        query = parse_sql("SELECT * FROM E WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(query.where, AndCond)
        assert isinstance(query.where.left, OrCond)

    def test_not(self):
        query = parse_sql("SELECT * FROM E WHERE NOT a = 1")
        assert isinstance(query.where, NotCond)

    def test_between(self):
        query = parse_sql("SELECT * FROM E WHERE x BETWEEN 1 AND 9")
        condition = query.where
        assert isinstance(condition, BetweenCond)
        assert (condition.low.value, condition.high.value) == (1, 9)

    def test_comments_skipped(self):
        query = parse_sql("SELECT * -- everything\nFROM E")
        assert query.collections == ["E"]


class TestGroupOrder:
    def test_group_by(self):
        query = parse_sql("SELECT dept, COUNT(*) AS n FROM E GROUP BY dept")
        assert query.group_by == [ColumnRef("dept")]

    def test_order_by_defaults_ascending(self):
        query = parse_sql("SELECT * FROM E ORDER BY salary")
        assert query.order_by == [ColumnRef("salary")]
        assert not query.order_descending

    def test_order_by_desc(self):
        query = parse_sql("SELECT * FROM E ORDER BY salary DESC")
        assert query.order_descending

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT dept FROM E").distinct


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT *")

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM E banana")

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM E WHERE name = 'oops")

    def test_bad_operator(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM E WHERE a ~ 1")

    def test_join_on_requires_comparison(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM A JOIN B ON A.x BETWEEN 1 AND 2")

    def test_error_position(self):
        with pytest.raises(SqlSyntaxError) as exc_info:
            parse_sql("SELECT *\nFROM E WHERE @")
        assert exc_info.value.line == 2
