"""Smoke tests for the experiment modules at reduced scale.

The full-scale shape assertions live in ``benchmarks/``; these tests keep
``pytest tests/`` covering the harness code paths quickly.
"""

import pytest

from repro.bench.accuracy import run_accuracy
from repro.bench.clustering import run_clustering
from repro.bench.federation import MODELS, run_federation_experiment
from repro.bench.fig12 import run_fig12
from repro.bench.harness import ErrorSummary, format_table
from repro.bench.history_bench import run_history
from repro.bench.overhead import run_overhead
from repro.bench.plan_quality import run_plan_quality
from repro.oo7 import TINY


SMALL_WORKLOAD = (
    ("point", "SELECT * FROM AtomicParts WHERE Id = 3"),
    (
        "join",
        "SELECT * FROM Orders, Suppliers "
        "WHERE Orders.supplier = Suppliers.sid AND Suppliers.city = 'city0'",
    ),
)


class TestHarness:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [[1, 2.5], [10, 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "0.25" in text

    def test_format_table_nan_dash(self):
        text = format_table(("x",), [[float("nan")]])
        assert "-" in text

    def test_error_summary_stats(self):
        summary = ErrorSummary.from_pairs([(110, 100), (90, 100), (100, 100)])
        assert summary.count == 3
        assert summary.mean_relative_error == pytest.approx(0.2 / 3)
        assert summary.median_relative_error == pytest.approx(0.1)
        assert summary.max_relative_error == pytest.approx(0.1)

    def test_error_summary_empty(self):
        import math

        summary = ErrorSummary.from_pairs([])
        assert summary.count == 0
        assert math.isnan(summary.mean_relative_error)


class TestFig12Module:
    def test_small_run_has_expected_columns(self):
        result = run_fig12(config=TINY, selectivities=(0.1, 0.5))
        assert len(result.points) == 2
        assert result.points[0].selectivity == 0.1
        assert result.points[1].measured_ms > result.points[0].measured_ms
        assert "Experiment" in result.table()
        assert "yao rule" in result.error_table()


class TestFederationModule:
    def test_experiment_runs_all_models(self):
        experiment = run_federation_experiment(
            config=TINY, workload=SMALL_WORKLOAD
        )
        assert {r.model for r in experiment.records} == set(MODELS)
        assert {r.label for r in experiment.records} == {"point", "join"}

    def test_reports_render(self):
        quality = run_plan_quality(config=TINY, workload=SMALL_WORKLOAD)
        assert "TOTAL" in quality.table()
        accuracy = run_accuracy(config=TINY, workload=SMALL_WORKLOAD)
        assert "blended" in accuracy.table()
        assert "point" in accuracy.detail_table()

    def test_record_lookup_raises_on_unknown(self):
        experiment = run_federation_experiment(
            config=TINY, workload=SMALL_WORKLOAD, models=("generic",)
        )
        with pytest.raises(KeyError):
            experiment.record_for("generic", "nope")


class TestOverheadModule:
    def test_small_overhead_run(self):
        result = run_overhead(rule_counts=(5, 20), repetitions=5)
        assert len(result.dispatch_rows) == 2
        assert result.dispatch_rows[0][0] == 5
        assert "virtual-table" in result.dispatch_table()
        assert len(result.pruning_rows) == 2
        assert len(result.propagation_rows) == 2
        assert len(result.conflict_rows) == 2


class TestHistoryModule:
    def test_history_result_tables(self):
        result = run_history(config=TINY)
        assert result.convergence_rows[0][0] == 1
        assert "query-scope" in result.generalization_table()
        assert result.base_error > 0


class TestClusteringModule:
    def test_small_clustering_run(self):
        result = run_clustering(selectivities=(0.05, 0.2), count=1400)
        assert len(result.points) == 2
        for point in result.points:
            assert point.clustered_pages <= point.scattered_pages
        assert "clustering" in result.table()


class TestParallelModule:
    def test_e8_json_dict_is_machine_readable(self):
        import json

        from repro.bench.parallel import run_parallel_experiment

        experiment = run_parallel_experiment()
        doc = json.loads(json.dumps(experiment.to_json_dict()))
        assert doc["experiment"] == "E8"
        assert all(row["rows_identical"] for row in doc["dispatch"])
        assert all(row["saved_ms"] >= 0 for row in doc["dispatch"])
        cache_by_run = {row["run"]: row for row in doc["cache"]}
        assert cache_by_run["second"]["cache_hits"] > 0
        assert (
            cache_by_run["second"]["elapsed_ms"]
            < cache_by_run["first"]["elapsed_ms"]
        )


class TestTelemetryModule:
    def test_e9_small_run(self):
        import json

        from repro.bench.telemetry import run_telemetry_experiment

        experiment = run_telemetry_experiment(repetitions=3)
        assert experiment.simulated_ms_identical
        assert experiment.metrics_consistent
        assert experiment.drift_cells > 0
        assert len(experiment.mode_rows) == 2
        assert "telemetry" in experiment.overhead_table()
        assert "submit spans" in experiment.trace_table()
        doc = json.loads(json.dumps(experiment.to_json_dict()))
        assert doc["experiment"] == "E9"
        assert all(t["spans"] > 0 for t in doc["traces"])


class TestResilienceModule:
    def test_e10_small_run(self):
        import json

        from repro.bench.resilience import run_fault_experiment

        experiment = run_fault_experiment(probabilities=(0.0, 0.5), rounds=1)
        doc = json.loads(json.dumps(experiment.to_json_dict()))
        assert doc["experiment"] == "E10"
        cells = {cell["probability"]: cell for cell in doc["cells"]}
        # Fault-free cell: every query answers in both modes, nothing retried.
        clean = cells[0.0]
        assert clean["strict_answered_rate"] == 1.0
        assert clean["partial_complete_rate"] == 1.0
        assert clean["retries"] == 0
        assert clean["breaker_trips"] == 0
        # Faulty cell: partial mode still answers every query.
        faulty = cells[0.5]
        complete = faulty["partial_complete_rate"] * faulty["queries"]
        assert complete + faulty["partial_degraded"] == faulty["queries"]
        assert faulty["retries"] > 0
        assert "answered" in experiment.table()


class TestServingModule:
    def test_e11_fast_run(self):
        import json

        from repro.bench.serving import run_serving_experiment

        experiment = run_serving_experiment(fast=True)
        doc = json.loads(json.dumps(experiment.to_json_dict()))
        assert doc["experiment"] == "E11"
        ladder = {run["label"]: run for run in doc["throughput"]}
        # Every admitted query completes at every concurrency level.
        for run in ladder.values():
            assert run["completed"] == run["submitted"] - run["rejected"]
        # Concurrency > 1 actually overlaps queries...
        widest = ladder[max(ladder, key=lambda k: ladder[k]["max_in_flight"])]
        assert widest["max_in_flight"] > 1
        assert widest["cross_query_waves"] > 0
        # ...and finishes the same workload in less simulated time.
        assert widest["makespan_ms"] < ladder["1"]["makespan_ms"]
        assert widest["plan_cache_hits"] > 0

    def test_e11_fairness_and_backpressure(self):
        from repro.bench.serving import run_serving_experiment

        experiment = run_serving_experiment(fast=True)
        fairness = experiment.fairness_run
        favored = fairness.tenant("dashboards")  # quota 3
        standard = fairness.tenant("analytics")  # quota 1
        # Both tenants run the identical query mix; the quota-3 tenant
        # must wait less, and neither may starve.
        assert favored.mean_queue_wait_ms < standard.mean_queue_wait_ms
        assert favored.completed > 0 and standard.completed > 0
        backpressure = experiment.backpressure_run
        assert backpressure.rejected > 0
        assert set(backpressure.rejected_by_reason) <= {
            "estimate_exceeds_budget",
            "queue_full",
            "degraded",
        }
        assert "tenant" in experiment.fairness_table()
        assert "rejected" in experiment.backpressure_table()


class TestShardingModule:
    def test_e12_fast_run(self):
        import json

        from repro.bench.sharding import run_sharding_experiment

        experiment = run_sharding_experiment(fast=True)
        doc = json.loads(json.dumps(experiment.to_json_dict()))
        assert doc["experiment"] == "E12"
        # The paper-shaped claim the sweep exists to show: for every
        # multi-shard federation, estimated AND simulated TotalTime drop
        # as more of the workload aligns with the shard key.
        assert doc["pruning_wins"] is True
        cells = {
            (cell["shards"], cell["alignment"]): cell
            for cell in doc["cells"]
        }
        # Fully oblivious workload fans out to every shard; fully
        # aligned workload prunes every query to one branch.
        assert cells[(4, 0.0)]["mean_branches"] == 4.0
        assert cells[(4, 1.0)]["mean_branches"] == 1.0
        # The 1-shard column is flat — no fan-out to save.
        one = [c for (s, _), c in cells.items() if s == 1]
        assert len({c["mean_branches"] for c in one}) == 1
        assert "pruning" in experiment.table()


class TestCalibrationModule:
    def test_e13_fast_run(self):
        import json

        from repro.bench.calibration import run_calibration_experiment

        experiment = run_calibration_experiment(fast=True)
        doc = json.loads(json.dumps(experiment.to_json_dict()))
        assert doc["experiment"] == "E13"
        # The acceptance bar from ISSUE.md: post-shift tail median
        # q-error of the calibrated arm ≤ 0.5× the uncalibrated control.
        assert doc["passed"] is True
        assert doc["recovered_ratio"] <= 0.5
        calibrated = doc["arms"]["calibrated"]
        control = doc["arms"]["control"]
        # The control arm never fits, never versions, never moves.
        assert control["fits"] == 0
        assert control["active_version"] == 0
        assert control["final_multiplier"] == 1.0
        # The calibrated arm actually adapted.
        assert calibrated["overlays"] >= 1
        assert calibrated["active_version"] >= 1
        assert calibrated["final_multiplier"] != 1.0
        # Recovery means the tail beats the post-shift spike.
        phases = {p["phase"]: p for p in calibrated["phases"]}
        assert phases["recovered"]["median_q"] < phases["adapting"]["median_q"]
        assert "recovered" in experiment.table()
        assert "PASS" in experiment.summary()


class TestHotpathModule:
    def test_e14_fast_run(self):
        import json

        from repro.bench.hotpath import run_hotpath_experiment

        experiment = run_hotpath_experiment(fast=True)
        doc = json.loads(json.dumps(experiment.to_json_dict()))
        assert doc["experiment"] == "E14"
        # The headline figure: a positive plans-costed-per-second rate,
        # profiled and unprofiled.
        assert doc["plans_per_second"] > 0
        assert doc["baseline_plans_per_second"] > 0
        assert doc["candidates_per_second"] > 0
        # The structural invariant: optimize ⊇ candidate ⊇ estimate.
        assert doc["phases_nested"] is True
        assert doc["phases"]["optimize"]["calls"] == doc["plans"]
        assert doc["phases"]["candidate"]["calls"] >= doc["plans"]
        assert "plans" in experiment.table()
        assert "plans/s" in experiment.summary()


class TestReplicationModule:
    def test_e15_small_run(self):
        import json

        from repro.bench.replication import run_replication_experiment

        experiment = run_replication_experiment(
            rounds=20, hedge_delays=(300.0, 1_200.0)
        )
        doc = json.loads(json.dumps(experiment.to_json_dict()))
        assert doc["experiment"] == "E15"
        arms = {arm["label"]: arm for arm in doc["availability"]}
        # The mid-run kill degrades the control but not the replica set.
        assert arms["control"]["complete_rate"] <= 0.5
        assert arms["control"]["failovers"] == 0
        assert arms["replicated"]["complete_rate"] >= 0.99
        assert arms["replicated"]["failovers"] >= 1
        assert arms["replicated"]["replica_served"] > 0
        # Hedging sweep: the control is first, each hedged cell records
        # extra work relative to it.
        cells = doc["hedging"]
        assert cells[0]["delay_ms"] is None
        assert all(cell["hedges_launched"] > 0 for cell in cells[1:])
        assert all(cell["extra_work"] >= 0.0 for cell in cells[1:])
        # The headline claim: some in-budget delay beats the unhedged
        # p99 by >= 20% with <= 10% extra wrapper work.
        assert doc["best_delay_ms"] is not None
        assert doc["p99_improvement"] >= 0.20
        assert "hedge delay" in experiment.table()


class TestBenchJsonOutput:
    def test_out_dir_writer(self, tmp_path):
        import json

        from repro.bench.__main__ import parse_out_dir, write_json

        write_json(str(tmp_path), "BENCH_TEST.json", {"experiment": "T"})
        written = json.loads((tmp_path / "BENCH_TEST.json").read_text())
        assert written == {"experiment": "T"}
        assert parse_out_dir(["prog", "--out-dir", "x"]) == "x"
        assert parse_out_dir(["prog"]) is None
        with pytest.raises(SystemExit):
            parse_out_dir(["prog", "--out-dir"])
