"""Unit tests for algebra expressions and predicates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.expressions import (
    And,
    AttributeRef,
    Comparison,
    Literal,
    Not,
    Or,
    TruePredicate,
    attr,
    between,
    conjunction,
    eq,
    lit,
)
from repro.errors import PlanError


class TestAttributeRef:
    def test_bare_name(self):
        assert attr("salary").evaluate({"salary": 10}) == 10

    def test_qualified_preferred(self):
        row = {"Employee.salary": 1, "salary": 2}
        assert attr("salary", "Employee").evaluate(row) == 1

    def test_qualified_falls_back_to_bare(self):
        assert attr("salary", "Employee").evaluate({"salary": 2}) == 2

    def test_bare_falls_back_to_any_qualified(self):
        assert attr("salary").evaluate({"Employee.salary": 3}) == 3

    def test_missing_attribute_raises(self):
        with pytest.raises(PlanError):
            attr("salary").evaluate({"age": 1})

    def test_qualified_spelling(self):
        assert attr("salary", "Employee").qualified == "Employee.salary"
        assert str(attr("salary")) == "salary"


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", 10, True),
            ("=", 11, False),
            ("!=", 11, True),
            ("<", 11, True),
            ("<=", 10, True),
            (">", 9, True),
            (">=", 10, True),
            (">", 10, False),
        ],
    )
    def test_operators(self, op, value, expected):
        predicate = Comparison(op, attr("x"), lit(value))
        assert predicate.evaluate({"x": 10}) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            Comparison("~", attr("x"), lit(1))

    def test_null_never_matches(self):
        assert Comparison("=", attr("x"), lit(None)).evaluate({"x": None}) is False

    def test_negate_flips_operator(self):
        predicate = Comparison("<", attr("x"), lit(5))
        negated = predicate.negate()
        assert negated.op == ">="
        assert negated.evaluate({"x": 5}) is True

    def test_flipped_swaps_operands(self):
        predicate = Comparison("<", lit(5), attr("x"))
        flipped = predicate.flipped()
        assert flipped.op == ">"
        assert isinstance(flipped.left, AttributeRef)

    def test_normalized_produces_attr_value(self):
        predicate = Comparison("=", lit(5), attr("x"))
        assert predicate.normalized().is_attr_value

    def test_shape_predicates(self):
        assert eq("a", 1).is_attr_value
        assert Comparison("=", attr("a"), attr("b")).is_attr_attr
        assert Comparison("=", lit(1), attr("a")).is_value_attr


class TestBooleanConnectives:
    def test_and_or_not(self):
        row = {"x": 5}
        p = eq("x", 5)
        q = eq("x", 6)
        assert And(p, q).evaluate(row) is False
        assert Or(p, q).evaluate(row) is True
        assert Not(q).evaluate(row) is True

    def test_not_negate_unwraps(self):
        p = eq("x", 5)
        assert Not(p).negate() is p

    def test_conjuncts_flatten(self):
        p, q, r = eq("x", 1), eq("y", 2), eq("z", 3)
        combined = And(And(p, q), r)
        assert list(combined.conjuncts()) == [p, q, r]

    def test_true_predicate(self):
        assert TruePredicate().evaluate({}) is True
        assert list(TruePredicate().conjuncts()) == []

    def test_conjunction_builder(self):
        assert isinstance(conjunction([]), TruePredicate)
        p = eq("x", 1)
        assert conjunction([p]) is p
        combined = conjunction([p, eq("y", 2), TruePredicate()])
        assert len(list(combined.conjuncts())) == 2

    def test_between(self):
        predicate = between("x", 1, 5)
        assert predicate.evaluate({"x": 3}) is True
        assert predicate.evaluate({"x": 0}) is False
        assert predicate.evaluate({"x": 5}) is True

    def test_attributes_collected(self):
        predicate = And(eq("x", 1), Or(eq("y", 2), Not(eq("z", 3))))
        assert predicate.attributes() == {"x", "y", "z"}


class TestProperties:
    @given(
        value=st.integers(-100, 100),
        low=st.integers(-100, 100),
        high=st.integers(-100, 100),
    )
    def test_between_matches_python_semantics(self, value, low, high):
        predicate = between("x", low, high)
        assert predicate.evaluate({"x": value}) == (low <= value <= high)

    @given(value=st.integers(-50, 50), threshold=st.integers(-50, 50))
    def test_negation_is_complement(self, value, threshold):
        predicate = Comparison("<", attr("x"), lit(threshold))
        row = {"x": value}
        assert predicate.negate().evaluate(row) == (not predicate.evaluate(row))
