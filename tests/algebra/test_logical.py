"""Unit tests for the logical plan algebra."""

import pytest

from repro.algebra.builders import count_star, scan
from repro.algebra.expressions import Comparison, attr, eq, lit
from repro.algebra.logical import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Join,
    Project,
    Scan,
    Select,
    Sort,
    Submit,
    Union,
    strip_submits,
    validate_plan,
)
from repro.errors import PlanError


class TestConstruction:
    def test_scan_requires_collection(self):
        with pytest.raises(PlanError):
            Scan("")

    def test_project_requires_attributes(self):
        with pytest.raises(PlanError):
            Project(Scan("E"), [])

    def test_sort_requires_keys(self):
        with pytest.raises(PlanError):
            Sort(Scan("E"), [])

    def test_submit_requires_wrapper(self):
        with pytest.raises(PlanError):
            Submit(Scan("E"), "")

    def test_join_requires_attr_attr_predicate(self):
        with pytest.raises(PlanError):
            Join(Scan("A"), Scan("B"), eq("x", 1))

    def test_aggregate_spec_validation(self):
        with pytest.raises(PlanError):
            AggregateSpec("median", "x", "m")
        with pytest.raises(PlanError):
            AggregateSpec("sum", None, "s")
        assert count_star().function == "count"

    def test_aggregate_needs_something(self):
        with pytest.raises(PlanError):
            Aggregate(Scan("E"), [], [])


class TestTreeStructure:
    def make_plan(self):
        return (
            scan("Employee")
            .where_eq("salary", 10)
            .keep("name")
            .submit_to("w")
            .build()
        )

    def test_walk_preorder(self):
        plan = self.make_plan()
        names = [n.operator_name for n in plan.walk()]
        assert names == ["submit", "project", "select", "scan"]

    def test_depth_and_count(self):
        plan = self.make_plan()
        assert plan.depth() == 4
        assert plan.node_count() == 4

    def test_node_ids_unique(self):
        plan = self.make_plan()
        ids = [n.node_id for n in plan.walk()]
        assert len(set(ids)) == len(ids)

    def test_base_collections(self):
        plan = scan("A").join(scan("B"), "x", "y").build()
        assert plan.base_collections() == {"A", "B"}

    def test_primary_collection_single(self):
        assert self.make_plan().primary_collection() == "Employee"

    def test_primary_collection_join_is_none(self):
        plan = scan("A").join(scan("B"), "x", "y").build()
        assert plan.primary_collection() is None

    def test_pretty_renders_indented_tree(self):
        text = self.make_plan().pretty()
        assert "submit[w]" in text
        assert "  project(name)" in text
        assert "      scan(Employee)" in text


class TestValidation:
    def test_valid_plan_passes(self):
        plan = (
            scan("A")
            .submit_to("w1")
            .join(scan("B").submit_to("w2"), "x", "y", "A", "B")
            .build()
        )
        validate_plan(plan)

    def test_nested_submit_rejected(self):
        plan = Submit(Submit(Scan("A"), "w1"), "w2")
        with pytest.raises(PlanError, match="nested submit"):
            validate_plan(plan)

    def test_swapped_join_sides_detected(self):
        plan = Join(
            Scan("A"),
            Scan("B"),
            Comparison("=", attr("y", "B"), attr("x", "A")),
        )
        with pytest.raises(PlanError, match="swapped"):
            validate_plan(plan)

    def test_unknown_join_collection_detected(self):
        plan = Join(
            Scan("A"),
            Scan("B"),
            Comparison("=", attr("x", "Zzz"), attr("y", "B")),
        )
        with pytest.raises(PlanError, match="unknown collection"):
            validate_plan(plan)


class TestStripSubmits:
    def test_removes_all_submits(self):
        plan = (
            scan("A")
            .where_eq("x", 1)
            .submit_to("w1")
            .join(scan("B").submit_to("w2"), "x", "y")
            .build()
        )
        stripped = strip_submits(plan)
        assert all(n.operator_name != "submit" for n in stripped.walk())

    def test_preserves_structure(self):
        plan = (
            scan("A")
            .where_eq("x", 1)
            .keep("x")
            .order_by("x")
            .distinct()
            .submit_to("w")
            .build()
        )
        stripped = strip_submits(plan)
        names = [n.operator_name for n in stripped.walk()]
        assert names == ["distinct", "sort", "project", "select", "scan"]

    def test_union_and_aggregate_survive(self):
        plan = (
            scan("A")
            .union(scan("B"))
            .aggregate(group_by=["x"], aggregates=[count_star()])
            .build()
        )
        stripped = strip_submits(plan)
        assert stripped.operator_name == "aggregate"
        assert isinstance(stripped, Aggregate)
        assert isinstance(stripped.child, Union)

    def test_distinct_describe(self):
        assert Distinct(Scan("E")).describe() == "distinct()"
