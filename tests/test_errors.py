"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.CdlError,
            errors.CdlSyntaxError,
            errors.CdlCompileError,
            errors.CostModelError,
            errors.FormulaError,
            errors.UnknownStatisticError,
            errors.NoApplicableRuleError,
            errors.CalibrationError,
            errors.QueryError,
            errors.SqlSyntaxError,
            errors.PlanError,
            errors.UnknownCollectionError,
            errors.UnknownAttributeError,
            errors.CapabilityError,
            errors.RegistrationError,
            errors.StorageError,
            errors.PageError,
            errors.IndexError_,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_cdl_errors_group(self):
        assert issubclass(errors.CdlSyntaxError, errors.CdlError)
        assert issubclass(errors.CdlCompileError, errors.CdlError)

    def test_cost_errors_group(self):
        for exc in (
            errors.FormulaError,
            errors.UnknownStatisticError,
            errors.NoApplicableRuleError,
            errors.CalibrationError,
        ):
            assert issubclass(exc, errors.CostModelError)

    def test_query_errors_group(self):
        for exc in (
            errors.SqlSyntaxError,
            errors.PlanError,
            errors.UnknownCollectionError,
            errors.CapabilityError,
            errors.RegistrationError,
        ):
            assert issubclass(exc, errors.QueryError)


class TestPositions:
    def test_cdl_syntax_error_formats_position(self):
        error = errors.CdlSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3
        assert error.column == 7

    def test_sql_syntax_error_without_position(self):
        error = errors.SqlSyntaxError("oops")
        assert str(error) == "oops"
        assert error.line == 0

    def test_catch_all_at_boundary(self):
        """A client can guard the whole mediator with one except clause."""
        from repro.mediator.mediator import Mediator

        mediator = Mediator()
        with pytest.raises(errors.ReproError):
            mediator.query("SELECT * FROM Nowhere")
        with pytest.raises(errors.ReproError):
            mediator.query("SELECT FROM WHERE")
