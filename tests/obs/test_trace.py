"""Span tracer unit tests: structure, timing, export, null tracer."""

import json

from repro.obs.trace import NULL_SPAN, NULL_TRACER, NullTracer, Span, SpanTracer
from repro.sources.clock import CostProfile, SimClock


class FakeClock:
    def __init__(self):
        self.now_ms = 0.0

    def advance(self, ms):
        self.now_ms += ms


class TestSpanTree:
    def test_nesting_follows_start_end_order(self):
        tracer = SpanTracer()
        root = tracer.start("query", kind="query")
        child = tracer.start("optimize", kind="phase")
        grandchild = tracer.start("estimate", kind="estimate")
        tracer.end(grandchild)
        tracer.end(child)
        tracer.end(root)
        assert tracer.roots == [root]
        assert root.children == [child]
        assert child.children == [grandchild]
        assert tracer.current is None

    def test_durations_come_from_the_simulated_clock(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        span = tracer.start("work")
        clock.advance(125.0)
        tracer.end(span)
        assert span.duration_ms == 125.0
        assert span.start_ms == 0.0 and span.end_ms == 125.0

    def test_real_sim_clock_timestamps(self):
        clock = SimClock(CostProfile())
        tracer = SpanTracer(clock)
        with tracer.span("io") as span:
            clock.advance(clock.profile.io_ms)
        assert span.duration_ms == clock.profile.io_ms

    def test_context_manager_closes_on_exception(self):
        tracer = SpanTracer()
        try:
            with tracer.span("failing") as span:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert span.end_ms is not None
        assert tracer.current is None

    def test_out_of_order_end_pops_through(self):
        tracer = SpanTracer()
        outer = tracer.start("outer")
        tracer.start("inner")  # never explicitly ended
        tracer.end(outer)
        assert tracer.current is None

    def test_event_is_zero_duration_child(self):
        tracer = SpanTracer()
        with tracer.span("parent") as parent:
            event = tracer.event("cache.hit", kind="cache", wrapper="oo7")
        assert event in parent.children
        assert event.duration_ms == 0.0
        assert event.attributes["wrapper"] == "oo7"

    def test_walk_find_and_set(self):
        tracer = SpanTracer()
        with tracer.span("query", kind="query"):
            with tracer.span("submit:oo7", kind="submit") as submit:
                submit.set(rows=7)
            with tracer.span("submit:sales", kind="submit"):
                pass
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == [
            "query",
            "submit:oo7",
            "submit:sales",
        ]
        submits = root.find(kind="submit")
        assert len(submits) == 2
        assert submits[0].attributes == {"rows": 7}
        assert root.find(name="submit:oo7") == [submits[0]]


class TestExport:
    def _tree(self):
        tracer = SpanTracer(FakeClock())
        with tracer.span("query", kind="query"):
            with tracer.span("execute", kind="phase"):
                tracer.clock.advance(10.0)
        return tracer

    def test_json_lines_round_trip(self):
        tracer = self._tree()
        records = [json.loads(line) for line in tracer.to_json_lines().splitlines()]
        assert len(records) == 2
        by_id = {r["id"]: r for r in records}
        root = next(r for r in records if r["parent"] is None)
        child = next(r for r in records if r["parent"] is not None)
        assert by_id[child["parent"]] is root
        assert child["name"] == "execute"
        assert child["duration_ms"] == 10.0

    def test_render_indents_children(self):
        text = self._tree().roots[0].render()
        lines = text.splitlines()
        assert lines[0].startswith("query [query]")
        assert lines[1].startswith("  execute [phase]")

    def test_to_dict_nests_children(self):
        doc = self._tree().roots[0].to_dict()
        assert doc["name"] == "query"
        assert doc["children"][0]["name"] == "execute"
        assert doc["children"][0]["duration_ms"] == 10.0

    def test_reset_drops_finished_trees(self):
        tracer = self._tree()
        tracer.reset()
        assert tracer.roots == []


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert SpanTracer().enabled is True

    def test_all_operations_are_no_ops(self):
        tracer = NullTracer()
        span = tracer.start("anything", kind="submit", wrapper="oo7")
        assert span is NULL_SPAN
        tracer.end(span, rows=3)
        with tracer.span("ctx") as ctx_span:
            ctx_span.set(ignored=True)
        tracer.event("cache.hit")
        assert tracer.roots == []
        assert NULL_SPAN.attributes == {}
        assert tracer.to_json_lines() == ""

    def test_null_span_swallows_set(self):
        NULL_SPAN.set(anything=1)
        assert NULL_SPAN.attributes == {}

    def test_isinstance_compatible(self):
        # Instrumented components type their slot as SpanTracer; the null
        # object must satisfy it.
        assert isinstance(NULL_TRACER, SpanTracer)
        assert isinstance(NULL_SPAN, Span)
