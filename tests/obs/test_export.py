"""Trace export round-tripping: JSON-lines and Chrome trace-event.

Both exporters must be lossless over ids, parent links and attributes:
``to_json_lines`` -> ``spans_from_json_lines`` and ``chrome_trace`` ->
``spans_from_chrome_trace`` each reconstruct a forest structurally
identical to the recorded one.  The Chrome document also has to be a
valid trace-event file (``traceEvents`` with X/i/M phases and
process/thread metadata) so it loads in chrome://tracing and Perfetto.
"""

import json

import pytest

from repro.bench.sharding import build_sharded_federation
from repro.obs import ObservabilityOptions
from repro.obs.export import (
    BRANCH_LANE_BASE,
    MEDIATOR_LANE,
    SHARD_LANE_BASE,
    chrome_trace,
    chrome_trace_events,
    chrome_trace_json,
    spans_from_chrome_trace,
)
from repro.obs.trace import Span, SpanTracer, spans_from_json_lines

SCATTER_SQL = "SELECT * FROM Orders WHERE qty > 70"


def structure(roots):
    """Comparable forest shape: every span's identity and parentage."""
    out = []

    def visit(span, parent_index):
        index = len(out)
        out.append(
            (
                span.name,
                span.kind,
                round(span.start_ms, 9),
                round(span.duration_ms, 9),
                dict(span.attributes),
                parent_index,
            )
        )
        for child in span.children:
            visit(child, index)

    for root in roots:
        visit(root, None)
    return out


@pytest.fixture(scope="module")
def recorded_tracer():
    mediator = build_sharded_federation(
        3, 300, observability=ObservabilityOptions.all_on()
    )
    mediator.query(SCATTER_SQL)
    return mediator.telemetry.tracer


class TestJsonLinesRoundTrip:
    def test_scatter_trace_round_trips(self, recorded_tracer):
        text = recorded_tracer.to_json_lines()
        restored = spans_from_json_lines(text)
        assert structure(restored) == structure(recorded_tracer.roots)

    def test_hand_built_forest_round_trips(self):
        tracer = SpanTracer()
        with tracer.span("a", kind="phase", x=1):
            tracer.event("marker", kind="event", note="hi")
            with tracer.span("b", kind="submit", wrapper="w"):
                pass
        with tracer.span("second-root"):
            pass
        restored = spans_from_json_lines(tracer.to_json_lines())
        assert structure(restored) == structure(tracer.roots)
        assert len(restored) == 2

    def test_empty_export(self):
        assert spans_from_json_lines("") == []
        assert spans_from_json_lines("\n  \n") == []


class TestChromeTraceRoundTrip:
    def test_scatter_trace_round_trips(self, recorded_tracer):
        document = chrome_trace(recorded_tracer.roots)
        restored = spans_from_chrome_trace(document)
        assert structure(restored) == structure(recorded_tracer.roots)

    def test_overlap_slices_restore_zero_sim_duration(self):
        # A wave-branch submit: zero simulated width, wrapper_ms overlap.
        parent = Span(name="wave", kind="wave", start_ms=10.0, end_ms=10.0)
        child = Span(
            name="sub",
            kind="submit",
            start_ms=10.0,
            end_ms=10.0,
            attributes={"wrapper_ms": 42.0, "shard": 1, "shard_of": "Orders"},
        )
        parent.children.append(child)
        events = chrome_trace_events([parent])
        slices = [e for e in events if e.get("ph") == "X" and e["name"] == "sub"]
        assert len(slices) == 1
        assert slices[0]["dur"] == pytest.approx(42.0 * 1000.0)
        assert slices[0]["args"]["overlap"] is True
        restored = spans_from_chrome_trace({"traceEvents": events})
        sub = restored[0].children[0]
        assert sub.duration_ms == 0.0
        assert sub.attributes["wrapper_ms"] == 42.0
        assert "overlap" not in sub.attributes


class TestLaneLayout:
    def test_scatter_branches_land_on_shard_lanes(self, recorded_tracer):
        events = chrome_trace_events(recorded_tracer.roots)
        submits = [
            e
            for e in events
            if e.get("cat") == "submit" and "shard" in e.get("args", {})
        ]
        assert {e["tid"] for e in submits} == {
            SHARD_LANE_BASE,
            SHARD_LANE_BASE + 1,
            SHARD_LANE_BASE + 2,
        }
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert names[MEDIATOR_LANE] == "mediator"
        assert names[SHARD_LANE_BASE] == "shard Orders[0]"
        assert names[SHARD_LANE_BASE + 2] == "shard Orders[2]"

    def test_shardless_wave_branches_get_positional_lanes(self):
        wave = Span(name="wave", kind="wave", start_ms=0.0, end_ms=5.0)
        for index in range(2):
            wave.children.append(
                Span(
                    name=f"sub{index}",
                    kind="submit",
                    start_ms=0.0,
                    end_ms=0.0,
                    attributes={"wrapper_ms": 3.0},
                )
            )
        events = chrome_trace_events([wave])
        tids = [e["tid"] for e in events if e.get("cat") == "submit"]
        assert tids == [BRANCH_LANE_BASE, BRANCH_LANE_BASE + 1]

    def test_tenant_names_the_process(self):
        root = Span(name="query", kind="query", start_ms=0.0, end_ms=1.0)
        events = chrome_trace_events([root], tenant="analytics")
        process = [
            e for e in events if e.get("ph") == "M" and e["name"] == "process_name"
        ]
        assert process[0]["args"]["name"] == "analytics"


class TestDocumentShape:
    def test_document_is_loadable_trace_json(self, recorded_tracer):
        text = chrome_trace_json(recorded_tracer.roots)
        document = json.loads(text)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert {e["ph"] for e in events} <= {"X", "i", "M"}
        for event in events:
            assert "pid" in event and "name" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0 and "ts" in event
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_instant_events_for_zero_duration_markers(self, recorded_tracer):
        events = chrome_trace_events(recorded_tracer.roots)
        instants = [e for e in events if e.get("ph") == "i"]
        assert any(e["cat"] == "scatter" for e in instants)

    def test_timestamps_scale_to_microseconds(self):
        root = Span(name="q", kind="query", start_ms=2.5, end_ms=4.0)
        (event,) = [
            e for e in chrome_trace_events([root]) if e.get("ph") == "X"
        ]
        assert event["ts"] == pytest.approx(2500.0)
        assert event["dur"] == pytest.approx(1500.0)
