"""The ``python -m repro.obs`` ops CLI, every subcommand in-process.

``record`` runs a tiny profiled scatter query and writes the artifact
set; each viewer subcommand then renders the artifact it owns.  The
tests drive :func:`repro.obs.__main__.main` directly so they exercise
argument parsing as well as the command bodies.
"""

import json

import pytest

from repro.obs.__main__ import build_parser, main
from repro.obs.profile import QueryProfile


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("obs-artifacts")
    code = main(
        ["record", "--shards", "2", "--rows", "120", "--out-dir", str(out_dir)]
    )
    assert code == 0
    return out_dir


class TestRecord:
    def test_writes_every_artifact(self, artifacts):
        names = {p.name for p in artifacts.iterdir()}
        assert {
            "profile.json",
            "spans.jsonl",
            "trace.json",
            "drift.json",
            "metrics.json",
            "metrics.txt",
        } <= names

    def test_profile_artifact_telescopes(self, artifacts):
        profile = QueryProfile.from_json(
            (artifacts / "profile.json").read_text()
        )
        assert profile.attributed_ms == pytest.approx(profile.elapsed_ms)
        shards = {s["shard"] for s in profile.shards}
        assert shards == {0, 1}

    def test_trace_artifact_is_a_chrome_document(self, artifacts):
        document = json.loads((artifacts / "trace.json").read_text())
        assert document["displayTimeUnit"] == "ms"
        assert any(e.get("ph") == "X" for e in document["traceEvents"])


class TestViewers:
    def test_profile_subcommand_renders(self, artifacts, capsys):
        assert main(["profile", str(artifacts / "profile.json")]) == 0
        out = capsys.readouterr().out
        assert "QueryProfile" in out and "blame ranking" in out

    def test_trace_subcommand_stdout(self, artifacts, capsys):
        assert main(["trace", str(artifacts / "spans.jsonl")]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "traceEvents" in document

    def test_trace_subcommand_matches_recorded_document(
        self, artifacts, capsys, tmp_path
    ):
        out_file = tmp_path / "converted.json"
        code = main(
            [
                "trace",
                str(artifacts / "spans.jsonl"),
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        assert "perfetto" in capsys.readouterr().out
        converted = json.loads(out_file.read_text())
        recorded = json.loads((artifacts / "trace.json").read_text())
        assert converted == recorded

    def test_drift_subcommand_renders_the_table(self, artifacts, capsys):
        assert main(["drift", str(artifacts / "drift.json")]) == 0
        out = capsys.readouterr().out
        assert "scope" in out and "mean q" in out

    def test_metrics_subcommand_renders_exposition(self, artifacts, capsys):
        assert main(["metrics", str(artifacts / "metrics.json")]) == 0
        out = capsys.readouterr().out
        assert "# HELP repro_queries_total" in out
        assert "# TYPE repro_queries_total counter" in out
        assert 'repro_shard_submits_total{shard="0",wrapper="node0"}' in out


class TestCalibrate:
    """The offline flavour of the §4.3 loop: fit from drift.json files."""

    @pytest.fixture()
    def drift_file(self, tmp_path):
        # A hand-built window with guaranteed wrapper-attributed drift:
        # the recorded artifact's real drift may be below min_change.
        import math

        path = tmp_path / "drift.json"
        path.write_text(
            json.dumps(
                {
                    "observations": 12,
                    "rules": [
                        {
                            "scope": "wrapper",
                            "source": "__mediator__",
                            "rule": "generic-scan",
                            "wrapper": "node0",
                            "variable": "TotalTime",
                            "count": 12,
                            "sum_log_ratio": 12 * math.log(3.0),
                            "mean_q_error": 3.0,
                        }
                    ],
                }
            )
        )
        return path

    def test_fit_dry_run_prints_proposal_and_writes_nothing(
        self, drift_file, tmp_path, capsys
    ):
        state = tmp_path / "calibration.json"
        code = main(
            ["calibrate", "fit", str(drift_file), "--state", str(state)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fit node0|*|TotalTime" in out
        assert "dry run" in out
        assert not state.exists()

    def test_fit_apply_show_rollback_round_trip(
        self, drift_file, tmp_path, capsys
    ):
        state = tmp_path / "calibration.json"
        args = ["calibrate", "fit", str(drift_file), "--state", str(state)]
        assert main(args + ["--apply"]) == 0
        assert "applied overlay v1" in capsys.readouterr().out
        assert state.exists()

        assert main(["calibrate", "show", str(state)]) == 0
        out = capsys.readouterr().out
        assert "* v1" in out and "node0|*|TotalTime" in out

        assert main(["calibrate", "rollback", str(state), "0"]) == 0
        assert "rolled back to v0" in capsys.readouterr().out
        assert main(["calibrate", "show", str(state)]) == 0
        out = capsys.readouterr().out
        assert "* v0" in out and "  v1" in out  # history preserved

    def test_fit_on_recorded_drift_artifact(self, artifacts, capsys):
        # End-to-end on the record subcommand's own drift.json: must
        # parse and report (fits or skips), never crash.
        assert (
            main(
                [
                    "calibrate",
                    "fit",
                    str(artifacts / "drift.json"),
                    "--min-samples",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fit " in out or "skip " in out or "nothing to fit" in out

    def test_rollback_to_unknown_version_fails_loudly(
        self, drift_file, tmp_path
    ):
        state = tmp_path / "calibration.json"
        main(
            [
                "calibrate",
                "fit",
                str(drift_file),
                "--state",
                str(state),
                "--apply",
            ]
        )
        with pytest.raises(ValueError):
            main(["calibrate", "rollback", str(state), "9"])


class TestParser:
    def test_subcommand_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_calibrate_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["calibrate"])
