"""Drift tracker unit tests: provenance parsing, q-error, aggregation."""

import json
import math

import pytest

from repro.algebra.builders import scan
from repro.algebra.logical import Submit
from repro.core.estimator import NodeEstimate, PlanEstimate
from repro.obs.accuracy import (
    DriftTracker,
    log_ratio,
    parse_provenance,
    q_error,
    render_drift_snapshot,
)
from repro.wrappers.base import ExecutionResult


class TestParseProvenance:
    def test_scoped_format(self):
        assert parse_provenance(
            "predicate[oo7]: select(AtomicParts, Id = V)"
        ) == ("predicate", "oo7", "select(AtomicParts, Id = V)")
        assert parse_provenance("default[__mediator__]: generic-scan") == (
            "default",
            "__mediator__",
            "generic-scan",
        )

    def test_non_scoped_strings_fall_into_internal(self):
        assert parse_provenance("derived") == ("internal", "", "derived")
        assert parse_provenance("pruned (§4.3.2 bound exceeded)") == (
            "internal",
            "",
            "pruned (§4.3.2 bound exceeded)",
        )


class TestQError:
    def test_perfect_prediction_is_one(self):
        assert q_error(100.0, 100.0) == 1.0

    def test_symmetric(self):
        assert q_error(10.0, 100.0) == q_error(100.0, 10.0) == 10.0

    def test_zero_actual_stays_finite(self):
        assert q_error(1.0, 0.0) == pytest.approx(1.0 / 1e-9)
        assert q_error(0.0, 0.0) == 1.0


def make_submit_estimate(
    total_time=100.0, count=50.0, provenance="collection[oo7]: scan-rule"
):
    """A Submit plan plus a PlanEstimate covering its wrapper subtree."""
    plan = scan("AtomicParts").submit_to("oo7").build()
    assert isinstance(plan, Submit)
    child = plan.child
    child_estimate = NodeEstimate(
        node=child,
        values={"TotalTime": total_time, "CountObject": count},
        provenance={"TotalTime": provenance, "CountObject": provenance},
    )
    root_estimate = NodeEstimate(
        node=plan, values={"TotalTime": total_time + 300.0}
    )
    estimate = PlanEstimate(
        plan=plan,
        root=root_estimate,
        nodes={plan.node_id: root_estimate, child.node_id: child_estimate},
    )
    return plan, estimate


def result(total_time_ms, rows):
    return ExecutionResult(
        rows=[{"Id": i} for i in range(rows)], total_time_ms=total_time_ms
    )


class TestDriftTracker:
    def test_observe_submit_joins_estimate_against_actuals(self):
        plan, estimate = make_submit_estimate(total_time=100.0, count=50.0)
        tracker = DriftTracker()
        observations = tracker.observe_submit(estimate, plan, result(200.0, 50))
        assert len(observations) == 2
        by_variable = {o.variable: o for o in observations}
        assert by_variable["TotalTime"].q_error == pytest.approx(2.0)
        assert by_variable["CountObject"].q_error == pytest.approx(1.0)
        assert by_variable["TotalTime"].scope == "collection"
        assert by_variable["TotalTime"].source == "oo7"
        assert by_variable["TotalTime"].rule == "scan-rule"

    def test_aggregates_fold_per_scope_rule_variable(self):
        plan, estimate = make_submit_estimate(total_time=100.0, count=50.0)
        tracker = DriftTracker()
        tracker.observe_submit(estimate, plan, result(200.0, 50))
        tracker.observe_submit(estimate, plan, result(400.0, 50))
        assert len(tracker) == 2  # TotalTime + CountObject cells
        worst = tracker.worst("TotalTime")
        assert worst is not None
        assert worst.count == 2
        assert worst.mean_q == pytest.approx(3.0)  # (2 + 4) / 2
        assert worst.max_q == pytest.approx(4.0)
        assert tracker.observations == 4

    def test_unmatched_submits_counted_not_dropped(self):
        plan, estimate = make_submit_estimate()
        # A runtime-built probe submit: same wrapper, different subtree.
        probe = scan("Documents").submit_to("oo7").build()
        tracker = DriftTracker()
        assert tracker.observe_submit(estimate, probe, result(10.0, 1)) == []
        assert tracker.unmatched_submits == 1
        assert "1 runtime-built submits" in tracker.report()

    def test_observe_plan_walks_the_submit_log(self):
        plan, estimate = make_submit_estimate()
        tracker = DriftTracker()
        log = [(plan, result(100.0, 50)), (plan, result(100.0, 50))]
        assert tracker.observe_plan(estimate, log) == 4

    def test_report_and_snapshot(self):
        plan, estimate = make_submit_estimate(total_time=100.0)
        tracker = DriftTracker()
        tracker.observe_submit(estimate, plan, result(1000.0, 50))
        report = tracker.report()
        assert "collection" in report and "scan-rule" in report
        snapshot = json.loads(tracker.snapshot_json())
        assert snapshot["observations"] == 2
        rules = {r["variable"]: r for r in snapshot["rules"]}
        assert rules["TotalTime"]["mean_q_error"] == pytest.approx(10.0)
        assert rules["TotalTime"]["last_estimated"] == 100.0
        assert rules["TotalTime"]["last_actual"] == 1000.0

    def test_worst_orders_by_mean_q(self):
        plan, estimate = make_submit_estimate(total_time=100.0, count=50.0)
        tracker = DriftTracker()
        tracker.observe_submit(estimate, plan, result(100.0, 5))  # count off 10x
        aggregates = tracker.aggregates()
        assert aggregates[0].variable == "CountObject"
        assert tracker.worst("CountObject").mean_q == pytest.approx(10.0)


class TestLogRatio:
    def test_directional_unlike_q_error(self):
        assert log_ratio(100.0, 200.0) == pytest.approx(math.log(2.0))
        assert log_ratio(200.0, 100.0) == pytest.approx(-math.log(2.0))
        assert log_ratio(100.0, 100.0) == 0.0

    def test_zero_operands_floored_finite(self):
        assert math.isfinite(log_ratio(0.0, 100.0))
        assert math.isfinite(log_ratio(100.0, 0.0))
        assert log_ratio(0.0, 0.0) == 0.0


class TestWrapperAttribution:
    """PR 8: drift rows carry the executing wrapper, for the fitter."""

    def test_observations_and_aggregates_carry_wrapper(self):
        plan, estimate = make_submit_estimate()
        tracker = DriftTracker()
        observations = tracker.observe_submit(estimate, plan, result(200.0, 50))
        assert all(o.wrapper == "oo7" for o in observations)
        assert all(a.wrapper == "oo7" for a in tracker.aggregates())

    def test_sum_log_ratio_folds_and_geo_mean_recovers(self):
        plan, estimate = make_submit_estimate(total_time=100.0, count=50.0)
        tracker = DriftTracker()
        tracker.observe_submit(estimate, plan, result(200.0, 50))
        tracker.observe_submit(estimate, plan, result(800.0, 50))
        [row] = [
            r
            for r in json.loads(tracker.snapshot_json())["rules"]
            if r["variable"] == "TotalTime"
        ]
        assert row["wrapper"] == "oo7"
        assert row["sum_log_ratio"] == pytest.approx(
            math.log(2.0) + math.log(8.0)
        )
        assert row["geo_mean_ratio"] == pytest.approx(4.0)  # sqrt(2 * 8)


class TestZeroSampleRows:
    """Regression: expected-but-silent wrappers surface as count=0 rows.

    Without them, a wrapper that stopped answering (or was never routed
    to) is indistinguishable from a perfectly-calibrated one in the
    drift snapshot, and the calibration CLI has nothing to report.
    """

    def test_silent_expected_wrapper_gets_placeholder_rows(self):
        tracker = DriftTracker()
        tracker.expect_wrapper("ghost")
        rows = json.loads(tracker.snapshot_json())["rules"]
        ghost = [r for r in rows if r["wrapper"] == "ghost"]
        assert ghost and all(r["count"] == 0 for r in ghost)
        assert {r["rule"] for r in ghost} == {"(no measured submits)"}

    def test_measured_wrapper_gets_no_placeholder(self):
        plan, estimate = make_submit_estimate()
        tracker = DriftTracker()
        tracker.expect_wrapper("oo7")
        tracker.expect_wrapper("ghost")
        tracker.observe_submit(estimate, plan, result(200.0, 50))
        rows = json.loads(tracker.snapshot_json())["rules"]
        oo7_rows = [r for r in rows if r["wrapper"] == "oo7"]
        assert oo7_rows and all(r["count"] > 0 for r in oo7_rows)
        assert any(r["wrapper"] == "ghost" and r["count"] == 0 for r in rows)

    def test_renderer_shows_dashes_not_zero_qerrors(self):
        tracker = DriftTracker()
        tracker.expect_wrapper("ghost")
        text = render_drift_snapshot(json.loads(tracker.snapshot_json()))
        assert "ghost" in text and "-" in text
        assert "(no measured submits)" in text

    def test_zero_sample_rows_are_inert_to_the_fitter(self):
        from repro.mediator.calibration import (
            CalibrationPolicy,
            CalibrationState,
            Calibrator,
        )

        tracker = DriftTracker()
        tracker.expect_wrapper("ghost")
        fit = Calibrator(CalibrationPolicy(min_samples=1)).fit(
            json.loads(tracker.snapshot_json()), CalibrationState()
        )
        assert not fit.updates and not fit.skipped
