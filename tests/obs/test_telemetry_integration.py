"""End-to-end telemetry acceptance tests on a federated mediator.

The ISSUE acceptance criteria, verbatim: with observability on, a
federated join query must yield (a) a span tree containing optimize /
estimate / submit / wave spans, (b) a metrics snapshot whose cache and
submit counters equal the ``QueryResult`` diagnostics, and (c) a drift
report with per-(scope, rule) aggregates; with observability off (the
default) nothing is recorded and no telemetry object exists.
"""

import json

import pytest

from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.obs import ObservabilityOptions
from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper

JOIN_SQL = (
    "SELECT * FROM AtomicParts, Suppliers "
    "WHERE AtomicParts.type = Suppliers.partType "
    "AND Suppliers.city = 'city1'"
)


def build_mediator(observability=None, **executor_kw):
    mediator = Mediator(
        executor_options=ExecutorOptions(**executor_kw) if executor_kw else None,
        observability=observability,
    )
    mediator.register(build_oo7_wrapper())
    mediator.register(build_sales_wrapper())
    return mediator


@pytest.fixture
def observed():
    return build_mediator(
        observability=ObservabilityOptions.all_on(),
        parallel_submits=True,
        cache_subanswers=True,
    )


class TestDisabledByDefault:
    def test_no_telemetry_objects(self):
        mediator = build_mediator()
        assert mediator.telemetry is None
        assert mediator.observability.enabled is False
        result = mediator.query(JOIN_SQL)
        assert result.trace is None

    def test_components_hold_the_null_tracer(self):
        mediator = build_mediator()
        assert not mediator.estimator.tracer.enabled
        assert not mediator.optimizer.tracer.enabled
        assert not mediator.executor.tracer.enabled
        assert not mediator.executor.scheduler.tracer.enabled

    def test_answers_identical_with_and_without_telemetry(self):
        plain = build_mediator(parallel_submits=True, cache_subanswers=True)
        result = plain.query(JOIN_SQL)
        observed = build_mediator(
            observability=ObservabilityOptions.all_on(),
            parallel_submits=True,
            cache_subanswers=True,
        ).query(JOIN_SQL)
        assert observed.rows == result.rows
        # Telemetry reads the simulated clock, never charges it.
        assert observed.elapsed_ms == result.elapsed_ms


class TestSpanTree:
    def test_federated_join_produces_the_full_tree(self, observed):
        result = observed.query(JOIN_SQL)
        assert result.trace is not None
        assert result.trace.kind == "query"
        kinds = {span.kind for span in result.trace.walk()}
        assert {"query", "phase", "candidate", "estimate", "submit", "wave"} <= kinds
        submits = result.trace.find(kind="submit")
        assert {s.attributes["wrapper"] for s in submits} == {"oo7", "sales"}
        for submit in submits:
            assert submit.attributes["rows"] >= 0
            assert submit.attributes["wrapper_ms"] > 0
        wave = result.trace.find(kind="wave")[0]
        assert wave.attributes["branches"] == 2
        assert wave.attributes["saved_ms"] == pytest.approx(
            result.parallel_saved_ms
        )

    def test_execute_phase_duration_is_the_measured_total(self, observed):
        result = observed.query(JOIN_SQL)
        execute = result.trace.find(kind="phase", name="execute")[0]
        assert execute.duration_ms == pytest.approx(result.elapsed_ms)

    def test_compose_spans_count_rows(self, observed):
        result = observed.query(JOIN_SQL)
        composes = result.trace.find(kind="compose")
        assert composes, "expected a mediator-side composition span"
        root_compose = composes[0]
        assert root_compose.attributes["rows"] == result.count

    def test_cache_hits_surface_as_events(self, observed):
        observed.query(JOIN_SQL)
        second = observed.query(JOIN_SQL)
        assert second.cache_hits > 0
        hits = second.trace.find(kind="cache", name="cache.hit")
        assert len(hits) == second.cache_hits

    def test_trace_compose_off_drops_only_compose_spans(self):
        options = ObservabilityOptions(enabled=True, trace_compose=False)
        mediator = build_mediator(observability=options, parallel_submits=True)
        result = mediator.query(JOIN_SQL)
        kinds = {span.kind for span in result.trace.walk()}
        assert "compose" not in kinds
        assert "submit" in kinds

    def test_json_lines_export_reconstructs_the_tree(self, observed):
        observed.query(JOIN_SQL)
        lines = observed.telemetry.tracer.to_json_lines().splitlines()
        records = [json.loads(line) for line in lines]
        roots = [r for r in records if r["parent"] is None]
        assert len(roots) == 1 and roots[0]["kind"] == "query"
        ids = {r["id"] for r in records}
        assert all(r["parent"] in ids for r in records if r["parent"] is not None)


class TestMetricsCrossCheck:
    def test_counters_equal_query_result_diagnostics(self, observed):
        first = observed.query(JOIN_SQL)
        second = observed.query(JOIN_SQL)
        metrics = observed.telemetry.metrics
        assert metrics["repro_queries_total"].total() == 2
        assert (
            metrics["repro_cache_hits_total"].total()
            == first.cache_hits + second.cache_hits
        )
        assert (
            metrics["repro_cache_misses_total"].total()
            == first.cache_misses + second.cache_misses
        )
        submit_spans = len(first.trace.find(kind="submit")) + len(
            second.trace.find(kind="submit")
        )
        assert metrics["repro_submits_total"].total() == submit_spans
        assert (
            metrics["repro_rows_returned_total"].total()
            == first.count + second.count
        )
        stats = first.optimizer_stats
        assert (
            metrics["repro_candidates_considered_total"].total()
            >= stats.candidates_considered
        )

    def test_exposition_carries_wrapper_labels(self, observed):
        observed.query(JOIN_SQL)
        text = observed.telemetry.metrics.expose_text()
        assert 'repro_submits_total{wrapper="oo7"} 1.0' in text
        assert 'repro_submits_total{wrapper="sales"} 1.0' in text

    def test_latency_histogram_observes_each_query(self, observed):
        result = observed.query(JOIN_SQL)
        histogram = observed.telemetry.metrics["repro_query_elapsed_ms"]
        assert histogram.count() == 1
        assert histogram.sum() == pytest.approx(result.elapsed_ms)


class TestDriftCrossCheck:
    def test_drift_aggregates_per_scope_and_rule(self, observed):
        observed.query(JOIN_SQL)
        drift = observed.telemetry.drift
        assert drift.observations > 0
        aggregates = drift.aggregates()
        assert aggregates
        scopes = {a.scope for a in aggregates}
        # The oo7 wrapper exports collection-scope rules; the mediator
        # fills the rest from the generic (default-scope) model.
        assert "collection" in scopes or "wrapper" in scopes
        assert "default" in scopes
        report = observed.telemetry.drift.report()
        assert "scope" in report and "mean q" in report

    def test_cached_rerun_adds_no_observations(self, observed):
        observed.query(JOIN_SQL)
        before = observed.telemetry.drift.observations
        second = observed.query(JOIN_SQL)
        assert second.cache_hits > 0 and second.cache_misses == 0
        # Cache hits never enter submit_log, so the tracker only ever
        # learns from measured executions.
        assert observed.telemetry.drift.observations == before


class TestExplain:
    def test_explain_json_format(self, observed):
        doc = json.loads(observed.explain(JOIN_SQL, format="json"))
        assert doc["estimated_total_ms"] > 0
        assert doc["candidates_considered"] >= 2
        assert doc["plan"]["operator"] == "join"
        assert "TotalTime" in doc["plan"]["values"]
        assert "provenance" in doc["plan"]
        assert "subanswer_cache_lifetime" in doc

    def test_explain_rejects_unknown_format(self, observed):
        with pytest.raises(ValueError):
            observed.explain(JOIN_SQL, format="yaml")

    def test_explain_appends_optimization_trace_when_enabled(self, observed):
        text = observed.explain(JOIN_SQL)
        assert "optimization trace:" in text
        assert "[candidate]" in text

    def test_per_wrapper_cache_stats(self, observed):
        observed.query(JOIN_SQL)
        observed.query(JOIN_SQL)
        per_wrapper = observed.executor.cache.stats_by_wrapper
        assert set(per_wrapper) == {"oo7", "sales"}
        assert all(stats.hits == 1 for stats in per_wrapper.values())


class TestExecutePlanTelemetry:
    def test_hand_built_plan_is_traced_too(self, observed):
        from repro.algebra.builders import scan

        plan = scan("AtomicParts").submit_to("oo7").build()
        result = observed.execute_plan(plan)
        assert result.trace is not None
        assert result.trace.attributes.get("entry") == "execute_plan"
        assert result.trace.find(kind="submit")
