"""The wall-clock hot-path profiler and its null-object discipline."""

import pytest

from repro.mediator.mediator import Mediator
from repro.obs import ObservabilityOptions
from repro.obs.hotpath import (
    NULL_HOTPATH,
    HotpathProfiler,
    NullHotpathProfiler,
)
from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper

SQL = "SELECT * FROM AtomicParts WHERE Id = 3"

HOTPATH_ON = ObservabilityOptions(enabled=True, hotpath=True)


def build_mediator(observability=None):
    mediator = Mediator(observability=observability)
    mediator.register(build_oo7_wrapper())
    mediator.register(build_sales_wrapper())
    return mediator


class TestProfiler:
    def test_phase_accumulates_calls_and_wall_time(self):
        profiler = HotpathProfiler()
        for _ in range(3):
            with profiler.phase("work"):
                pass
        assert profiler.calls["work"] == 3
        assert profiler.wall_s["work"] >= 0.0
        snapshot = profiler.snapshot()
        assert snapshot["work"]["calls"] == 3
        assert snapshot["work"]["mean_us"] == pytest.approx(
            profiler.wall_s["work"] / 3 * 1e6
        )

    def test_phase_records_even_when_the_body_raises(self):
        profiler = HotpathProfiler()
        with pytest.raises(RuntimeError):
            with profiler.phase("bad"):
                raise RuntimeError("boom")
        assert profiler.calls["bad"] == 1

    def test_reset_clears_everything(self):
        profiler = HotpathProfiler()
        with profiler.phase("x"):
            pass
        profiler.reset()
        assert profiler.snapshot() == {}

    def test_null_profiler_is_a_constant_no_op(self):
        assert NULL_HOTPATH.enabled is False
        assert isinstance(NULL_HOTPATH, NullHotpathProfiler)
        with NULL_HOTPATH.phase("anything"):
            pass
        assert NULL_HOTPATH.snapshot() == {}


class TestMediatorWiring:
    def test_planning_populates_every_phase(self):
        mediator = build_mediator(observability=HOTPATH_ON)
        hotpath = mediator.telemetry.hotpath
        assert hotpath is not None
        mediator.plan(SQL)
        snapshot = hotpath.snapshot()
        assert {"parse", "optimize", "candidate", "estimate"} <= set(snapshot)
        # Phases nest: optimize contains every candidate, which contains
        # every estimate call.
        assert (
            snapshot["optimize"]["wall_s"]
            >= snapshot["candidate"]["wall_s"]
            >= snapshot["estimate"]["wall_s"]
            > 0.0
        )
        assert snapshot["optimize"]["calls"] == 1
        assert snapshot["candidate"]["calls"] >= 2

    def test_hotpath_is_off_even_under_all_on(self):
        mediator = build_mediator(observability=ObservabilityOptions.all_on())
        assert mediator.telemetry.hotpath is None
        assert mediator.estimator.hotpath.enabled is False
        assert mediator.optimizer.hotpath.enabled is False

    def test_disabled_mediator_holds_the_null_profiler(self):
        mediator = build_mediator()
        assert mediator.estimator.hotpath is NULL_HOTPATH
        assert mediator.optimizer.hotpath is NULL_HOTPATH

    def test_profiling_never_touches_the_simulated_clock(self):
        plain = build_mediator().query(SQL)
        profiled = build_mediator(observability=HOTPATH_ON).query(SQL)
        assert profiled.rows == plain.rows
        assert profiled.elapsed_ms == plain.elapsed_ms

    def test_phase_timers_surface_as_gauges(self):
        mediator = build_mediator(
            observability=ObservabilityOptions(
                enabled=True, hotpath=True, metrics=True
            )
        )
        mediator.query(SQL)
        metrics = mediator.telemetry.metrics
        wall = metrics["repro_hotpath_wall_seconds"]
        calls = metrics["repro_hotpath_calls"]
        for phase in ("parse", "optimize", "candidate", "estimate"):
            assert wall.value(phase=phase) > 0.0
            assert calls.value(phase=phase) >= 1.0
