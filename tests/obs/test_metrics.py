"""Metrics registry unit tests: semantics, exposition, snapshots."""

import json
import math
import threading

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("queries_total", "Queries answered")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3.0
        assert counter.total() == 3.0

    def test_labels_partition_the_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("submits_total", labels=("wrapper",))
        counter.inc(wrapper="oo7")
        counter.inc(2, wrapper="sales")
        assert counter.value(wrapper="oo7") == 1.0
        assert counter.value(wrapper="sales") == 2.0
        assert counter.value(wrapper="files") == 0.0
        assert counter.total() == 3.0

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_label_set_rejected(self):
        counter = MetricsRegistry().counter("c", labels=("wrapper",))
        with pytest.raises(ValueError):
            counter.inc(region="east")
        with pytest.raises(ValueError):
            counter.inc()  # missing the label entirely

    def test_inc_zero_materializes_the_series(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(0)
        assert counter.samples() == [("", (), 0.0)]


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("hit_ratio")
        gauge.set(0.25)
        gauge.set(0.5)
        assert gauge.value() == 0.5


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram("latency", buckets=(10, 100))
        histogram.observe(5)
        histogram.observe(50)
        histogram.observe(5000)
        assert histogram.count() == 3
        assert histogram.sum() == 5055.0
        samples = dict(
            ((suffix, key), value) for suffix, key, value in histogram.samples()
        )
        assert samples[("_bucket", (("le", "10"),))] == 1.0
        assert samples[("_bucket", (("le", "100"),))] == 2.0
        assert samples[("_bucket", (("le", "+Inf"),))] == 3.0
        assert samples[("_count", ())] == 3.0

    def test_inf_bucket_always_present(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0,))
        assert histogram.buckets[-1] == float("inf")


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help")
        second = registry.counter("c")
        assert first is second

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", labels=("wrapper",))
        with pytest.raises(ValueError):
            registry.counter("m", labels=("region",))

    def test_contains_and_getitem(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        assert "c" in registry and registry["c"] is counter
        assert "missing" not in registry


class TestExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_submits_total", "Wrapper subqueries", ("wrapper",)
        ).inc(3, wrapper="oo7")
        registry.gauge("repro_cache_hit_ratio", "Hit ratio").set(0.75)
        registry.histogram(
            "repro_query_elapsed_ms", "Latency", buckets=(100.0,)
        ).observe(42.0)
        return registry

    def test_prometheus_text_format(self):
        text = self._registry().expose_text()
        assert "# HELP repro_submits_total Wrapper subqueries" in text
        assert "# TYPE repro_submits_total counter" in text
        assert 'repro_submits_total{wrapper="oo7"} 3.0' in text
        assert "# TYPE repro_cache_hit_ratio gauge" in text
        assert "repro_cache_hit_ratio 0.75" in text
        assert "# TYPE repro_query_elapsed_ms histogram" in text
        assert 'repro_query_elapsed_ms_bucket{le="100"} 1.0' in text
        assert 'repro_query_elapsed_ms_bucket{le="+Inf"} 1.0' in text
        assert "repro_query_elapsed_ms_sum 42.0" in text
        assert "repro_query_elapsed_ms_count 1.0" in text

    def test_snapshot_json_round_trips(self):
        snapshot = json.loads(self._registry().snapshot_json())
        assert snapshot["repro_submits_total"]["type"] == "counter"
        samples = snapshot["repro_submits_total"]["samples"]
        assert samples == [
            {
                "name": "repro_submits_total",
                "labels": {"wrapper": "oo7"},
                "value": 3.0,
            }
        ]


class TestSummary:
    def test_nearest_rank_quantiles(self):
        summary = MetricsRegistry().summary("latency_ms")
        for value in (10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0):
            summary.observe(value)
        assert summary.quantile(0.5) == 50.0
        assert summary.quantile(0.95) == 100.0
        assert summary.quantile(0.0) == 10.0
        assert summary.quantile(1.0) == 100.0
        assert summary.count() == 10
        assert summary.sum() == 550.0

    def test_empty_summary_is_nan(self):
        summary = MetricsRegistry().summary("latency_ms")
        assert math.isnan(summary.quantile(0.5))
        assert summary.count() == 0

    def test_labels_partition_observations(self):
        summary = MetricsRegistry().summary("wait_ms", labels=("tenant",))
        summary.observe(5.0, tenant="a")
        summary.observe(100.0, tenant="b")
        assert summary.quantile(0.5, tenant="a") == 5.0
        assert summary.quantile(0.5, tenant="b") == 100.0

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().summary("s", quantiles=(1.5,))

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        summary = registry.summary("latency_ms", "Latency", quantiles=(0.5,))
        summary.observe(42.0)
        text = registry.expose_text()
        assert "# TYPE latency_ms summary" in text
        assert 'latency_ms{quantile="0.5"} 42.0' in text
        assert "latency_ms_sum 42.0" in text
        assert "latency_ms_count 1.0" in text


class TestThreadSafety:
    """The serving layer updates metrics from many query-task threads;
    increments and observations must never be lost."""

    def test_concurrent_counter_increments(self):
        counter = MetricsRegistry().counter("c", labels=("tenant",))

        def spin(tenant):
            for _ in range(1000):
                counter.inc(tenant=tenant)

        threads = [
            threading.Thread(target=spin, args=(tenant,))
            for tenant in ("a", "b", "c", "d")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.total() == 4000.0
        assert counter.value(tenant="a") == 1000.0

    def test_concurrent_summary_observations(self):
        summary = MetricsRegistry().summary("s")

        def spin():
            for i in range(500):
                summary.observe(float(i))

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert summary.count() == 2000

    def test_concurrent_get_or_create_returns_one_metric(self):
        registry = MetricsRegistry()
        seen = []

        def create():
            seen.append(registry.counter("shared", labels=("t",)))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(metric is seen[0] for metric in seen)
