"""QueryProfile: per-operator cost attribution for one executed query.

The ISSUE acceptance criteria, verbatim: a profiled scatter query over
>= 2 shards yields a QueryProfile whose per-operator rows sum (within
rounding) to the simulated TotalTime, whose blame ranking names the
worst (scope, rule) q-error, and whose exported trace loads in Perfetto
(the export side lives in ``test_export.py``); with observability
disabled the results are byte-identical and no profile exists.
"""

import pytest

from repro.bench.sharding import build_sharded_federation
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import ResilienceOptions
from repro.obs import ObservabilityOptions
from repro.obs.profile import QueryProfile, build_query_profile
from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper

SCATTER_SQL = "SELECT * FROM Orders WHERE qty > 70"
LOOKUP_SQL = "SELECT * FROM Orders WHERE oid = 11"
JOIN_SQL = (
    "SELECT * FROM AtomicParts, Suppliers "
    "WHERE AtomicParts.type = Suppliers.partType "
    "AND Suppliers.city = 'city1'"
)


def sharded(shards=3, observability=ObservabilityOptions.all_on()):
    return build_sharded_federation(shards, 300, observability=observability)


def join_mediator(observability=None, **executor_kw):
    mediator = Mediator(
        executor_options=ExecutorOptions(**executor_kw) if executor_kw else None,
        observability=observability,
    )
    mediator.register(build_oo7_wrapper())
    mediator.register(build_sales_wrapper())
    return mediator


class TestAttributionInvariant:
    def test_scatter_rows_sum_to_simulated_total(self):
        result = sharded(shards=3).query(SCATTER_SQL)
        profile = result.profile
        assert isinstance(profile, QueryProfile)
        assert profile.attributed_ms == pytest.approx(result.elapsed_ms)
        assert profile.elapsed_ms == result.elapsed_ms

    def test_two_shard_scatter_also_telescopes(self):
        result = sharded(shards=2).query(SCATTER_SQL)
        assert result.profile.attributed_ms == pytest.approx(result.elapsed_ms)

    def test_sequential_federated_join_telescopes(self):
        result = join_mediator(
            observability=ObservabilityOptions.all_on()
        ).query(JOIN_SQL)
        assert result.profile.attributed_ms == pytest.approx(result.elapsed_ms)

    def test_parallel_wave_join_telescopes(self):
        result = join_mediator(
            observability=ObservabilityOptions.all_on(),
            parallel_submits=True,
        ).query(JOIN_SQL)
        assert result.profile.attributed_ms == pytest.approx(result.elapsed_ms)


class TestShardAttribution:
    def test_every_shard_gets_a_summary_row(self):
        result = sharded(shards=3).query(SCATTER_SQL)
        shards = result.profile.shards
        assert [s["shard"] for s in shards] == [0, 1, 2]
        assert [s["wrapper"] for s in shards] == ["node0", "node1", "node2"]
        assert all(s["collection"] == "Orders" for s in shards)
        assert all(s["submits"] == 1 for s in shards)
        assert all(s["wrapper_ms"] > 0 for s in shards)

    def test_submit_rows_carry_shard_identity_and_wave(self):
        result = sharded(shards=3).query(SCATTER_SQL)
        submits = [r for r in result.profile.operators if r.kind == "submit"]
        assert {r.shard for r in submits} == {0, 1, 2}
        assert {r.shard_of for r in submits} == {"Orders"}
        assert all(r.wave == 1 for r in submits)

    def test_pruned_lookup_touches_one_shard(self):
        result = sharded(shards=3).query(LOOKUP_SQL)
        submits = [r for r in result.profile.operators if r.kind == "submit"]
        assert len(submits) == 1
        assert submits[0].shard == 11 % 3


class TestEstimateJoin:
    def test_submit_rows_join_their_estimates(self):
        result = sharded(shards=3).query(SCATTER_SQL)
        submits = [r for r in result.profile.operators if r.kind == "submit"]
        for row in submits:
            assert row.estimated_ms is not None and row.estimated_ms > 0
            assert row.estimated_rows is not None
            assert row.q_time is not None and row.q_time >= 1.0
            assert row.q_rows is not None and row.q_rows >= 1.0
            assert "TotalTime" in row.provenance

    def test_blame_ranking_names_the_worst_rule(self):
        result = sharded(shards=3).query(SCATTER_SQL)
        profile = result.profile
        assert profile.blame, "expected blame entries"
        worst = profile.worst_blame("TotalTime")
        assert worst is not None
        assert worst["scope"] and worst["rule"]
        time_entries = [b for b in profile.blame if b["variable"] == "TotalTime"]
        assert worst["max_q_error"] == max(b["max_q_error"] for b in time_entries)
        # The blame ranking is this query's own drift slice: the worst
        # rule's q-error matches a submit row's measured q-error.
        submit_qs = {
            round(r.q_time, 9)
            for r in profile.operators
            if r.kind == "submit" and r.q_time is not None
        }
        assert round(worst["max_q_error"], 9) in submit_qs

    def test_whole_query_q_total(self):
        result = sharded(shards=3).query(SCATTER_SQL)
        assert result.profile.q_total >= 1.0


class TestExportRoundTrip:
    def test_json_round_trip_is_lossless(self):
        result = sharded(shards=2).query(SCATTER_SQL)
        profile = result.profile
        restored = QueryProfile.from_json(profile.to_json())
        assert restored.to_dict() == profile.to_dict()

    def test_render_mentions_the_key_figures(self):
        result = sharded(shards=2).query(SCATTER_SQL)
        text = result.profile.render()
        assert "QueryProfile" in text
        assert "blame ranking" in text
        assert "shards:" in text
        assert "waves:" in text
        assert f"{result.elapsed_ms:.1f}" in text


class TestDisabledPaths:
    def test_observability_off_records_nothing(self):
        result = sharded(observability=None).query(SCATTER_SQL)
        assert result.profile is None
        assert result.trace is None

    def test_profile_flag_off_keeps_trace_but_no_profile(self):
        options = ObservabilityOptions(enabled=True, profile=False)
        result = sharded(observability=options).query(SCATTER_SQL)
        assert result.trace is not None
        assert result.profile is None

    def test_trace_off_means_no_profile_even_with_profile_on(self):
        options = ObservabilityOptions(enabled=True, trace=False, profile=True)
        result = sharded(observability=options).query(SCATTER_SQL)
        assert result.trace is None
        assert result.profile is None

    def test_build_returns_none_without_a_trace(self):
        result = sharded(observability=None).query(SCATTER_SQL)
        assert build_query_profile(result, object()) is None

    def test_profiling_never_perturbs_the_simulated_clock(self):
        # The E9 invariant extended to the profile path: rows and every
        # simulated measurement are identical with profiling on or off.
        plain = sharded(observability=None).query(SCATTER_SQL)
        profiled = sharded().query(SCATTER_SQL)
        assert profiled.rows == plain.rows
        assert profiled.elapsed_ms == plain.elapsed_ms
        assert profiled.time_first_ms == plain.time_first_ms


class TestMetricsSatellites:
    def test_per_shard_submit_counter(self):
        mediator = sharded(shards=3)
        mediator.query(SCATTER_SQL)
        counter = mediator.telemetry.metrics["repro_shard_submits_total"]
        for index in range(3):
            assert counter.value(wrapper=f"node{index}", shard=str(index)) == 1
        mediator.query(LOOKUP_SQL)  # prunes to shard 2
        assert counter.value(wrapper="node2", shard="2") == 2
        assert counter.value(wrapper="node0", shard="0") == 1

    def test_breaker_state_gauge_is_one_hot(self):
        mediator = join_mediator(
            observability=ObservabilityOptions.all_on(),
            resilience=ResilienceOptions(),
        )
        mediator.query(JOIN_SQL)
        gauge = mediator.telemetry.metrics["repro_breaker_state"]
        for wrapper in ("oo7", "sales"):
            assert gauge.value(wrapper=wrapper, state="closed") == 1.0
            assert gauge.value(wrapper=wrapper, state="half_open") == 0.0
            assert gauge.value(wrapper=wrapper, state="open") == 0.0

    def test_no_breaker_gauge_without_resilience(self):
        mediator = join_mediator(observability=ObservabilityOptions.all_on())
        mediator.query(JOIN_SQL)
        assert "repro_breaker_state" not in mediator.telemetry.metrics


class TestServiceTimeline:
    def test_profile_timeline_carries_admission_events(self):
        from repro.service.service import FederationService

        mediator = join_mediator(observability=ObservabilityOptions.all_on())
        service = FederationService(mediator)
        session = service.open_session("analytics")
        result = service.query(session, JOIN_SQL)
        profile = result.profile
        assert isinstance(profile, QueryProfile)
        events = [entry["event"] for entry in profile.timeline]
        assert events == ["submit", "start", "finish"]
        assert all(e["tenant"] == "analytics" for e in profile.timeline)
        finish = profile.timeline[-1]
        assert finish["at_ms"] >= profile.timeline[0]["at_ms"]
        assert "timeline:" in profile.render()

    def test_queued_query_records_a_queue_event(self):
        from repro.service.service import FederationService, ServiceOptions

        mediator = join_mediator(observability=ObservabilityOptions.all_on())
        service = FederationService(
            mediator, ServiceOptions(max_concurrent_queries=1)
        )
        session = service.open_session("analytics")
        first = service.submit(session, JOIN_SQL)
        second = service.submit(session, JOIN_SQL)
        service.run()
        assert first.status == "done" and second.status == "done"
        events = [entry["event"] for entry in second.result.profile.timeline]
        assert events == ["submit", "queue", "start", "finish"]
