"""Regression: ``Summary`` memory stays bounded under sustained traffic.

The seed implementation appended every observation to an unbounded
per-label list — a serving-layer memory leak.  The window is now a
bounded deque; exact counts and sums survive eviction, and quantiles
stay deterministic over the retained window.
"""

from repro.obs.metrics import DEFAULT_MAX_SAMPLES, MetricsRegistry, Summary


class TestBoundedWindow:
    def test_one_million_observations_stay_bounded(self):
        summary = Summary("latency_ms", "test", max_samples=1024)
        total = 1_000_000
        for i in range(total):
            summary.observe(float(i % 1000))
        # The retained window is capped...
        assert summary.window_size() == 1024
        # ...while the exact accumulators still see every observation.
        assert summary.count() == total
        assert summary.sum() == sum(float(i % 1000) for i in range(total))

    def test_window_never_exceeds_cap_per_label_set(self):
        summary = Summary(
            "latency_ms", "test", label_names=("tenant",), max_samples=64
        )
        for i in range(10_000):
            summary.observe(float(i), tenant="a")
            summary.observe(float(i), tenant="b")
        assert summary.window_size(tenant="a") == 64
        assert summary.window_size(tenant="b") == 64
        assert summary.count(tenant="a") == 10_000

    def test_quantiles_deterministic_over_window(self):
        summary = Summary("latency_ms", "test", max_samples=100)
        for i in range(1_000):
            summary.observe(float(i))
        # Window holds exactly the last 100 values (900..999): the
        # nearest-rank quantiles are fully determined.
        assert summary.quantile(0.0) == 900.0
        assert summary.quantile(0.5) == 949.0
        assert summary.quantile(1.0) == 999.0

    def test_below_cap_behaves_like_unbounded(self):
        bounded = Summary("a_ms", "test", max_samples=1000)
        for value in (5.0, 1.0, 3.0):
            bounded.observe(value)
        assert bounded.quantile(0.5) == 3.0
        assert bounded.count() == 3
        assert bounded.sum() == 9.0
        assert bounded.window_size() == 3

    def test_exposition_uses_exact_count_and_sum(self):
        summary = Summary("lat_ms", "test", max_samples=8)
        for i in range(100):
            summary.observe(1.0)
        text = summary.expose()
        assert "lat_ms_count 100" in text
        assert "lat_ms_sum 100" in text

    def test_registry_passes_max_samples_through(self):
        registry = MetricsRegistry()
        summary = registry.summary("s_ms", "test", max_samples=16)
        assert summary.max_samples == 16
        # Default cap applies when unspecified.
        assert registry.summary("t_ms", "test").max_samples == DEFAULT_MAX_SAMPLES
