"""Tests for the cross-candidate subplan cache."""

import pytest

from repro.algebra.builders import scan
from repro.algebra.logical import Join
from repro.core.estimator import CostEstimator, EstimatorOptions
from repro.core.generic import CoefficientSet, standard_repository
from repro.core.rules import rule, scan_pattern
from repro.core.statistics import AttributeStats, CollectionStats, StatisticsCatalog


def make_estimator(cache=True):
    catalog = StatisticsCatalog()
    for name, count in (("R", 1000), ("S", 500)):
        catalog.put(
            CollectionStats.from_extent(
                name,
                count,
                100,
                attributes=[AttributeStats("a", indexed=True, count_distinct=count)],
            )
        )
    return CostEstimator(
        standard_repository(),
        catalog,
        options=EstimatorOptions(cache_subplans=cache),
        coefficients=CoefficientSet(),
    )


class TestCaching:
    def test_disabled_by_default(self):
        catalog = StatisticsCatalog()
        estimator = CostEstimator(standard_repository(), catalog)
        assert estimator.subplan_cache is None

    def test_shared_subplan_costs_once(self):
        estimator = make_estimator(cache=True)
        access = scan("R").where_eq("a", 5).submit_to("w").build()
        # Two candidate plans sharing the same access subplan object.
        plan_a = access
        plan_b = (
            scan("S").submit_to("w").join(access, "a", "a").build()
        )
        estimator.estimate(plan_a)
        first_formulas = estimator.last_counters.formulas_evaluated
        estimator.estimate(plan_b)
        second_formulas = estimator.last_counters.formulas_evaluated
        # The shared subtree was served from the cache: costing the bigger
        # plan evaluated barely more formulas than the join itself needs.
        assert second_formulas < first_formulas + 25

    def test_same_plan_reestimated_free(self):
        estimator = make_estimator(cache=True)
        plan = scan("R").where_eq("a", 5).submit_to("w").build()
        first = estimator.estimate(plan).total_time
        count_before = estimator.last_counters.formulas_evaluated
        second = estimator.estimate(plan).total_time
        assert second == first
        assert estimator.last_counters.formulas_evaluated == 0
        assert count_before > 0

    def test_cached_values_match_uncached(self):
        plan = scan("R").where_eq("a", 5).submit_to("w").build()
        cached = make_estimator(cache=True)
        uncached = make_estimator(cache=False)
        assert cached.estimate(plan).total_time == pytest.approx(
            uncached.estimate(plan).total_time
        )

    def test_invalidate_cache_picks_up_new_rules(self):
        estimator = make_estimator(cache=True)
        plan = scan("R").submit_to("w").build()
        before = estimator.estimate(plan).total_time
        estimator.repository.add_wrapper_rule(
            "w", rule(scan_pattern("R"), ["TotalTime = 1"])
        )
        # Stale until invalidated.
        assert estimator.estimate(plan).total_time == before
        estimator.invalidate_cache()
        after = estimator.estimate(plan).total_time
        assert after < before

    def test_pruning_honoured_on_cache_hits(self):
        estimator = make_estimator(cache=True)
        plan = scan("R").submit_to("w").build()
        estimator.estimate(plan)  # warm the cache
        pruned = estimator.estimate(plan, bound_ms=1.0)
        assert pruned.pruned

    def test_registration_invalidates(self):
        from repro.mediator.mediator import Mediator
        from tests.federation_fixtures import build_oo7_wrapper

        mediator = Mediator(
            estimator_options=EstimatorOptions(cache_subplans=True)
        )
        mediator.register(build_oo7_wrapper(export_rules=False))
        sql = "SELECT * FROM AtomicParts WHERE Id = 7"
        before = mediator.plan(sql).estimated_total_ms
        mediator.register(build_oo7_wrapper(export_rules=True))
        after = mediator.plan(sql).estimated_total_ms
        assert after != before  # new rules visible despite the cache
