"""Unit tests for the scope hierarchy and rule repository (§4.1)."""

import pytest

from repro.algebra.builders import scan
from repro.algebra.logical import Scan
from repro.core.rules import (
    rule,
    scan_pattern,
    select_eq_pattern,
    select_pattern,
    var,
)
from repro.core.scopes import (
    MEDIATOR_SOURCE,
    RuleRepository,
    Scope,
    classify_wrapper_rule,
)
from repro.errors import CostModelError


def select_node(value=10):
    return scan("Employee").where_eq("salary", value).build()


class TestClassification:
    def test_free_collection_is_wrapper_scope(self):
        r = rule(select_pattern(var("C")), ["TotalTime = 1"])
        assert classify_wrapper_rule(r) is Scope.WRAPPER

    def test_bound_collection_is_collection_scope(self):
        r = rule(select_pattern("Employee"), ["TotalTime = 1"])
        assert classify_wrapper_rule(r) is Scope.COLLECTION

    def test_bound_attribute_is_predicate_scope(self):
        r = rule(
            select_eq_pattern("Employee", "salary", var("V")), ["TotalTime = 1"]
        )
        assert classify_wrapper_rule(r) is Scope.PREDICATE

    def test_bound_value_is_predicate_scope(self):
        r = rule(select_eq_pattern("Employee", "salary", 77), ["TotalTime = 1"])
        assert classify_wrapper_rule(r) is Scope.PREDICATE


class TestRepository:
    def test_reserved_source_rejected(self):
        repo = RuleRepository()
        with pytest.raises(CostModelError):
            repo.add_wrapper_rule(
                MEDIATOR_SOURCE, rule(scan_pattern(var("C")), ["TotalTime = 1"])
            )

    def test_scope_ordering_wins(self):
        """A wrapper predicate-scope rule shadows collection, wrapper and
        default scopes — the Figure 10 hierarchy."""
        repo = RuleRepository()
        repo.add_default_rule(rule(select_pattern(var("C")), ["TotalTime = 4"], name="default"))
        repo.add_wrapper_rule("w", rule(select_pattern(var("C")), ["TotalTime = 3"], name="wrapper"))
        repo.add_wrapper_rule("w", rule(select_pattern("Employee"), ["TotalTime = 2"], name="collection"))
        repo.add_wrapper_rule(
            "w",
            rule(select_eq_pattern("Employee", "salary", var("V")), ["TotalTime = 1"], name="predicate"),
        )
        matches = repo.matches_providing(select_node(), "w", "TotalTime")
        assert [m.rule.name for m in matches] == ["predicate"]

    def test_fallback_scope_by_scope(self):
        """A missing variable falls through to the next scope: "the scope
        hierarchy is scanned until the first less-specific rule is found"."""
        repo = RuleRepository()
        repo.add_default_rule(
            rule(select_pattern(var("C")), ["TotalTime = 9", "CountObject = 5"], name="default")
        )
        repo.add_wrapper_rule(
            "w", rule(select_pattern("Employee"), ["TotalTime = 1"], name="coll")
        )
        node = select_node()
        time_matches = repo.matches_providing(node, "w", "TotalTime")
        count_matches = repo.matches_providing(node, "w", "CountObject")
        assert [m.rule.name for m in time_matches] == ["coll"]
        assert [m.rule.name for m in count_matches] == ["default"]

    def test_same_level_rules_all_returned(self):
        repo = RuleRepository()
        repo.add_default_rule(rule(select_pattern(var("C")), ["TotalTime = 9"], name="a"))
        repo.add_default_rule(rule(select_pattern(var("C")), ["TotalTime = 2"], name="b"))
        matches = repo.matches_providing(select_node(), "w", "TotalTime")
        assert {m.rule.name for m in matches} == {"a", "b"}

    def test_other_wrappers_rules_invisible(self):
        repo = RuleRepository()
        repo.add_default_rule(rule(select_pattern(var("C")), ["TotalTime = 9"], name="default"))
        repo.add_wrapper_rule("other", rule(select_pattern(var("C")), ["TotalTime = 1"], name="other-rule"))
        matches = repo.matches_providing(select_node(), "w", "TotalTime")
        assert [m.rule.name for m in matches] == ["default"]

    def test_local_rules_only_for_mediator_nodes(self):
        repo = RuleRepository()
        repo.add_default_rule(rule(select_pattern(var("C")), ["TotalTime = 9"], name="default"))
        repo.add_local_rule(rule(select_pattern(var("C")), ["TotalTime = 1"], name="local"))
        wrapper_matches = repo.matches_providing(select_node(), "w", "TotalTime")
        mediator_matches = repo.matches_providing(select_node(), None, "TotalTime")
        assert [m.rule.name for m in wrapper_matches] == ["default"]
        assert [m.rule.name for m in mediator_matches] == ["local"]

    def test_wrapper_rules_invisible_to_mediator_nodes(self):
        repo = RuleRepository()
        repo.add_default_rule(rule(select_pattern(var("C")), ["TotalTime = 9"], name="default"))
        repo.add_wrapper_rule("w", rule(select_pattern(var("C")), ["TotalTime = 1"], name="wrapper"))
        matches = repo.matches_providing(select_node(), None, "TotalTime")
        assert [m.rule.name for m in matches] == ["default"]

    def test_query_scope_beats_predicate_scope(self):
        repo = RuleRepository()
        repo.add_wrapper_rule(
            "w",
            rule(select_eq_pattern("Employee", "salary", 10), ["TotalTime = 5"], name="pred"),
        )
        repo.add_query_rule(
            "w",
            rule(select_eq_pattern("Employee", "salary", 10), ["TotalTime = 3"], name="query"),
        )
        matches = repo.matches_providing(select_node(10), "w", "TotalTime")
        assert [m.rule.name for m in matches] == ["query"]

    def test_specificity_within_scope(self):
        repo = RuleRepository()
        repo.add_wrapper_rule(
            "w",
            rule(select_eq_pattern("Employee", "salary", var("V")), ["TotalTime = 2"], name="attr"),
        )
        repo.add_wrapper_rule(
            "w",
            rule(select_eq_pattern("Employee", "salary", 10), ["TotalTime = 1"], name="value"),
        )
        matches = repo.matches_providing(select_node(10), "w", "TotalTime")
        assert [m.rule.name for m in matches] == ["value"]
        # A different constant falls back to the attribute-level rule.
        matches = repo.matches_providing(select_node(99), "w", "TotalTime")
        assert [m.rule.name for m in matches] == ["attr"]

    def test_remove_source(self):
        repo = RuleRepository()
        repo.add_wrapper_rule("w", rule(select_pattern(var("C")), ["TotalTime = 1"]))
        repo.add_wrapper_rule("w", rule(scan_pattern(var("C")), ["TotalTime = 1"]))
        repo.add_wrapper_rule("v", rule(scan_pattern(var("C")), ["TotalTime = 1"]))
        assert repo.remove_source("w") == 2
        assert len(repo) == 1
        assert repo.rules_for_source("w") == []

    def test_matches_ordering_covers_all(self):
        repo = RuleRepository()
        repo.add_default_rule(rule(select_pattern(var("C")), ["TotalTime = 9"], name="default"))
        repo.add_wrapper_rule("w", rule(select_pattern("Employee"), ["TotalTime = 1"], name="coll"))
        matches = repo.matches(select_node(), "w")
        assert [m.rule.name for m in matches] == ["coll", "default"]

    def test_linear_scan_mode_equivalent(self):
        for use_index in (True, False):
            repo = RuleRepository(use_dispatch_index=use_index)
            repo.add_default_rule(rule(select_pattern(var("C")), ["TotalTime = 9"], name="default"))
            repo.add_wrapper_rule("w", rule(select_pattern("Employee"), ["TotalTime = 1"], name="coll"))
            matches = repo.matches_providing(select_node(), "w", "TotalTime")
            assert [m.rule.name for m in matches] == ["coll"], f"index={use_index}"

    def test_describe_renders_hierarchy(self):
        repo = RuleRepository()
        repo.add_default_rule(rule(select_pattern(var("C")), ["TotalTime = 9"]))
        repo.add_wrapper_rule("w", rule(select_pattern("Employee"), ["TotalTime = 1"]))
        text = repo.describe()
        assert "default:" in text
        assert "collection:" in text

    def test_declaration_order_preserved_per_scope(self):
        repo = RuleRepository()
        first = rule(select_pattern(var("C")), ["TotalTime = 1"], name="first")
        second = rule(select_pattern(var("C")), ["TotalTime = 2"], name="second")
        repo.add_wrapper_rule("w", first)
        repo.add_wrapper_rule("w", second)
        assert first.order < second.order

    def test_scan_rule_matching_level(self):
        repo = RuleRepository()
        repo.add_default_rule(rule(scan_pattern(var("C")), ["TotalTime = 9"], name="default"))
        repo.add_wrapper_rule("w", rule(scan_pattern("Employee"), ["TotalTime = 1"], name="coll"))
        matches = repo.matches_providing(Scan("Employee"), "w", "TotalTime")
        assert [m.rule.name for m in matches] == ["coll"]
