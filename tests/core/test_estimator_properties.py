"""Property-based invariants of the cost estimator + generic model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.builders import scan
from repro.algebra.expressions import Comparison, attr, lit
from repro.algebra.logical import Scan, Select
from repro.core.estimator import CostEstimator
from repro.core.formulas import RESULT_VARIABLES
from repro.core.generic import CoefficientSet, standard_repository
from repro.core.statistics import AttributeStats, CollectionStats, StatisticsCatalog


def make_estimator(count=1000, distinct=100, object_size=100, indexed=True):
    catalog = StatisticsCatalog()
    catalog.put(
        CollectionStats.from_extent(
            "R",
            count,
            object_size,
            attributes=[
                AttributeStats(
                    "a",
                    indexed=indexed,
                    count_distinct=min(distinct, count) or 1,
                    min_value=0,
                    max_value=max(1, count - 1),
                )
            ],
        )
    )
    return CostEstimator(
        standard_repository(), catalog, coefficients=CoefficientSet()
    )


class TestInvariants:
    @given(
        count=st.integers(min_value=1, max_value=10**6),
        distinct=st.integers(min_value=1, max_value=10**6),
        object_size=st.integers(min_value=1, max_value=10**4),
        value=st.integers(min_value=-10, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_variables_finite_and_nonnegative(
        self, count, distinct, object_size, value
    ):
        estimator = make_estimator(count, distinct, object_size)
        plan = scan("R").where_eq("a", value).submit_to("w").build()
        estimate = estimator.estimate(
            plan, variables=tuple(RESULT_VARIABLES)
        )
        for node_estimate in estimate.nodes.values():
            for variable, val in node_estimate.values.items():
                assert isinstance(val, (int, float)), variable
                assert val >= 0, variable
                assert math.isfinite(float(val)), variable

    @given(
        count=st.integers(min_value=1, max_value=10**5),
        value=st.integers(min_value=0, max_value=10**5),
    )
    @settings(max_examples=60, deadline=None)
    def test_select_never_increases_cardinality(self, count, value):
        estimator = make_estimator(count=count)
        plan = scan("R").where_eq("a", value).build()
        estimate = estimator.estimate(plan, default_source="w")
        select_count = estimate.root.count_object
        scan_count = estimate.nodes[plan.child.node_id].count_object
        assert select_count <= scan_count + 1e-9

    @given(
        low_frac=st.floats(min_value=0.0, max_value=1.0),
        high_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_wider_ranges_cost_at_least_as_much(self, low_frac, high_frac):
        narrow_frac = min(low_frac, high_frac)
        wide_frac = max(low_frac, high_frac)
        estimator = make_estimator(count=10000, distinct=10000)
        costs = []
        for fraction in (narrow_frac, wide_frac):
            threshold = int(fraction * 9999)
            plan = Select(Scan("R"), Comparison("<=", attr("a"), lit(threshold)))
            costs.append(estimator.estimate(plan, default_source="w").total_time)
        assert costs[0] <= costs[1] + 1e-6

    @given(value=st.integers(min_value=0, max_value=999))
    @settings(max_examples=30, deadline=None)
    def test_estimates_deterministic(self, value):
        estimator = make_estimator()
        plan = scan("R").where_eq("a", value).submit_to("w").build()
        first = estimator.estimate(plan).total_time
        second = estimator.estimate(plan).total_time
        assert first == second

    @given(count=st.integers(min_value=1, max_value=10**5))
    @settings(max_examples=40, deadline=None)
    def test_submit_cost_at_least_child_cost(self, count):
        estimator = make_estimator(count=count)
        bare = Scan("R")
        shipped = scan("R").submit_to("w").build()
        bare_cost = estimator.estimate(bare, default_source="w").total_time
        shipped_cost = estimator.estimate(shipped).total_time
        assert shipped_cost >= bare_cost

    @given(
        count=st.integers(min_value=1, max_value=10**5),
        value=st.integers(min_value=0, max_value=10**5),
    )
    @settings(max_examples=40, deadline=None)
    def test_time_decomposition_consistent(self, count, value):
        """TimeFirst + TimeNext * CountObject reconstructs TotalTime for
        the chosen pipeline (the §2.3 three-form contract)."""
        estimator = make_estimator(count=count)
        plan = scan("R").where_eq("a", value).build()
        estimate = estimator.estimate(
            plan,
            default_source="w",
            variables=("TotalTime", "TimeFirst", "TimeNext", "CountObject"),
        )
        values = estimate.root.values
        reconstructed = values["TimeFirst"] + values["TimeNext"] * max(
            1.0, values["CountObject"]
        )
        assert reconstructed <= values["TotalTime"] * 1.01 + 1e-6

    @given(
        count=st.integers(min_value=2, max_value=10**4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_unindexed_select_costs_at_least_scan(self, count, seed):
        estimator = make_estimator(count=count, indexed=False)
        plan = scan("R").where_eq("a", seed).build()
        select_cost = estimator.estimate(plan, default_source="w").total_time
        scan_cost = estimator.estimate(Scan("R"), default_source="w").total_time
        assert select_cost >= scan_cost
