"""Tests for the calibration procedure (§6 / Figure 12 'Calibration')."""

import pytest

from repro.core.calibration import (
    CalibrationResult,
    DEFAULT_PROBE_SELECTIVITIES,
    _fit_line,
    calibrate_wrapper,
)
from repro.core.selectivity import index_scan_cost_yao
from repro.errors import CalibrationError
from repro.oo7 import TINY, load_database
from repro.wrappers import FlatFileWrapper, ObjectStoreWrapper


@pytest.fixture(scope="module")
def oo7_wrapper():
    return ObjectStoreWrapper("oo7", load_database(TINY))


@pytest.fixture(scope="module")
def paged_wrapper():
    """A 7000-object extent on ~100 pages: big enough that the probe
    range spans the concave region of the Yao curve."""
    from repro.sources.objectdb import ObjectDatabase

    db = ObjectDatabase()
    db.create_extent(
        "Parts",
        [{"Id": i} for i in range(7000)],
        object_size=56,
        indexed_attributes=["Id"],
        clustering="scattered",
    )
    return ObjectStoreWrapper("store", db)


class TestFitLine:
    def test_exact_line_recovered(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [10 + 2 * x for x in xs]
        intercept, slope = _fit_line(xs, ys)
        assert intercept == pytest.approx(10.0)
        assert slope == pytest.approx(2.0)

    def test_single_point_goes_through_origin(self):
        intercept, slope = _fit_line([4.0], [8.0])
        assert (intercept, slope) == (0.0, 2.0)

    def test_negative_intercept_clamped(self):
        # A convex series would fit a negative intercept; refit at origin.
        xs = [1.0, 2.0, 3.0]
        ys = [0.1, 1.0, 10.0]
        intercept, slope = _fit_line(xs, ys)
        assert intercept == 0.0
        assert slope > 0


class TestCalibrateWrapper:
    def test_scan_coefficients_recovered(self, oo7_wrapper):
        result = calibrate_wrapper(oo7_wrapper, collections=["AtomicParts"])
        # Device truth: 25 ms/page at 70 objects/page + 9 ms/object
        # -> ~9.36 ms per object scanned.
        assert result.coefficients.ms_per_object_scanned == pytest.approx(
            9.36, rel=0.05
        )

    def test_index_probes_recorded(self, paged_wrapper):
        result = calibrate_wrapper(paged_wrapper, collections=["Parts"])
        probes = [o for o in result.observations if o.kind == "index"]
        assert len(probes) == len(DEFAULT_PROBE_SELECTIVITIES)
        # The proportional fit is anchored by the largest probes (least
        # squares weights big k); it must pass near the biggest one.
        largest = max(probes, key=lambda o: o.rows)
        predicted = result.predicted_index_ms(largest.rows)
        assert predicted == pytest.approx(largest.measured_ms, rel=0.4)

    def test_linear_model_overshoots_at_high_selectivity(self, paged_wrapper):
        """The Figure 12 phenomenon on the simulated store: the calibrated
        proportional model overestimates once page accesses saturate, and
        underestimates the steep low-selectivity region."""
        result = calibrate_wrapper(paged_wrapper, collections=["Parts"])
        stats = paged_wrapper.engine.export_statistics("Parts")
        count = stats.count_object
        pages = paged_wrapper.engine.page_count("Parts")
        predicted_high = result.predicted_index_ms(0.7 * count)
        true_high = index_scan_cost_yao(0.7, count, pages)
        assert predicted_high > 1.2 * true_high
        predicted_low = result.predicted_index_ms(0.005 * count)
        true_low = index_scan_cost_yao(0.005, count, pages)
        assert predicted_low < true_low

    def test_probing_all_collections_by_default(self, oo7_wrapper):
        result = calibrate_wrapper(oo7_wrapper)
        probed = {o.collection for o in result.observations if o.kind == "scan"}
        assert "AtomicParts" in probed
        assert "Connections" in probed

    def test_statless_wrapper_rejected(self):
        wrapper = FlatFileWrapper("files", "log", rows=[{"a": 1}])
        with pytest.raises(CalibrationError):
            calibrate_wrapper(wrapper)

    def test_base_coefficients_preserved_elsewhere(self, oo7_wrapper):
        from repro.core.generic import GenericCoefficients

        base = GenericCoefficients(ms_per_message=42.0)
        result = calibrate_wrapper(
            oo7_wrapper, collections=["AtomicParts"], base=base
        )
        assert result.coefficients.ms_per_message == 42.0
        assert result.coefficients.ms_per_object_scanned != base.ms_per_object_scanned

    def test_result_is_dataclass_with_observations(self, oo7_wrapper):
        result = calibrate_wrapper(oo7_wrapper, collections=["AtomicParts"])
        assert isinstance(result, CalibrationResult)
        assert all(o.measured_ms > 0 for o in result.observations)
