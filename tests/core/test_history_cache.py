"""History recording × subanswer cache interaction.

§4.3.1 history rules must be built from *measured* executions only: a
cache hit answers in (near) zero simulated time, and recording that as
the subquery's cost would poison the query-scope rule exactly as it
would poison the drift tracker.  The executor guarantees this by
construction — cache hits never enter ``submit_log`` — and these tests
pin the guarantee at the mediator surface.
"""

from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.obs import ObservabilityOptions
from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper

SQL = (
    "SELECT * FROM AtomicParts, Suppliers "
    "WHERE AtomicParts.type = Suppliers.partType "
    "AND Suppliers.city = 'city1'"
)


def build_mediator(cache: bool, observability=None):
    mediator = Mediator(
        record_history=True,
        executor_options=ExecutorOptions(cache_subanswers=cache),
        observability=observability,
    )
    mediator.register(build_oo7_wrapper())
    mediator.register(build_sales_wrapper())
    return mediator


class TestHistoryWithCache:
    def test_first_run_records_each_submit_once(self):
        mediator = build_mediator(cache=True)
        first = mediator.query(SQL)
        assert first.cache_misses == 2
        assert len(mediator.history) == 2
        assert all(
            entry.executions == 1
            for entry in mediator.history._entries.values()
        )

    def test_cached_rerun_does_not_touch_history(self):
        mediator = build_mediator(cache=True)
        mediator.query(SQL)
        second = mediator.query(SQL)
        assert second.cache_hits == 2 and second.cache_misses == 0
        # No new entries, and — the crux — no execution-count bump: a
        # hit is not a measurement.
        assert len(mediator.history) == 2
        assert all(
            entry.executions == 1
            for entry in mediator.history._entries.values()
        )

    def test_uncached_rerun_does_update_history(self):
        mediator = build_mediator(cache=False)
        mediator.query(SQL)
        mediator.query(SQL)
        assert len(mediator.history) == 2
        assert all(
            entry.executions == 2
            for entry in mediator.history._entries.values()
        )

    def test_recorded_costs_are_the_measured_ones(self):
        mediator = build_mediator(cache=True)
        first = mediator.query(SQL)
        mediator.query(SQL)  # cached — must not zero the recorded costs
        total_recorded = sum(
            entry.last_total_ms for entry in mediator.history._entries.values()
        )
        assert 0 < total_recorded <= first.elapsed_ms

    def test_drift_tracker_follows_the_same_rule(self):
        mediator = build_mediator(
            cache=True, observability=ObservabilityOptions.all_on()
        )
        mediator.query(SQL)
        drift = mediator.telemetry.drift
        recorded = drift.observations
        assert recorded > 0
        mediator.query(SQL)  # all hits
        assert drift.observations == recorded
