"""Unit tests for repro.core.statistics."""

import math

import pytest

from repro.core.statistics import (
    ATTRIBUTE_STATISTICS,
    AttributeStats,
    CollectionStats,
    Constant,
    StatisticsCatalog,
)
from repro.errors import UnknownStatisticError


class TestConstant:
    def test_wraps_numbers_and_strings(self):
        assert Constant(5).value == 5
        assert Constant("Adiba").value == "Adiba"

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            Constant([1, 2])  # type: ignore[arg-type]

    def test_wrapping_a_constant_unwraps(self):
        assert Constant(Constant(7)).value == 7

    def test_numeric_comparisons(self):
        assert Constant(3) < Constant(5)
        assert Constant(5) >= Constant(5)
        assert Constant(5) == 5

    def test_string_comparisons_are_lexicographic(self):
        assert Constant("Adiba") < Constant("Valduriez")
        assert Constant("b") > "a"

    def test_cross_kind_comparison_raises(self):
        with pytest.raises(TypeError):
            _ = Constant("a") < Constant(3)

    def test_as_number_identity_for_numbers(self):
        assert Constant(42).as_number() == 42.0

    def test_as_number_preserves_string_order(self):
        names = ["Adiba", "Gardarin", "Naacke", "Tomasic", "Valduriez"]
        numbers = [Constant(n).as_number() for n in names]
        assert numbers == sorted(numbers)
        assert all(0.0 <= x < 1.0 for x in numbers)

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2


class TestAttributeStats:
    def test_lookup_all_statistics(self):
        stats = AttributeStats(
            "salary", indexed=True, count_distinct=10, min_value=1, max_value=9
        )
        assert stats.lookup("Indexed") is True
        assert stats.lookup("CountDistinct") == 10.0
        assert stats.lookup("Min") == Constant(1)
        assert stats.lookup("Max") == Constant(9)

    def test_min_max_coerced_to_constant(self):
        stats = AttributeStats("name", min_value="a", max_value="z")
        assert isinstance(stats.min_value, Constant)
        assert isinstance(stats.max_value, Constant)

    def test_unknown_statistic_name(self):
        stats = AttributeStats("salary")
        with pytest.raises(UnknownStatisticError):
            stats.lookup("Median")

    @pytest.mark.parametrize("statistic", ["CountDistinct", "Min", "Max"])
    def test_missing_values_raise(self, statistic):
        stats = AttributeStats("salary")
        with pytest.raises(UnknownStatisticError):
            stats.lookup(statistic)

    def test_negative_distinct_rejected(self):
        with pytest.raises(ValueError):
            AttributeStats("salary", count_distinct=-1)

    def test_has_range(self):
        assert AttributeStats("a", min_value=0, max_value=1).has_range
        assert not AttributeStats("a", min_value=0).has_range


class TestCollectionStats:
    def make(self):
        return CollectionStats.from_extent(
            "Employee",
            count_object=10000,
            object_size=120,
            attributes=[AttributeStats("salary", indexed=True, count_distinct=1000)],
        )

    def test_from_extent_derives_total_size(self):
        stats = self.make()
        assert stats.total_size == 10000 * 120

    def test_collection_level_lookup(self):
        stats = self.make()
        assert stats.lookup("CountObject") == 10000.0
        assert stats.lookup("TotalSize") == 1200000.0
        assert stats.lookup("ObjectSize") == 120.0

    def test_attribute_level_lookup(self):
        stats = self.make()
        assert stats.lookup("CountDistinct", "salary") == 1000.0

    def test_unknown_attribute(self):
        with pytest.raises(UnknownStatisticError):
            self.make().attribute("missing")

    def test_unknown_collection_statistic(self):
        with pytest.raises(UnknownStatisticError):
            self.make().lookup("PageCount")

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            CollectionStats("x", count_object=-1, total_size=0, object_size=0)

    def test_page_estimate_rounds_up(self):
        stats = CollectionStats("x", count_object=10, total_size=4097, object_size=410)
        assert stats.page_estimate == 2

    def test_page_estimate_minimum_one(self):
        stats = CollectionStats("x", count_object=0, total_size=0, object_size=0)
        assert stats.page_estimate == 1

    def test_add_attribute(self):
        stats = self.make()
        stats.add_attribute(AttributeStats("name"))
        assert "name" in stats.attributes


class TestStatisticsCatalog:
    def test_put_get_roundtrip(self):
        catalog = StatisticsCatalog()
        stats = CollectionStats.from_extent("E", 10, 8)
        catalog.put(stats)
        assert catalog.get("E") is stats
        assert "E" in catalog
        assert len(catalog) == 1

    def test_get_missing_raises(self):
        with pytest.raises(UnknownStatisticError):
            StatisticsCatalog().get("nope")

    def test_put_replaces(self):
        catalog = StatisticsCatalog()
        catalog.put(CollectionStats.from_extent("E", 10, 8))
        catalog.put(CollectionStats.from_extent("E", 20, 8))
        assert catalog.get("E").count_object == 20

    def test_names_sorted(self):
        catalog = StatisticsCatalog()
        catalog.put(CollectionStats.from_extent("B", 1, 1))
        catalog.put(CollectionStats.from_extent("A", 1, 1))
        assert catalog.names() == ["A", "B"]

    def test_remove(self):
        catalog = StatisticsCatalog()
        catalog.put(CollectionStats.from_extent("E", 10, 8))
        catalog.remove("E")
        assert "E" not in catalog
        catalog.remove("E")  # idempotent

    def test_iteration(self):
        catalog = StatisticsCatalog()
        catalog.put(CollectionStats.from_extent("E", 10, 8))
        assert [s.name for s in catalog] == ["E"]


def test_attribute_statistics_tuple_matches_paper():
    """Figure 7 names all four attribute statistics."""
    assert set(ATTRIBUTE_STATISTICS) == {"Indexed", "CountDistinct", "Min", "Max"}
