"""Tests for the two-phase cost evaluation algorithm (§4.2, Figure 11)."""

import math

import pytest

from repro.algebra.builders import scan
from repro.algebra.expressions import eq
from repro.core.estimator import (
    ConflictPolicy,
    CostEstimator,
    EstimatorOptions,
    SourceEnvironment,
)
from repro.core.generic import CoefficientSet, standard_repository
from repro.core.rules import (
    rule,
    scan_pattern,
    select_eq_pattern,
    select_pattern,
    var,
)
from repro.core.scopes import RuleRepository
from repro.core.statistics import AttributeStats, CollectionStats, StatisticsCatalog
from repro.errors import FormulaError, NoApplicableRuleError


@pytest.fixture
def catalog():
    cat = StatisticsCatalog()
    cat.put(
        CollectionStats.from_extent(
            "Employee",
            count_object=10000,
            object_size=120,
            attributes=[
                AttributeStats(
                    "salary",
                    indexed=True,
                    count_distinct=1000,
                    min_value=1000,
                    max_value=30000,
                ),
                AttributeStats("name", indexed=False, count_distinct=10000),
            ],
        )
    )
    cat.put(
        CollectionStats.from_extent(
            "Book",
            count_object=5000,
            object_size=200,
            attributes=[
                AttributeStats("author_id", indexed=True, count_distinct=2500)
            ],
        )
    )
    return cat


def make_estimator(catalog, repository=None, **opts):
    repository = repository or standard_repository()
    return CostEstimator(
        repository,
        catalog,
        options=EstimatorOptions(**opts),
        coefficients=CoefficientSet(),
    )


class TestGenericEstimates:
    def test_scan_cardinality_from_catalog(self, catalog):
        estimator = make_estimator(catalog)
        result = estimator.estimate(scan("Employee").build(), default_source="w")
        assert result.root.count_object == 10000.0
        assert result.root.values["TotalSize"] == 10000.0 * 120

    def test_select_reduces_cardinality(self, catalog):
        estimator = make_estimator(catalog)
        plan = scan("Employee").where_eq("salary", 5).build()
        result = estimator.estimate(plan, default_source="w")
        assert result.root.count_object == pytest.approx(10.0)  # 10000/1000

    def test_index_path_beats_sequential(self, catalog):
        estimator = make_estimator(catalog)
        indexed = scan("Employee").where_eq("salary", 5).build()
        unindexed = scan("Employee").where_eq("name", "Naacke").build()
        t_indexed = estimator.estimate(indexed, default_source="w").total_time
        t_unindexed = estimator.estimate(unindexed, default_source="w").total_time
        assert t_indexed < t_unindexed

    def test_unknown_collection_uses_standard_values(self, catalog):
        estimator = make_estimator(catalog)
        result = estimator.estimate(scan("Mystery").build(), default_source="w")
        assert result.root.count_object == estimator.options.default_count_object

    def test_join_cardinality(self, catalog):
        estimator = make_estimator(catalog)
        plan = (
            scan("Employee")
            .join(scan("Book"), "id", "author_id", "Employee", "Book")
            .build()
        )
        result = estimator.estimate(plan, default_source="w")
        # 10000 * 5000 / max(d_id_fallback=100, d_author=2500)
        assert result.root.count_object == pytest.approx(10000 * 5000 / 2500)

    def test_sort_is_blocking(self, catalog):
        estimator = make_estimator(catalog)
        plan = scan("Employee").order_by("salary").build()
        result = estimator.estimate(
            plan, default_source="w", variables=("TotalTime", "TimeFirst")
        )
        assert result.root.values["TimeFirst"] == result.root.values["TotalTime"]

    def test_time_next_consistency(self, catalog):
        estimator = make_estimator(catalog)
        plan = scan("Employee").build()
        result = estimator.estimate(
            plan,
            default_source="w",
            variables=("TotalTime", "TimeFirst", "TimeNext", "CountObject"),
        )
        values = result.root.values
        reconstructed = values["TimeFirst"] + values["TimeNext"] * values["CountObject"]
        assert reconstructed == pytest.approx(values["TotalTime"], rel=1e-6)

    def test_submit_adds_communication_cost(self, catalog):
        estimator = make_estimator(catalog)
        bare = scan("Employee").where_eq("salary", 5).build()
        shipped = scan("Employee").where_eq("salary", 5).submit_to("w").build()
        t_bare = estimator.estimate(bare, default_source="w").total_time
        t_shipped = estimator.estimate(shipped).total_time
        assert t_shipped > t_bare

    def test_aggregate_group_estimate(self, catalog):
        from repro.algebra.builders import count_star

        estimator = make_estimator(catalog)
        plan = scan("Employee").aggregate(group_by=["salary"], aggregates=[count_star()]).build()
        result = estimator.estimate(plan, default_source="w")
        assert result.root.count_object == pytest.approx(1000.0)

    def test_union_adds_cardinalities(self, catalog):
        estimator = make_estimator(catalog)
        plan = scan("Employee").union(scan("Book")).build()
        result = estimator.estimate(plan, default_source="w")
        assert result.root.count_object == 15000.0


class TestBlending:
    def test_wrapper_rule_overrides_generic(self, catalog):
        repository = standard_repository()
        repository.add_wrapper_rule(
            "w", rule(scan_pattern("Employee"), ["TotalTime = 777"], name="special")
        )
        estimator = make_estimator(catalog, repository)
        result = estimator.estimate(scan("Employee").build(), default_source="w")
        assert result.total_time == 777.0
        assert "special" in result.root.provenance["TotalTime"]

    def test_partial_rule_falls_back_for_missing_variables(self, catalog):
        """Figure 8: "for both rules, several formula are missing.  Default
        formulas ... are used in this case"."""
        repository = standard_repository()
        repository.add_wrapper_rule(
            "w", rule(scan_pattern("Employee"), ["TotalTime = 777"])
        )
        estimator = make_estimator(catalog, repository)
        result = estimator.estimate(scan("Employee").build(), default_source="w")
        assert result.total_time == 777.0
        # CountObject still computed by the generic model.
        assert result.root.count_object == 10000.0
        assert "generic" in result.root.provenance["CountObject"]

    def test_figure8_rules_end_to_end(self, catalog):
        """The paper's Figure 8 pair: a scan rule and a select rule whose
        TotalTime builds on the scan's TotalTime."""
        repository = standard_repository()
        repository.add_wrapper_rules(
            "w",
            [
                rule(
                    scan_pattern("Employee"),
                    [
                        "TotalTime = 120 + Employee.TotalSize * 12 "
                        "+ Employee.CountObject / Employee.salary.CountDistinct"
                    ],
                    name="fig8-scan",
                ),
                rule(
                    select_eq_pattern(var("C"), var("A"), var("V")),
                    [
                        "CountObject = C.CountObject * selectivity(A, V)",
                        "TotalSize = CountObject * C.ObjectSize",
                        "TotalTime = C.TotalTime + C.TotalSize * 25",
                    ],
                    name="fig8-select",
                ),
            ],
        )
        estimator = make_estimator(catalog, repository)
        env = SourceEnvironment(name="w")
        env.functions["selectivity"] = lambda a, v: 0.001
        estimator.register_environment(env)

        plan = scan("Employee").where_eq("salary", 10).build()
        result = estimator.estimate(plan, default_source="w")
        scan_node = plan.child
        scan_time = 120 + 1200000 * 12 + 10000 / 1000
        assert result.nodes[scan_node.node_id].total_time == pytest.approx(scan_time)
        assert result.root.count_object == pytest.approx(10.0)
        assert result.root.values["TotalSize"] == pytest.approx(10.0 * 120)
        assert result.total_time == pytest.approx(scan_time + 1200000 * 25)

    def test_wrapper_variable_used_in_formula(self, catalog):
        repository = standard_repository()
        repository.add_wrapper_rule(
            "w",
            rule(
                scan_pattern("Employee"),
                ["TotalTime = Employee.TotalSize / PageSize"],
            ),
        )
        estimator = make_estimator(catalog, repository)
        env = SourceEnvironment(name="w", variables={"PageSize": 4000.0})
        estimator.register_environment(env)
        result = estimator.estimate(scan("Employee").build(), default_source="w")
        assert result.total_time == pytest.approx(1200000 / 4000)

    def test_rule_local_variable(self, catalog):
        repository = standard_repository()
        repository.add_wrapper_rule(
            "w",
            rule(
                scan_pattern("Employee"),
                ["CountPage = Employee.TotalSize / 4000", "TotalTime = CountPage * 25"],
            ),
        )
        estimator = make_estimator(catalog, repository)
        result = estimator.estimate(scan("Employee").build(), default_source="w")
        assert result.total_time == pytest.approx(300 * 25)

    def test_predicate_scope_only_for_matching_constant(self, catalog):
        repository = standard_repository()
        repository.add_wrapper_rule(
            "w",
            rule(
                select_eq_pattern("Employee", "salary", 77),
                ["TotalTime = 1"],
                name="pinned",
            ),
        )
        estimator = make_estimator(catalog, repository)
        pinned = scan("Employee").where_eq("salary", 77).build()
        other = scan("Employee").where_eq("salary", 78).build()
        assert estimator.estimate(pinned, default_source="w").total_time == 1.0
        assert estimator.estimate(other, default_source="w").total_time > 1.0


class TestConflictResolution:
    def make_repo(self):
        repository = standard_repository()
        repository.add_wrapper_rule(
            "w", rule(scan_pattern(var("C")), ["TotalTime = 50"], name="a")
        )
        repository.add_wrapper_rule(
            "w", rule(scan_pattern(var("C")), ["TotalTime = 20"], name="b")
        )
        return repository

    def test_lowest_value_wins(self, catalog):
        estimator = make_estimator(catalog, self.make_repo())
        result = estimator.estimate(scan("Employee").build(), default_source="w")
        assert result.total_time == 20.0

    def test_first_match_policy(self, catalog):
        estimator = make_estimator(
            catalog, self.make_repo(), conflict_policy=ConflictPolicy.FIRST
        )
        result = estimator.estimate(scan("Employee").build(), default_source="w")
        assert result.total_time == 50.0

    def test_multiple_formulas_in_one_rule_take_lowest(self, catalog):
        repository = standard_repository()
        repository.add_wrapper_rule(
            "w",
            rule(scan_pattern(var("C")), ["TotalTime = 50", "TotalTime = 30"]),
        )
        estimator = make_estimator(catalog, repository)
        result = estimator.estimate(scan("Employee").build(), default_source="w")
        assert result.total_time == 30.0


class TestPruning:
    def test_bound_aborts_estimation(self, catalog):
        estimator = make_estimator(catalog)
        plan = scan("Employee").where_eq("name", "x").build()
        full = estimator.estimate(plan, default_source="w")
        pruned = estimator.estimate(plan, default_source="w", bound_ms=1.0)
        assert pruned.pruned
        assert not full.pruned
        assert pruned.total_time > 1.0

    def test_generous_bound_does_not_prune(self, catalog):
        estimator = make_estimator(catalog)
        plan = scan("Employee").build()
        result = estimator.estimate(plan, default_source="w", bound_ms=1e12)
        assert not result.pruned


class TestRequiredVariablePropagation:
    def test_lazy_and_eager_agree(self, catalog):
        plan = (
            scan("Employee")
            .where_eq("salary", 5)
            .keep("salary")
            .submit_to("w")
            .build()
        )
        lazy = make_estimator(catalog, propagate_required=True)
        eager = make_estimator(catalog, propagate_required=False)
        t_lazy = lazy.estimate(plan).total_time
        t_eager = eager.estimate(plan).total_time
        assert t_lazy == pytest.approx(t_eager)

    def test_lazy_computes_fewer_variables(self, catalog):
        plan = scan("Employee").where_eq("salary", 5).submit_to("w").build()
        lazy = make_estimator(catalog, propagate_required=True)
        eager = make_estimator(catalog, propagate_required=False)
        lazy.estimate(plan)
        lazy_count = lazy.last_counters.variables_computed
        eager.estimate(plan)
        eager_count = eager.last_counters.variables_computed
        assert lazy_count < eager_count

    def test_constant_root_formula_cuts_recursion(self, catalog):
        """Step 1 optimization (ii): "In the best case, the root node has
        formulas containing only constants and consequently no recursive
        traversal of the tree is performed"."""
        repository = standard_repository()
        repository.add_wrapper_rule(
            "w",
            rule(
                select_pattern(var("C")),
                ["TotalTime = 42", "CountObject = 7", "TotalSize = 99"],
            ),
        )
        estimator = make_estimator(catalog, repository)
        plan = scan("Employee").where_eq("salary", 5).build()
        result = estimator.estimate(plan, default_source="w")
        assert result.total_time == 42.0
        # The scan node was never visited for computation.
        scan_estimate = result.nodes.get(plan.child.node_id)
        assert scan_estimate is None or not scan_estimate.values


class TestErrors:
    def test_no_rule_at_all(self, catalog):
        estimator = CostEstimator(RuleRepository(), catalog)
        with pytest.raises(NoApplicableRuleError):
            estimator.estimate(scan("Employee").build(), default_source="w")

    def test_cyclic_rule_detected(self, catalog):
        repository = standard_repository()
        repository.add_wrapper_rule(
            "w",
            rule(scan_pattern(var("C")), ["TotalTime = TotalTime + 1"]),
        )
        estimator = make_estimator(catalog, repository)
        with pytest.raises(FormulaError, match="cycl"):
            estimator.estimate(scan("Employee").build(), default_source="w")

    def test_counters_populated(self, catalog):
        estimator = make_estimator(catalog)
        estimator.estimate(scan("Employee").build(), default_source="w")
        assert estimator.last_counters.variables_computed > 0
        assert estimator.last_counters.formulas_evaluated > 0


class TestExplain:
    def test_explain_shows_provenance(self, catalog):
        repository = standard_repository()
        repository.add_wrapper_rule(
            "w", rule(scan_pattern("Employee"), ["TotalTime = 777"], name="mine")
        )
        estimator = make_estimator(catalog, repository)
        plan = scan("Employee").submit_to("w").build()
        text = estimator.estimate(plan).explain()
        assert "mine" in text
        assert "submit[w]" in text
        assert "collection" in text  # the scope of the overriding rule
