"""Unit tests for the generic cost model's individual rules (§2.3)."""

import math

import pytest

from repro.algebra.builders import count_star, scan
from repro.algebra.expressions import Comparison, attr, lit
from repro.algebra.logical import Join, Scan, Select
from repro.core.estimator import CostEstimator, EstimatorOptions
from repro.core.generic import (
    CoefficientSet,
    GenericCoefficients,
    MEDIATOR_COEFFICIENTS,
    all_generic_rules,
    install_generic_model,
    standard_repository,
)
from repro.core.scopes import RuleRepository
from repro.core.statistics import AttributeStats, CollectionStats, StatisticsCatalog


@pytest.fixture
def catalog():
    cat = StatisticsCatalog()
    cat.put(
        CollectionStats.from_extent(
            "R",
            1000,
            100,
            attributes=[
                AttributeStats("a", indexed=True, count_distinct=100,
                               min_value=0, max_value=999),
                AttributeStats("b", indexed=False, count_distinct=10),
            ],
        )
    )
    cat.put(
        CollectionStats.from_extent(
            "S",
            500,
            80,
            attributes=[
                AttributeStats("a", indexed=True, count_distinct=500),
            ],
        )
    )
    return cat


@pytest.fixture
def estimator(catalog):
    return CostEstimator(
        standard_repository(), catalog, coefficients=CoefficientSet()
    )


def total(estimator, plan, source="w"):
    return estimator.estimate(plan, default_source=source).total_time


class TestScanRule:
    def test_cost_linear_in_cardinality(self, estimator):
        coefficients = GenericCoefficients()
        expected = (
            coefficients.ms_scan_startup
            + 1000 * coefficients.ms_per_object_scanned
        )
        assert total(estimator, Scan("R")) == pytest.approx(expected)


class TestSelectRules:
    def test_equality_cardinality(self, estimator):
        plan = scan("R").where_eq("a", 5).build()
        estimate = estimator.estimate(plan, default_source="w")
        assert estimate.root.count_object == pytest.approx(10.0)  # 1000/100

    def test_range_cardinality_interpolates(self, estimator):
        plan = Select(Scan("R"), Comparison("<=", attr("a"), lit(499)))
        estimate = estimator.estimate(plan, default_source="w")
        assert estimate.root.count_object == pytest.approx(500, rel=0.01)

    def test_index_path_formula(self, estimator):
        coefficients = GenericCoefficients()
        plan = scan("R").where_eq("a", 5).build()
        expected = coefficients.ms_index_startup + 10 * coefficients.ms_per_object_index
        assert total(estimator, plan) == pytest.approx(expected)

    def test_unindexed_uses_sequential(self, estimator):
        coefficients = GenericCoefficients()
        plan = scan("R").where_eq("b", 5).build()
        scan_cost = (
            coefficients.ms_scan_startup + 1000 * coefficients.ms_per_object_scanned
        )
        expected = scan_cost + 1000 * coefficients.ms_per_object_filter
        assert total(estimator, plan) == pytest.approx(expected)

    def test_select_not_on_scan_never_uses_index(self, estimator):
        # select over project over scan: not an access-path shape.
        plan = scan("R").keep("a").where_eq("a", 5).build()
        coefficients = GenericCoefficients()
        cost = total(estimator, plan)
        index_cost = (
            coefficients.ms_index_startup + 10 * coefficients.ms_per_object_index
        )
        assert cost > index_cost


class TestJoinRules:
    def make_join(self, right_indexed=True):
        right = Scan("S") if right_indexed else Scan("R")
        return Join(
            Scan("R"),
            right,
            Comparison("=", attr("a", "R"), attr("a", "S" if right_indexed else "R")),
        )

    def test_cardinality_uses_max_distinct(self, estimator):
        plan = scan("R").join(scan("S"), "a", "a", "R", "S").build()
        estimate = estimator.estimate(plan, default_source="w")
        assert estimate.root.count_object == pytest.approx(1000 * 500 / 500)

    def test_index_join_beats_nested_loop_when_indexed(self, estimator):
        plan = scan("R").join(scan("S"), "a", "a", "R", "S").build()
        estimate = estimator.estimate(plan, default_source="w")
        assert "join-index" in estimate.root.provenance["TotalTime"]

    def test_method_choice_is_lowest_value(self, catalog):
        """Force nested-loop to win by making inputs tiny."""
        catalog.put(CollectionStats.from_extent("T1", 2, 8))
        catalog.put(CollectionStats.from_extent("T2", 2, 8))
        estimator = CostEstimator(
            standard_repository(), catalog, coefficients=CoefficientSet()
        )
        plan = scan("T1").join(scan("T2"), "x", "y", "T1", "T2").build()
        estimate = estimator.estimate(plan, default_source="w")
        # 2x2 nested loop is cheaper than sorting both sides.
        assert "nested-loop" in estimate.root.provenance["TotalTime"]


class TestOtherRules:
    def test_aggregate_without_groups_yields_one_row(self, estimator):
        plan = scan("R").aggregate([], [count_star()]).build()
        estimate = estimator.estimate(plan, default_source="w")
        assert estimate.root.count_object == 1.0

    def test_aggregate_groups_capped_by_input(self, estimator):
        plan = scan("R").aggregate(["a", "b"], [count_star()]).build()
        estimate = estimator.estimate(plan, default_source="w")
        assert estimate.root.count_object <= 1000.0

    def test_project_shrinks_size(self, estimator):
        base = estimator.estimate(Scan("R"), default_source="w")
        plan = scan("R").keep("a").build()
        projected = estimator.estimate(plan, default_source="w")
        assert projected.root.values["TotalSize"] < base.root.values["TotalSize"]

    def test_submit_uses_mediator_coefficients(self, estimator):
        plan = scan("R").submit_to("w").build()
        estimate = estimator.estimate(plan)
        inner = estimate.nodes[plan.child.node_id]
        expected = (
            inner.total_time
            + 2 * MEDIATOR_COEFFICIENTS.ms_per_message
            + float(inner.values["TotalSize"]) * MEDIATOR_COEFFICIENTS.ms_per_byte
        )
        assert estimate.total_time == pytest.approx(expected)

    def test_distinct_is_blocking(self, estimator):
        plan = scan("R").distinct().build()
        estimate = estimator.estimate(
            plan, default_source="w", variables=("TotalTime", "TimeFirst")
        )
        assert estimate.root.values["TimeFirst"] == estimate.root.values["TotalTime"]


class TestInstallers:
    def test_generic_rules_cover_all_operators(self):
        operators = {r.head.operator for r in all_generic_rules()}
        assert operators == {
            "scan",
            "select",
            "project",
            "sort",
            "distinct",
            "aggregate",
            "join",
            "bindjoin",
            "union",
            "submit",
            "scatter",
        }

    def test_install_counts_match(self):
        repository = RuleRepository()
        count = install_generic_model(repository)
        assert len(repository) == count

    def test_every_rule_provides_the_five_variables_somewhere(self):
        """The §4.2 guarantee: at least one default rule provides every
        variable for every operator."""
        from repro.core.formulas import RESULT_VARIABLES

        by_operator: dict[str, set[str]] = {}
        for generic_rule in all_generic_rules():
            by_operator.setdefault(generic_rule.head.operator, set()).update(
                generic_rule.provides
            )
        for operator, provided in by_operator.items():
            assert provided == set(RESULT_VARIABLES), operator

    def test_coefficient_scaling(self):
        base = GenericCoefficients()
        doubled = base.scaled(2.0)
        assert doubled.ms_scan_startup == base.ms_scan_startup * 2
        assert doubled.ms_per_byte == base.ms_per_byte * 2

    def test_coefficient_set_per_source(self):
        coefficients = CoefficientSet()
        special = GenericCoefficients(ms_scan_startup=1.0)
        coefficients.set_source("w", special)
        assert coefficients.for_source("w") is special
        assert coefficients.for_source("other") is coefficients.default
        assert coefficients.for_source(None) is coefficients.mediator
        assert coefficients.sources() == ["w"]
