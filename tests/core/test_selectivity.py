"""Unit and property tests for repro.core.selectivity."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selectivity import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    equality_selectivity,
    index_scan_cost_linear,
    index_scan_cost_yao,
    inequality_selectivity,
    join_selectivity,
    range_selectivity,
    yao_exact,
    yao_fraction,
    yao_pages,
)
from repro.core.statistics import AttributeStats


def attr(distinct=None, low=None, high=None, indexed=False):
    return AttributeStats(
        "a", indexed=indexed, count_distinct=distinct, min_value=low, max_value=high
    )


class TestUniformEstimates:
    def test_equality_is_one_over_distinct(self):
        assert equality_selectivity(attr(distinct=100)) == pytest.approx(0.01)

    def test_equality_fallback(self):
        assert equality_selectivity(attr()) == pytest.approx(0.1)

    def test_inequality_complements(self):
        assert inequality_selectivity(attr(distinct=4)) == pytest.approx(0.75)

    def test_range_interpolates(self):
        stats = attr(low=0, high=100)
        assert range_selectivity(stats, 0, 50) == pytest.approx(0.5)
        assert range_selectivity(stats, 25, 75) == pytest.approx(0.5)

    def test_range_clamps_to_domain(self):
        stats = attr(low=0, high=100)
        assert range_selectivity(stats, -50, 200) == pytest.approx(1.0)

    def test_range_empty(self):
        stats = attr(low=0, high=100)
        assert range_selectivity(stats, 80, 20) == 0.0

    def test_range_one_sided(self):
        stats = attr(low=0, high=100)
        assert range_selectivity(stats, None, 25) == pytest.approx(0.25)
        assert range_selectivity(stats, 75, None) == pytest.approx(0.25)

    def test_range_without_stats_uses_third(self):
        assert range_selectivity(attr(), 0, 10) == pytest.approx(1 / 3)

    def test_range_single_valued_domain(self):
        assert range_selectivity(attr(low=5, high=5), 0, 10) == 1.0

    def test_range_exclusive_bounds_shave_mass(self):
        stats = attr(distinct=100, low=0, high=100)
        inclusive = range_selectivity(stats, 0, 50)
        exclusive = range_selectivity(
            stats, 0, 50, low_inclusive=False, high_inclusive=False
        )
        assert exclusive < inclusive

    def test_range_string_bounds(self):
        stats = attr(low="a", high="z")
        mid = range_selectivity(stats, "a", "m")
        assert 0.0 < mid < 1.0

    def test_join_selectivity_uses_larger_distinct(self):
        assert join_selectivity(attr(distinct=10), attr(distinct=1000)) == pytest.approx(
            0.001
        )

    def test_join_selectivity_fallback(self):
        assert join_selectivity(attr(), attr()) == pytest.approx(0.01)

    def test_join_selectivity_one_side_known(self):
        assert join_selectivity(attr(distinct=50), attr()) == pytest.approx(0.02)


class TestHistograms:
    def test_equi_width_covers_all_values(self):
        histogram = EquiWidthHistogram.build(list(range(100)), bucket_count=10)
        assert sum(b.count for b in histogram.buckets) == 100

    def test_equi_depth_balances_counts(self):
        histogram = EquiDepthHistogram.build(list(range(100)), bucket_count=10)
        counts = [b.count for b in histogram.buckets]
        assert max(counts) - min(counts) <= 1

    def test_range_selectivity_uniform_data(self):
        histogram = EquiWidthHistogram.build(list(range(1000)), bucket_count=20)
        assert histogram.selectivity_range(0, 499) == pytest.approx(0.5, abs=0.05)

    def test_eq_selectivity(self):
        histogram = EquiWidthHistogram.build([1] * 90 + [100] * 10, bucket_count=2)
        assert histogram.selectivity_eq(1) == pytest.approx(0.9)

    def test_skew_better_than_uniform(self):
        """Histograms exist to beat uniform estimates on skewed data."""
        values = [1] * 900 + list(range(2, 102))
        histogram = EquiDepthHistogram.build(values, bucket_count=10)
        est = histogram.selectivity_range(2, 101)
        true = 100 / 1000
        assert est == pytest.approx(true, abs=0.15)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            EquiWidthHistogram.build([])
        with pytest.raises(ValueError):
            EquiDepthHistogram.build([])

    def test_bad_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            EquiWidthHistogram.build([1.0], bucket_count=0)

    def test_single_value_histogram(self):
        histogram = EquiWidthHistogram.build([5.0] * 10)
        assert histogram.selectivity_eq(5.0) == pytest.approx(1.0)
        assert histogram.selectivity_range(None, None) == pytest.approx(1.0)

    def test_out_of_range_eq_is_zero(self):
        histogram = EquiWidthHistogram.build(list(range(10)))
        assert histogram.selectivity_eq(99.0) == 0.0

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        buckets=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=50)
    def test_property_selectivities_in_unit_interval(self, values, buckets):
        for cls in (EquiWidthHistogram, EquiDepthHistogram):
            histogram = cls.build(values, bucket_count=buckets)
            assert 0.0 <= histogram.selectivity_range(None, None) <= 1.0
            assert 0.0 <= histogram.selectivity_eq(values[0]) <= 1.0

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=10, max_size=300
        )
    )
    @settings(max_examples=50)
    def test_property_full_range_captures_everything(self, values):
        histogram = EquiDepthHistogram.build([float(v) for v in values], 8)
        assert histogram.selectivity_range(-1, 1001) == pytest.approx(1.0, abs=1e-9)


class TestYao:
    # The paper's §5 experiment: 70 000 objects on 1000 pages.
    N, M = 70000, 1000

    def test_zero_selectivity_fetches_nothing(self):
        assert yao_pages(0.0, self.N, self.M) == 0.0
        assert yao_exact(self.N, self.M, 0) == 0.0

    def test_full_selectivity_fetches_all_pages(self):
        assert yao_pages(1.0, self.N, self.M) == pytest.approx(self.M, rel=1e-9)
        assert yao_exact(self.N, self.M, self.N) == pytest.approx(self.M)

    def test_saturation_at_high_object_density(self):
        """With 70 objects/page, even 10% selectivity touches ~all pages."""
        assert yao_fraction(0.10, self.N, self.M) > 0.99

    def test_exact_close_to_approximation(self):
        for selectivity in (0.001, 0.01, 0.05, 0.2):
            selected = int(selectivity * self.N)
            exact = yao_exact(self.N, self.M, selected)
            approx = yao_pages(selectivity, self.N, self.M)
            assert approx == pytest.approx(exact, rel=0.05)

    def test_monotone_in_selectivity(self):
        fractions = [yao_fraction(s / 100, self.N, self.M) for s in range(0, 100, 5)]
        assert fractions == sorted(fractions)

    def test_concavity(self):
        """The Yao curve is concave — the phenomenon Figure 12 exploits."""
        f = lambda s: yao_pages(s, self.N, self.M)
        assert f(0.02) - f(0.01) > f(0.61) - f(0.60)

    @given(
        selectivity=st.floats(min_value=0.0, max_value=1.0),
        count_object=st.integers(min_value=1, max_value=10**6),
        count_page=st.integers(min_value=1, max_value=10**4),
    )
    @settings(max_examples=100)
    def test_property_fraction_bounded(self, selectivity, count_object, count_page):
        fraction = yao_fraction(selectivity, count_object, count_page)
        assert 0.0 <= fraction <= 1.0

    @given(
        count_object=st.integers(min_value=1, max_value=5000),
        count_page=st.integers(min_value=1, max_value=100),
        selected=st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=100)
    def test_property_exact_bounded_by_pages_and_picks(
        self, count_object, count_page, selected
    ):
        pages = yao_exact(count_object, count_page, selected)
        assert 0.0 <= pages <= count_page + 1e-9
        assert pages <= min(selected, count_object) + 1e-9 or count_page == 0


class TestCostCurves:
    def test_yao_cost_uses_paper_constants(self):
        # sel=0.7 on the OO7 AtomicParts: ~1000 pages * 25ms + 49000 * 9ms
        cost = index_scan_cost_yao(0.7, 70000, 1000)
        assert cost == pytest.approx(25.0 * 1000 + 0.7 * 70000 * 9.0, rel=0.01)

    def test_linear_cost_proportional(self):
        assert index_scan_cost_linear(0.5, 1000, 2.0) == pytest.approx(1000.0)

    def test_linear_overshoots_yao_at_high_selectivity(self):
        """The Figure 12 gap: a coefficient fitted at low selectivity
        overestimates once the page accesses saturate."""
        slope = index_scan_cost_yao(0.01, 70000, 1000) / (0.01 * 70000)
        linear = index_scan_cost_linear(0.7, 70000, slope)
        true = index_scan_cost_yao(0.7, 70000, 1000)
        assert linear > 1.2 * true
