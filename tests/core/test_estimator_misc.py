"""Remaining estimator surface: one-shot helper, context resolution edges,
explain rendering details."""

import pytest

from repro.algebra.builders import scan
from repro.algebra.logical import Scan
from repro.core.estimator import CostEstimator, estimate_once
from repro.core.generic import CoefficientSet, standard_repository
from repro.core.rules import rule, scan_pattern, select_eq_pattern, var
from repro.core.statistics import AttributeStats, CollectionStats, StatisticsCatalog
from repro.errors import FormulaError


def make_catalog():
    catalog = StatisticsCatalog()
    catalog.put(
        CollectionStats.from_extent(
            "E",
            100,
            50,
            attributes=[
                AttributeStats(
                    "a", indexed=True, count_distinct=10, min_value=0, max_value=99
                )
            ],
        )
    )
    return catalog


class TestEstimateOnce:
    def test_one_shot_convenience(self):
        estimate = estimate_once(
            Scan("E"),
            standard_repository(),
            make_catalog(),
            default_source="w",
        )
        assert estimate.root.count_object == 100.0


class TestPathResolutionEdges:
    def make_estimator(self, rules):
        repository = standard_repository()
        repository.add_wrapper_rules("w", rules)
        return CostEstimator(
            repository, make_catalog(), coefficients=CoefficientSet()
        )

    def test_bare_attribute_stat_resolves_via_primary_collection(self):
        # ``A.Min`` where A is the bound attribute name (Figure 7:
        # "Attribute and Collection may be omitted in non-ambiguous cases").
        estimator = self.make_estimator(
            [
                rule(
                    select_eq_pattern("E", var("A"), var("V")),
                    ["TotalTime = A.Min + A.Max"],
                )
            ]
        )
        plan = scan("E").where_eq("a", 5).build()
        estimate = estimator.estimate(plan, default_source="w")
        assert estimate.total_time == 0 + 99

    def test_three_part_path_with_bound_attribute_variable(self):
        estimator = self.make_estimator(
            [
                rule(
                    select_eq_pattern(var("C"), var("A"), var("V")),
                    ["TotalTime = C.A.CountDistinct"],
                )
            ]
        )
        plan = scan("E").where_eq("a", 5).build()
        estimate = estimator.estimate(plan, default_source="w")
        assert estimate.total_time == 10.0

    def test_unknown_single_name_raises_formula_error(self):
        estimator = self.make_estimator(
            [rule(scan_pattern("E"), ["TotalTime = Mystery"])]
        )
        with pytest.raises(FormulaError, match="Mystery"):
            estimator.estimate(Scan("E"), default_source="w")

    def test_bad_statistic_name_raises(self):
        estimator = self.make_estimator(
            [rule(scan_pattern("E"), ["TotalTime = E.Median"])]
        )
        with pytest.raises(FormulaError):
            estimator.estimate(Scan("E"), default_source="w")

    def test_binding_value_usable_in_arithmetic(self):
        estimator = self.make_estimator(
            [
                rule(
                    select_eq_pattern("E", "a", var("V")),
                    ["TotalTime = V * 2"],
                )
            ]
        )
        plan = scan("E").where_eq("a", 21).build()
        assert estimator.estimate(plan, default_source="w").total_time == 42.0


class TestExplainRendering:
    def test_uncosted_children_marked(self):
        repository = standard_repository()
        repository.add_wrapper_rule(
            "w",
            rule(
                select_eq_pattern("E", "a", var("V")),
                ["TotalTime = 1", "CountObject = 1", "TotalSize = 1"],
            ),
        )
        estimator = CostEstimator(
            repository, make_catalog(), coefficients=CoefficientSet()
        )
        plan = scan("E").where_eq("a", 5).build()
        text = estimator.estimate(plan, default_source="w").explain()
        assert "[not costed]" in text  # the scan was never visited

    def test_estimate_for_lookup(self):
        estimator = CostEstimator(
            standard_repository(), make_catalog(), coefficients=CoefficientSet()
        )
        plan = scan("E").where_eq("a", 5).build()
        estimate = estimator.estimate(plan, default_source="w")
        child_estimate = estimate.estimate_for(plan.child)
        assert child_estimate.node is plan.child
