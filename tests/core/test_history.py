"""Tests for historical costs (§4.3.1): query-scope recording and
parameter adjustment."""

import pytest

from repro.algebra.builders import scan
from repro.core.estimator import CostEstimator
from repro.core.generic import CoefficientSet, GenericCoefficients, standard_repository
from repro.core.history import (
    HistoryStore,
    OnlineCalibrator,
    plan_fingerprint,
)
from repro.core.statistics import AttributeStats, CollectionStats, StatisticsCatalog
from repro.wrappers.base import ExecutionResult


def make_catalog():
    catalog = StatisticsCatalog()
    catalog.put(
        CollectionStats.from_extent(
            "E",
            1000,
            100,
            attributes=[AttributeStats("a", indexed=True, count_distinct=100)],
        )
    )
    return catalog


def result(total=500.0, first=10.0, rows=5):
    return ExecutionResult(
        rows=[{"a": i} for i in range(rows)],
        total_time_ms=total,
        time_first_ms=first,
    )


class TestPlanFingerprint:
    def test_identical_plans_same_fingerprint(self):
        p1 = scan("E").where_eq("a", 1).build()
        p2 = scan("E").where_eq("a", 1).build()
        assert plan_fingerprint(p1) == plan_fingerprint(p2)

    def test_different_constant_different_fingerprint(self):
        p1 = scan("E").where_eq("a", 1).build()
        p2 = scan("E").where_eq("a", 2).build()
        assert plan_fingerprint(p1) != plan_fingerprint(p2)

    def test_structure_matters(self):
        p1 = scan("E").where_eq("a", 1).keep("a").build()
        p2 = scan("E").where_eq("a", 1).build()
        assert plan_fingerprint(p1) != plan_fingerprint(p2)


class TestHistoryStore:
    def make(self):
        repository = standard_repository()
        catalog = make_catalog()
        estimator = CostEstimator(repository, catalog, coefficients=CoefficientSet())
        return HistoryStore(repository), estimator

    def test_recorded_subquery_estimated_exactly(self):
        history, estimator = self.make()
        subplan = scan("E").where_eq("a", 1).build()
        history.record(subplan, "w", result(total=432.0, rows=7))
        estimate = estimator.estimate(subplan, default_source="w")
        assert estimate.total_time == 432.0
        assert estimate.root.count_object == 7.0
        assert "history" in estimate.root.provenance["TotalTime"]

    def test_different_constant_not_covered(self):
        """Query-scope rules are restricted to one specific subquery —
        the limitation the paper points out."""
        history, estimator = self.make()
        history.record(scan("E").where_eq("a", 1).build(), "w", result(432.0))
        other = scan("E").where_eq("a", 2).build()
        estimate = estimator.estimate(other, default_source="w")
        assert estimate.total_time != 432.0

    def test_reexecution_updates_in_place(self):
        history, estimator = self.make()
        subplan = scan("E").where_eq("a", 1).build()
        history.record(subplan, "w", result(total=432.0))
        history.record(subplan, "w", result(total=500.0))
        assert len(history) == 1
        estimate = estimator.estimate(subplan, default_source="w")
        assert estimate.total_time == 500.0

    def test_per_source_isolation(self):
        history, estimator = self.make()
        subplan = scan("E").where_eq("a", 1).build()
        history.record(subplan, "other", result(total=111.0))
        estimate = estimator.estimate(subplan, default_source="w")
        assert estimate.total_time != 111.0

    def test_history_beats_wrapper_rules(self):
        from repro.core.rules import rule, select_pattern, var

        repository = standard_repository()
        repository.add_wrapper_rule(
            "w", rule(select_pattern(var("C")), ["TotalTime = 9999"])
        )
        history = HistoryStore(repository)
        estimator = CostEstimator(
            repository, make_catalog(), coefficients=CoefficientSet()
        )
        subplan = scan("E").where_eq("a", 1).build()
        history.record(subplan, "w", result(total=123.0))
        estimate = estimator.estimate(subplan, default_source="w")
        assert estimate.total_time == 123.0


class TestMediatorHistoryIntegration:
    def test_query_records_history(self):
        from tests.federation_fixtures import build_oo7_wrapper
        from repro.mediator.mediator import Mediator

        mediator = Mediator(record_history=True)
        mediator.register(build_oo7_wrapper())
        sql = "SELECT * FROM AtomicParts WHERE Id = 7"
        first = mediator.query(sql)
        second = mediator.plan(sql)
        # After one execution the estimate equals the measured wrapper time
        # plus communication — i.e., very close to reality.
        assert second.estimated_total_ms == pytest.approx(
            first.elapsed_ms, rel=0.05
        )

    def test_history_disabled_by_default(self):
        from tests.federation_fixtures import build_oo7_wrapper
        from repro.mediator.mediator import Mediator

        mediator = Mediator()
        assert mediator.history is None
        mediator.register(build_oo7_wrapper())
        mediator.query("SELECT * FROM AtomicParts WHERE Id = 7")
        # No query-scope rules were added.
        assert all(
            scoped.scope.name != "QUERY"
            for scoped in mediator.repository.rules_for_source("oo7")
        )


class TestOnlineCalibrator:
    def test_first_observation_sets_factor(self):
        calibrator = OnlineCalibrator()
        factor = calibrator.observe("w", estimated_ms=100.0, actual_ms=150.0)
        assert factor == pytest.approx(1.5)

    def test_smoothing_converges(self):
        calibrator = OnlineCalibrator(alpha=0.5)
        for _ in range(20):
            calibrator.observe("w", 100.0, 200.0)
        assert calibrator.factor("w") == pytest.approx(2.0, rel=0.01)

    def test_zero_estimate_ignored(self):
        calibrator = OnlineCalibrator()
        calibrator.observe("w", 0.0, 100.0)
        assert calibrator.factor("w") == 1.0

    def test_unknown_source_factor_is_one(self):
        assert OnlineCalibrator().factor("nobody") == 1.0

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            OnlineCalibrator(alpha=0.0)

    def test_apply_scales_source_coefficients(self):
        calibrator = OnlineCalibrator()
        calibrator.observe("w", 100.0, 200.0)
        coefficients = CoefficientSet(GenericCoefficients(ms_per_object_scanned=10.0))
        calibrator.apply(coefficients)
        assert coefficients.for_source("w").ms_per_object_scanned == pytest.approx(
            20.0
        )
        # Other sources keep the default.
        assert coefficients.for_source("x").ms_per_object_scanned == 10.0

    def test_adjustment_improves_generalization(self):
        """The §4.3.1 claim: adjusting shared parameters helps *nearby*
        queries, not just identical ones."""
        calibrator = OnlineCalibrator()
        true_per_object = 20.0
        estimated_per_object = 10.0
        # Observe on one query shape...
        calibrator.observe("w", 1000 * estimated_per_object, 1000 * true_per_object)
        factor = calibrator.factor("w")
        # ...and the adjusted model predicts a different-size query better.
        adjusted = estimated_per_object * factor
        assert abs(adjusted - true_per_object) < abs(
            estimated_per_object - true_per_object
        )
