"""Regression: §4.3.2 pruning leaves the same counter trail with and
without the subplan cache.

The seed raised :class:`PlanPruned` on the cache-hit path *before*
incrementing ``variables_computed``, so a warm cache reported one fewer
variable than the identical cold run — OptimizerStats undercounted
pruned work exactly when the cache made pruning cheap.
"""

from repro.algebra.builders import scan
from repro.core.estimator import CostEstimator, EstimatorOptions
from repro.core.generic import CoefficientSet, standard_repository
from repro.core.statistics import (
    AttributeStats,
    CollectionStats,
    StatisticsCatalog,
)


def make_estimator(cache: bool) -> CostEstimator:
    catalog = StatisticsCatalog()
    catalog.put(
        CollectionStats.from_extent(
            "R",
            1000,
            100,
            attributes=[AttributeStats("a", indexed=True, count_distinct=1000)],
        )
    )
    return CostEstimator(
        standard_repository(),
        catalog,
        options=EstimatorOptions(cache_subplans=cache),
        coefficients=CoefficientSet(),
    )


def make_plan():
    return scan("R").where_eq("a", 5).submit_to("w").build()


class TestPrunedCounters:
    def test_cold_cache_agrees_with_uncached(self):
        # An empty cache computes exactly what the uncached path does.
        cached = make_estimator(cache=True)
        uncached = make_estimator(cache=False)
        pruned_cached = cached.estimate(make_plan(), bound_ms=1.0)
        pruned_uncached = uncached.estimate(make_plan(), bound_ms=1.0)
        assert pruned_cached.pruned and pruned_uncached.pruned
        assert cached.last_counters.variables_computed > 0
        assert (
            cached.last_counters.variables_computed
            == uncached.last_counters.variables_computed
        )

    def test_warm_cache_hit_counts_the_tripping_variable(self):
        estimator = make_estimator(cache=True)
        plan = make_plan()
        estimator.estimate(plan)  # warm the cache
        pruned = estimator.estimate(plan, bound_ms=1.0)
        assert pruned.pruned
        # The cached TotalTime that tripped the bound is one computed
        # variable — the seed reported zero here.
        assert estimator.last_counters.variables_computed == 1

    def test_unpruned_estimates_agree_too(self):
        cached = make_estimator(cache=True)
        uncached = make_estimator(cache=False)
        first = cached.estimate(make_plan())
        second = uncached.estimate(make_plan())
        assert first.total_time == second.total_time
        assert (
            cached.last_counters.variables_computed
            == uncached.last_counters.variables_computed
        )
