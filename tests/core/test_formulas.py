"""Unit and property tests for the cost formula language."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formulas import (
    BUILTIN_FUNCTIONS,
    Call,
    MappingContext,
    Number,
    PathRef,
    PythonFormula,
    parse_expression,
    parse_formula,
    parse_formulas,
)
from repro.errors import FormulaError


def evaluate(text, values=None, functions=None):
    expr = parse_expression(text)
    return expr.compile()(MappingContext(values, functions))


class TestParsing:
    def test_number(self):
        assert evaluate("42") == 42.0

    def test_decimal_and_exponent(self):
        assert evaluate("2.5") == 2.5
        assert evaluate("1e3") == 1000.0
        assert evaluate("2.5e-1") == 0.25

    def test_precedence(self):
        assert evaluate("2 + 3 * 4") == 14.0
        assert evaluate("(2 + 3) * 4") == 20.0

    def test_left_associativity(self):
        assert evaluate("10 - 4 - 3") == 3.0
        assert evaluate("16 / 4 / 2") == 2.0

    def test_unary_minus(self):
        assert evaluate("-3 + 5") == 2.0
        assert evaluate("2 * -3") == -6.0
        assert evaluate("--4") == 4.0

    def test_unary_plus(self):
        assert evaluate("+5") == 5.0

    def test_path_reference(self):
        assert evaluate("Employee.CountObject", {"Employee.CountObject": 10000}) == 10000

    def test_three_part_path(self):
        value = evaluate("Employee.salary.Min", {"Employee.salary.Min": 1000})
        assert value == 1000

    def test_four_part_path_rejected(self):
        with pytest.raises(FormulaError):
            parse_expression("a.b.c.d")

    def test_function_call(self):
        assert evaluate("exp(0)") == 1.0
        assert evaluate("min(3, 8)") == 3.0
        assert evaluate("max(3, 8, 2)") == 8.0

    def test_nested_calls(self):
        assert evaluate("exp(-1 * (0.5 * 70))") == pytest.approx(math.exp(-35))

    def test_string_literal_argument(self):
        functions = {"width": lambda s: float(len(s))}
        assert evaluate("width('abc')", functions=functions) == 3.0

    def test_unterminated_string(self):
        with pytest.raises(FormulaError):
            parse_expression("f('abc")

    def test_trailing_garbage(self):
        with pytest.raises(FormulaError):
            parse_expression("1 + 2 )")

    def test_unexpected_character(self):
        with pytest.raises(FormulaError):
            parse_expression("1 @ 2")

    def test_missing_closing_paren(self):
        with pytest.raises(FormulaError):
            parse_expression("(1 + 2")

    def test_number_then_path_separator(self):
        # "Collection.TotalSize/PageSize" style division parses fine.
        assert evaluate(
            "C.TotalSize/PageSize", {"C.TotalSize": 8000.0, "PageSize": 4000.0}
        ) == 2.0


class TestEvaluation:
    def test_division_by_zero(self):
        with pytest.raises(FormulaError):
            evaluate("1 / 0")

    def test_unbound_reference(self):
        with pytest.raises(FormulaError):
            evaluate("Mystery")

    def test_unknown_function(self):
        with pytest.raises(FormulaError):
            evaluate("mystery(1)")

    def test_function_error_wrapped(self):
        with pytest.raises(FormulaError):
            evaluate("sqrt(-1)")

    def test_boolean_coerces_to_number(self):
        assert evaluate("Flag + 1", {"Flag": True}) == 2.0

    def test_string_value_coerces_via_constant(self):
        value = evaluate("X + 0", {"X": "m"})
        assert 0.0 < value < 1.0

    def test_builtins_present(self):
        for name in ("exp", "log", "min", "max", "ceil", "floor", "sqrt"):
            assert name in BUILTIN_FUNCTIONS


class TestReferencesAnalysis:
    def test_references_collected(self):
        expr = parse_expression("A.B + f(C.D.E, 3) - X")
        assert expr.references() == {("A", "B"), ("C", "D", "E"), ("X",)}

    def test_function_names_collected(self):
        expr = parse_expression("f(g(1), 2) + h(3)")
        assert expr.function_names() == {"f", "g", "h"}


class TestFormula:
    def test_parse_formula_roundtrip(self):
        formula = parse_formula("TotalTime = 120 + Employee.TotalSize * 12")
        assert formula.target == "TotalTime"
        assert formula.is_result
        value = formula.evaluate(MappingContext({"Employee.TotalSize": 10.0}))
        assert value == 240.0

    def test_paper_scan_formula(self):
        """The §3.3.1 example formula for a linear scan on Employee."""
        formula = parse_formula(
            "TotalTime = 120 + Employee.TotalSize * 12 "
            "+ Employee.CountObject / Employee.CountDistinct"
        )
        ctx = MappingContext(
            {
                "Employee.TotalSize": 15.0,
                "Employee.CountObject": 10000.0,
                "Employee.CountDistinct": 10000.0,
            }
        )
        assert formula.evaluate(ctx) == 120 + 15 * 12 + 1

    def test_local_target_not_result(self):
        formula = parse_formula("CountPage = C.TotalSize / PageSize")
        assert not formula.is_result

    def test_missing_equals(self):
        with pytest.raises(FormulaError):
            parse_formula("TotalTime 42")

    def test_invalid_target(self):
        with pytest.raises(FormulaError):
            parse_formula("9lives = 1")

    def test_parse_formulas_batch(self):
        formulas = parse_formulas(["A = 1", "B = A + 1"])
        assert [f.target for f in formulas] == ["A", "B"]

    def test_source_preserved(self):
        formula = parse_formula("TotalTime = 1 + 2")
        assert "TotalTime" in str(formula)

    def test_evaluation_error_names_formula(self):
        formula = parse_formula("TotalTime = 1 / Zero")
        with pytest.raises(FormulaError, match="TotalTime"):
            formula.evaluate(MappingContext({"Zero": 0.0}))


class TestPythonFormula:
    def test_native_body_runs(self):
        formula = PythonFormula("TotalTime", lambda ctx: 42.0)
        assert formula.evaluate(MappingContext()) == 42.0

    def test_requirements_surface_as_references(self):
        formula = PythonFormula(
            "TotalTime",
            lambda ctx: 0.0,
            child_requirements=frozenset({"CountObject"}),
            own_requirements=frozenset({"TotalSize"}),
        )
        refs = formula.references()
        assert ("__child__", "CountObject") in refs
        assert ("TotalSize",) in refs

    def test_error_wrapped(self):
        def boom(ctx):
            raise FormulaError("boom")

        formula = PythonFormula("TotalTime", boom)
        with pytest.raises(FormulaError, match="boom"):
            formula.evaluate(MappingContext())


class TestProperties:
    @given(st.integers(min_value=-10**6, max_value=10**6))
    def test_integer_literals_roundtrip(self, value):
        assert evaluate(str(value)) == float(value)

    @given(
        a=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        b=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=80)
    def test_addition_matches_python(self, a, b):
        result = evaluate("A + B", {"A": a, "B": b})
        assert result == pytest.approx(a + b, nan_ok=True)

    @given(st.text(alphabet="abcdefgh", min_size=1, max_size=8))
    def test_single_names_parse_as_pathrefs(self, name):
        expr = parse_expression(name)
        assert isinstance(expr, PathRef)
        assert expr.parts == (name,)

    @given(
        depth=st.integers(min_value=0, max_value=30),
    )
    def test_deeply_nested_parens(self, depth):
        text = "(" * depth + "1" + ")" * depth
        assert evaluate(text) == 1.0

    def test_expression_str_reparses_to_same_value(self):
        expr = parse_expression("1 + 2 * (3 - 4) / 5")
        again = parse_expression(str(expr))
        ctx = MappingContext()
        assert expr.compile()(ctx) == again.compile()(ctx)
