"""Unit tests for rule heads, unification and specificity (§3.3.2)."""

import pytest

from repro.algebra.builders import scan
from repro.algebra.expressions import Comparison, attr, eq, lit
from repro.algebra.logical import Join, Scan, Select
from repro.core.rules import (
    AnyPredicate,
    CostRule,
    JoinPredPattern,
    OperatorPattern,
    SelectPredPattern,
    Var,
    join_pattern,
    most_specific_first,
    rule,
    scan_pattern,
    select_eq_pattern,
    select_pattern,
    unary_pattern,
    union_pattern,
    var,
)
from repro.errors import CostModelError


def employee_select(value=10, attribute="salary", op="="):
    return Select(
        Scan("Employee"), Comparison(op, attr(attribute), lit(value))
    )


class TestPatternConstruction:
    def test_unknown_operator_rejected(self):
        with pytest.raises(CostModelError):
            OperatorPattern("frobnicate", ("C",))

    def test_join_needs_two_collections(self):
        with pytest.raises(CostModelError):
            OperatorPattern("join", (var("C"),))

    def test_select_needs_one_collection(self):
        with pytest.raises(CostModelError):
            OperatorPattern("select", (var("A"), var("B")))

    def test_join_pred_on_select_rejected(self):
        with pytest.raises(CostModelError):
            OperatorPattern(
                "select", (var("C"),), JoinPredPattern(var("A"), var("B"))
            )

    def test_select_pred_on_join_rejected(self):
        with pytest.raises(CostModelError):
            OperatorPattern(
                "join", (var("C1"), var("C2")), SelectPredPattern(var("A"), "=", 1)
            )


class TestScanMatching:
    def test_named_scan_matches(self):
        pattern = scan_pattern("Employee")
        assert pattern.match(Scan("Employee")) == {}

    def test_named_scan_rejects_other(self):
        assert scan_pattern("Employee").match(Scan("Book")) is None

    def test_variable_binds_collection_name(self):
        bindings = scan_pattern(var("C")).match(Scan("Employee"))
        assert bindings == {"C": "Employee"}

    def test_wrong_operator(self):
        assert scan_pattern(var("C")).match(employee_select()) is None


class TestSelectMatching:
    def test_free_predicate_binds_whole_predicate(self):
        node = employee_select()
        bindings = select_pattern(var("C")).match(node)
        assert bindings is not None
        assert bindings["C"] is node.child
        assert bindings["P"] is node.predicate

    def test_collection_name_matches_through_child(self):
        node = employee_select()
        assert select_pattern("Employee").match(node) is not None
        assert select_pattern("Book").match(node) is None

    def test_attribute_and_value_binding(self):
        node = employee_select(value=77)
        pattern = select_eq_pattern("Employee", var("A"), var("V"))
        bindings = pattern.match(node)
        assert bindings["A"] == "salary"
        assert bindings["V"] == 77

    def test_bound_value_matches_exactly(self):
        pattern = select_eq_pattern("Employee", "salary", 77)
        assert pattern.match(employee_select(value=77)) is not None
        assert pattern.match(employee_select(value=78)) is None

    def test_bound_attribute_mismatch(self):
        pattern = select_eq_pattern("Employee", "age", var("V"))
        assert pattern.match(employee_select()) is None

    def test_operator_must_match(self):
        pattern = select_eq_pattern("Employee", "salary", var("V"), op="<")
        assert pattern.match(employee_select(op="=")) is None
        assert pattern.match(employee_select(op="<")) is not None

    def test_value_attr_comparison_normalized(self):
        # 10 = salary is matched as salary = 10.
        node = Select(Scan("Employee"), Comparison("=", lit(10), attr("salary")))
        pattern = select_eq_pattern("Employee", var("A"), var("V"))
        bindings = pattern.match(node)
        assert bindings == {"A": "salary", "V": 10}

    def test_conjunction_only_matches_any_predicate(self):
        from repro.algebra.expressions import between

        node = Select(Scan("Employee"), between("salary", 1, 9))
        assert select_eq_pattern("Employee", var("A"), var("V")).match(node) is None
        assert select_pattern(var("C")).match(node) is not None

    def test_select_over_pipeline_matches_base_collection(self):
        node = Select(
            scan("Employee").keep("salary").build(), eq("salary", 1)
        )
        assert select_pattern("Employee").match(node) is not None


class TestJoinMatching:
    def make_join(self, left="Employee", right="Book", la="id", ra="author_id"):
        return Join(
            Scan(left),
            Scan(right),
            Comparison("=", attr(la, left), attr(ra, right)),
        )

    def test_free_join(self):
        bindings = join_pattern(var("C1"), var("C2")).match(self.make_join())
        assert isinstance(bindings["C1"], Scan)
        assert isinstance(bindings["C2"], Scan)

    def test_named_collections(self):
        pattern = join_pattern("Employee", "Book")
        assert pattern.match(self.make_join()) is not None
        assert pattern.match(self.make_join(left="Author")) is None

    def test_attribute_patterns(self):
        pattern = join_pattern("Employee", "Book", "id", var("A2"))
        bindings = pattern.match(self.make_join())
        assert bindings["A2"] == "author_id"

    def test_attribute_mismatch(self):
        pattern = join_pattern("Employee", "Book", "name", var("A2"))
        assert pattern.match(self.make_join()) is None


class TestSpecificity:
    def test_paper_matching_order(self):
        """The §4.2 example: five select patterns in increasing specificity."""
        patterns = [
            select_pattern(var("R")),  # select(R, P)
            select_pattern("Employee"),  # select(Employee, P)
            select_eq_pattern("Employee", var("A"), var("V")),
            select_eq_pattern("Employee", "salary", var("A")),
            select_eq_pattern("Employee", "salary", 77),
        ]
        specs = [p.specificity() for p in patterns]
        assert specs == sorted(specs)
        assert len(set(specs)) == len(specs)

    def test_join_matching_order(self):
        patterns = [
            join_pattern(var("R1"), var("R2")),
            join_pattern("Employee", "Book"),
            join_pattern("Employee", "Book", "id", "id"),
        ]
        specs = [p.specificity() for p in patterns]
        assert specs == sorted(specs)

    def test_most_specific_first_stable_on_order(self):
        a = rule(select_pattern(var("C")), ["TotalTime = 1"], name="first")
        b = rule(select_pattern(var("C")), ["TotalTime = 2"], name="second")
        a.order, b.order = 0, 1
        assert [r.name for r in most_specific_first([b, a])] == ["first", "second"]

    def test_collection_beats_attribute_binding(self):
        named = select_pattern("Employee")
        attr_only = OperatorPattern(
            "select", (var("C"),), SelectPredPattern("salary", "=", Var("V"))
        )
        assert named.specificity() > attr_only.specificity()


class TestCostRule:
    def test_empty_body_rejected(self):
        with pytest.raises(CostModelError):
            CostRule(head=scan_pattern(var("C")), formulas=[])

    def test_provides_and_locals(self):
        r = rule(
            select_pattern(var("C")),
            ["CountPage = 5", "TotalTime = CountPage * 2", "CountObject = 1"],
        )
        assert r.provides == {"TotalTime", "CountObject"}
        assert r.locals_ == {"CountPage"}

    def test_formulas_for(self):
        r = rule(select_pattern(var("C")), ["TotalTime = 1", "TotalTime = 2"])
        assert len(r.formulas_for("TotalTime")) == 2

    def test_rule_from_mapping(self):
        r = rule(scan_pattern("E"), {"TotalTime": "42"})
        assert r.formulas[0].target == "TotalTime"

    def test_str_rendering(self):
        r = rule(scan_pattern("E"), ["TotalTime = 42"])
        assert "scan(E)" in str(r)
        assert "TotalTime" in str(r)


class TestOtherOperators:
    def test_unary_patterns(self):
        plan = scan("E").order_by("a").build()
        assert unary_pattern("sort", var("C")).match(plan) is not None

    def test_union_pattern(self):
        plan = scan("A").union(scan("B")).build()
        bindings = union_pattern(var("C1"), var("C2")).match(plan)
        assert bindings is not None

    def test_submit_pattern_sees_through_child(self):
        plan = scan("E").submit_to("w").build()
        bindings = unary_pattern("submit", var("C")).match(plan)
        assert bindings is not None

    def test_project_pattern(self):
        plan = scan("E").keep("a", "b").build()
        from repro.core.rules import project_pattern

        assert project_pattern(var("C")).match(plan) is not None
        assert project_pattern("E").match(plan) is not None
        assert project_pattern("F").match(plan) is None
