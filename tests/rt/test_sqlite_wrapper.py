"""SQLite wrapper: oo7 schema round-trip, SQL translation, exports.

The CI smoke requirement: the rows loaded into the real database file
must be exactly the rows the oo7 generator produced, and pushed-down
subplans must return what the in-memory engine would.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.algebra.expressions import And, Comparison, attr, lit
from repro.algebra.logical import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Join,
    Project,
    Scan,
    Select,
    Sort,
    Submit,
)
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.oo7 import generator, schema
from repro.rt import RealTimeBackend, SQLiteWrapper
from repro.wrappers.base import CapabilityError

EXTENTS = ("AtomicParts", "Connections")


@pytest.fixture(scope="module")
def wrapper():
    w = SQLiteWrapper("oo7_db", config=schema.TINY, seed=7, extents=EXTENTS)
    yield w
    w.close()


@pytest.fixture(scope="module")
def generated():
    return generator.generate(schema.TINY, seed=7).extent_rows()


def _row_set(rows):
    return {tuple(sorted(row.items())) for row in rows}


class TestRoundTrip:
    def test_every_extent_round_trips(self, wrapper, generated):
        for extent in EXTENTS:
            result = wrapper.execute(Scan(extent))
            assert len(result.rows) == len(generated[extent])
            assert _row_set(result.rows) == _row_set(generated[extent])

    def test_statistics_match_the_data(self, wrapper, generated):
        stats = wrapper._statistics["AtomicParts"]
        rows = generated["AtomicParts"]
        assert stats.count_object == len(rows)
        object_size, indexed = generator.EXTENT_LAYOUT["AtomicParts"]
        assert stats.object_size == object_size
        id_stats = stats.attribute("Id")
        assert id_stats.indexed
        assert id_stats.min_value.as_number() == min(r["Id"] for r in rows)
        assert id_stats.max_value.as_number() == max(r["Id"] for r in rows)
        assert id_stats.count_distinct == len({r["Id"] for r in rows})

    def test_execution_is_wall_measured(self, wrapper):
        result = wrapper.execute(Scan("AtomicParts"))
        assert result.total_time_ms > 0.0
        assert 0.0 < result.time_first_ms <= result.total_time_ms
        assert result.device_stats == {"sql_rows": len(result.rows)}


class TestTranslation:
    def test_select_matches_python_filter(self, wrapper, generated):
        plan = Select(Scan("AtomicParts"), Comparison("<=", attr("Id"), lit(40)))
        result = wrapper.execute(plan)
        expected = [r for r in generated["AtomicParts"] if r["Id"] <= 40]
        assert _row_set(result.rows) == _row_set(expected)

    def test_conjunction_and_inequality(self, wrapper, generated):
        plan = Select(
            Scan("AtomicParts"),
            And(
                Comparison(">", attr("Id"), lit(10)),
                Comparison("!=", attr("Id"), lit(20)),
            ),
        )
        result = wrapper.execute(plan)
        expected = [
            r for r in generated["AtomicParts"] if r["Id"] > 10 and r["Id"] != 20
        ]
        assert _row_set(result.rows) == _row_set(expected)

    def test_project_restricts_columns(self, wrapper):
        plan = Project(Scan("AtomicParts"), ("Id", "buildDate"))
        result = wrapper.execute(plan)
        assert all(set(row.keys()) == {"Id", "buildDate"} for row in result.rows)

    def test_sort_orders_rows(self, wrapper):
        plan = Sort(Scan("AtomicParts"), ("buildDate",))
        result = wrapper.execute(plan)
        dates = [row["buildDate"] for row in result.rows]
        assert dates == sorted(dates)

    def test_distinct_deduplicates(self, wrapper, generated):
        plan = Distinct(Project(Scan("Connections"), ("type",)))
        result = wrapper.execute(plan)
        expected = {r["type"] for r in generated["Connections"]}
        assert {row["type"] for row in result.rows} == expected
        assert len(result.rows) == len(expected)

    def test_aggregate_count(self, wrapper, generated):
        plan = Aggregate(
            Scan("AtomicParts"),
            (),
            (AggregateSpec("count", None, "n"),),
        )
        result = wrapper.execute(plan)
        assert result.rows == [{"n": len(generated["AtomicParts"])}]

    def test_submit_nodes_are_stripped(self, wrapper, generated):
        plan = Submit(Scan("AtomicParts"), "oo7_db")
        result = wrapper.execute(plan)
        assert len(result.rows) == len(generated["AtomicParts"])

    def test_join_is_rejected(self, wrapper):
        plan = Join(
            Scan("AtomicParts"),
            Scan("Connections"),
            Comparison("=", attr("Id"), attr("fromId")),
        )
        with pytest.raises(CapabilityError):
            wrapper.execute(plan)


class TestExports:
    def test_calibration_fits_nonnegative_wall_coefficients(self, wrapper):
        for table in EXTENTS:
            fixed, per_row = wrapper.coefficients[table]
            assert fixed >= 0.0
            assert per_row >= 0.0
            assert fixed + per_row > 0.0

    def test_cost_rules_cover_indexed_attributes(self, wrapper):
        cdl = wrapper.cost_rules_cdl()
        assert "costrule scan(AtomicParts)" in cdl
        for column in ("Id", "buildDate"):
            assert f"select(AtomicParts, {column} <= V)" in cdl

    def test_registration_compiles_into_a_mediator(self, generated):
        wrapper = SQLiteWrapper(
            "oo7_db", config=schema.TINY, seed=7, extents=EXTENTS
        )
        backend = RealTimeBackend()
        try:
            mediator = Mediator(
                executor_options=ExecutorOptions(backend=backend)
            )
            rules = mediator.register(wrapper)
            assert rules > 0
            answer = mediator.query(
                "SELECT * FROM AtomicParts WHERE Id <= 40"
            )
            expected = [r for r in generated["AtomicParts"] if r["Id"] <= 40]
            assert len(answer.rows) == len(expected)
            assert answer.elapsed_ms > 0.0
        finally:
            wrapper.close()
            backend.close()


class TestThreadAffinity:
    def test_concurrent_executions_use_per_thread_connections(
        self, wrapper, generated
    ):
        plan = Select(Scan("AtomicParts"), Comparison("<=", attr("Id"), lit(40)))
        expected = _row_set(
            [r for r in generated["AtomicParts"] if r["Id"] <= 40]
        )
        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [
                pool.submit(lambda: wrapper.execute(plan)) for _ in range(24)
            ]
            for future in futures:
                assert _row_set(future.result().rows) == expected
