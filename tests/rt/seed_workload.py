"""The seed workload of the backend-equivalence suite.

The execution-backend refactor routes every time-and-dispatch effect of
the executor/scheduler through :class:`~repro.mediator.backend.
ExecutionBackend`.  The refactored sim backend must stay **byte
identical** to the seed path — same rows, same submit subtrees, same
simulated latencies, same clock counters — across every executor shape
grown so far: sequential, concurrent waves, armed resilience, a sharded
overlay, and an idle replica set with a hedge-armed policy.

``golden_seed_transcripts.json`` was captured by running this module's
``capture()`` against the *pre-refactor* tree (the seed path, commit
306dc17) — ``python -m tests.rt.seed_workload`` regenerates it.  The
test in ``test_backend_equivalence.py`` replays the same workload on the
current tree and compares transcripts for equality, so any accounting
drift the seam introduces fails loudly with a structural diff.

Everything here is deterministic: simulated clocks, seeded fault
injectors with probability zero, and plain-JSON transcripts (floats
round-trip exactly through ``json``).
"""

from __future__ import annotations

import json
import os

from repro.algebra.logical import Submit
from repro.mediator.catalog import PartitionScheme, Shard
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import (
    BreakerPolicy,
    HedgePolicy,
    ResilienceOptions,
    RetryPolicy,
)
from repro.oo7 import TINY, load_database
from repro.wrappers import ObjectStoreWrapper
from repro.wrappers.faults import FaultInjector, FaultProfile
from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_seed_transcripts.json")

#: Fully armed, never firing: retries, breakers and deadlines are live
#: on every dispatch but no fault ever occurs (error probability zero).
ARMED = ResilienceOptions(
    retry=RetryPolicy(
        max_attempts=5,
        backoff_base_ms=100.0,
        jitter_ratio=0.3,
        deadline_ms=1e9,
    ),
    breaker=BreakerPolicy(failure_threshold=1, cooldown_ms=10.0),
    mode="partial",
)

#: Armed plus a hair-trigger hedge policy with nobody to hedge to.
HEDGED = ResilienceOptions(
    retry=ARMED.retry,
    breaker=ARMED.breaker,
    mode="partial",
    hedge=HedgePolicy(delay_ms=0.001),
)

#: Every access shape the executor dispatches: single-wrapper scans and
#: filters, a point lookup, a same-wrapper join, a cross-wrapper join
#: (mediator-side composition), and an aggregate.
WORKLOAD = (
    ("scan-filter", "SELECT * FROM Orders WHERE qty > 90"),
    ("point-lookup", "SELECT * FROM Orders WHERE oid = 123"),
    ("oo7-select", "SELECT * FROM AtomicParts WHERE Id <= 40"),
    (
        "join",
        "SELECT * FROM Suppliers, Orders "
        "WHERE Orders.supplier = Suppliers.sid AND Suppliers.city = 'city1'",
    ),
    (
        "cross-join",
        "SELECT * FROM AtomicParts, Suppliers "
        "WHERE AtomicParts.partOf = Suppliers.sid AND AtomicParts.Id <= 40",
    ),
    (
        "aggregate",
        "SELECT supplier, COUNT(*) AS n FROM Orders GROUP BY supplier",
    ),
)


def build_mediator(
    *,
    resilience: ResilienceOptions | None = None,
    inject: bool = False,
    parallel: bool = False,
    cache: bool = False,
    sharded: bool = False,
    idle_replica: bool = False,
) -> Mediator:
    mediator = Mediator(
        executor_options=ExecutorOptions(
            resilience=resilience,
            parallel_submits=parallel,
            cache_subanswers=cache,
        )
    )
    for wrapper in (build_oo7_wrapper(), build_sales_wrapper()):
        if inject:
            wrapper = FaultInjector(wrapper, FaultProfile(error_probability=0.0))
        mediator.register(wrapper)
    if sharded:
        # The overlay layout: one shard pointing at the very collection
        # the seed path reads — partitioned in name only.
        mediator.register_partitioned(
            PartitionScheme(
                collection="Orders",
                shard_key="oid",
                shards=(Shard(collection="Orders", wrapper="sales"),),
            )
        )
    if idle_replica:
        # The workload's sales queries never touch this set, but its
        # presence flips has_replicas() on, arming every replica path.
        mediator.register_replica(
            ObjectStoreWrapper("oo7_b", load_database(TINY)), of="oo7"
        )
    return mediator


#: config name -> mediator-builder kwargs.  One entry per executor shape
#: the equivalence suite must preserve.
CONFIGS: dict[str, dict] = {
    "sequential": {},
    "parallel": {"parallel": True, "cache": True},
    "armed": {"resilience": ARMED, "inject": True, "parallel": True},
    "sharded": {"sharded": True, "parallel": True},
    "replicated": {
        "idle_replica": True,
        "resilience": HEDGED,
        "inject": True,
        "parallel": True,
    },
}


def submit_log(result) -> list[list[str]]:
    """The dispatched subqueries: each Submit's full pushed subtree."""
    return [
        [inner.describe() for inner in node.walk()]
        for node in result.plan.walk()
        if isinstance(node, Submit)
    ]


def transcript_entry(label: str, result) -> dict:
    return {
        "label": label,
        "rows": result.rows,
        "elapsed_ms": result.elapsed_ms,
        "time_first_ms": result.time_first_ms,
        "estimated_ms": result.estimated_ms,
        "submits": submit_log(result),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "parallel_saved_ms": result.parallel_saved_ms,
        "degraded": result.degraded,
    }


def clock_totals(mediator: Mediator) -> dict:
    clock = mediator.executor.clock
    return {
        "clock_total": clock.now_ms,
        "wait_ms": clock.stats.wait_ms,
        "messages": clock.stats.messages,
        "bytes": clock.stats.bytes_shipped,
    }


def run_workload(mediator: Mediator) -> list:
    transcript: list = [
        transcript_entry(label, mediator.query(sql)) for label, sql in WORKLOAD
    ]
    transcript.append(clock_totals(mediator))
    return transcript


def capture() -> dict[str, list]:
    """Run every config; returns ``{config: transcript}`` (JSON-safe)."""
    return {
        name: run_workload(build_mediator(**kwargs))
        for name, kwargs in CONFIGS.items()
    }


def main() -> None:  # pragma: no cover - fixture (re)generation entry
    transcripts = capture()
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(transcripts, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    main()
