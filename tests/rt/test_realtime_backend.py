"""The real-time backend: wall clock, wave accounting, deadlines, and
the end-to-end real federation (SQLite + webish) through the mediator.
"""

from __future__ import annotations

import time

import pytest

from repro.algebra.expressions import Comparison, attr, lit
from repro.algebra.logical import Scan, Select
from repro.bench.realtime import run_realtime, spearman_rank_correlation
from repro.errors import SourceFaultError, SourceUnavailableError
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.obs import ObservabilityOptions
from repro.oo7 import schema
from repro.rt import (
    RealTimeBackend,
    SQLiteWrapper,
    WallClock,
    WallWaveAccounting,
    WebLatencyWrapper,
)
from repro.wrappers.base import ExecutionResult


class _StubWrapper:
    """The minimal duck-typed wrapper ``measured_execute`` needs."""

    def __init__(self, behavior):
        self.behavior = behavior

    def execute(self, plan):
        return self.behavior()


def _rows(n: int) -> ExecutionResult:
    return ExecutionResult(rows=[{"Id": i} for i in range(n)], total_time_ms=1.0)


class TestWallClock:
    def test_time_actually_passes(self):
        clock = WallClock()
        mark = clock.now_ms
        time.sleep(0.01)
        assert clock.elapsed_since(mark) >= 5.0

    def test_advance_is_a_validated_no_op(self):
        clock = WallClock()
        before = clock.now_ms
        clock.advance(10_000.0)
        assert clock.now_ms - before < 1_000.0
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_counters_still_count(self):
        clock = WallClock()
        clock.charge_message(payload_bytes=64)
        clock.charge_message()
        clock.charge_wait(5.0)
        assert clock.stats.messages == 2
        assert clock.stats.bytes_shipped == 64
        assert clock.stats.wait_ms == 5.0

    def test_sleep_really_sleeps_and_counts(self):
        clock = WallClock()
        mark = clock.now_ms
        clock.sleep(15.0)
        assert clock.elapsed_since(mark) >= 10.0
        assert clock.stats.wait_ms == 15.0


class TestWallWaveAccounting:
    def test_makespan_is_measured_not_modeled(self):
        clock = WallClock()
        waves = WallWaveAccounting(clock, None)
        waves.begin_wave()
        time.sleep(0.01)
        waves.charge_branch(100.0)
        waves.charge_branch(50.0)
        wave = waves.commit_wave()
        assert wave.branches == 2
        assert wave.sequential_ms == 150.0
        assert wave.makespan_ms >= 5.0

    def test_waves_do_not_nest(self):
        waves = WallWaveAccounting(WallClock(), None)
        waves.begin_wave()
        with pytest.raises(RuntimeError):
            waves.begin_wave()


class TestMeasuredExecute:
    def test_success_reports_wall_duration(self):
        with RealTimeBackend() as backend:
            wrapper = _StubWrapper(lambda: (time.sleep(0.01), _rows(3))[1])
            attempt = backend.measured_execute(wrapper, Scan("T"))
            assert attempt.ok
            assert len(attempt.result.rows) == 3
            assert attempt.duration_ms >= 5.0

    def test_fault_classification_and_reraise(self):
        def unavailable():
            raise SourceUnavailableError("w", elapsed_ms=1.0)

        def flaky():
            raise SourceFaultError("w", elapsed_ms=1.0)

        def broken():
            raise ValueError("a real source fails in real ways")

        with RealTimeBackend() as backend:
            scan = Scan("T")
            assert (
                backend.measured_execute(_StubWrapper(unavailable), scan).error
                == "unavailable"
            )
            assert (
                backend.measured_execute(_StubWrapper(flaky), scan).error
                == "transient"
            )
            attempt = backend.measured_execute(_StubWrapper(broken), scan)
            assert attempt.error == "transient"
            with pytest.raises(ValueError):
                attempt.reraise()

    def test_deadline_abandons_an_overrunning_attempt(self):
        with RealTimeBackend() as backend:
            slow = _StubWrapper(lambda: (time.sleep(0.2), _rows(1))[1])
            start = time.perf_counter()
            attempt = backend.measured_execute(slow, Scan("T"), budget_ms=20.0)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert attempt.result is None
            assert attempt.error is None
            # Reported wait exceeds the budget strictly, so the
            # scheduler's `waited + wait > deadline` check fires.
            assert attempt.duration_ms > 20.0
            # The dispatcher moved on; it did not wait the full 200 ms.
            assert elapsed_ms < 150.0

    def test_within_budget_attempt_completes(self):
        with RealTimeBackend() as backend:
            quick = _StubWrapper(lambda: _rows(2))
            attempt = backend.measured_execute(quick, Scan("T"), budget_ms=5_000.0)
            assert attempt.ok
            assert len(attempt.result.rows) == 2


class TestRunWave:
    def test_results_return_in_input_order(self):
        with RealTimeBackend(max_workers=4) as backend:
            delays = [0.03, 0.0, 0.015, 0.005]
            outcomes = backend.run_wave(
                [
                    (lambda d=d, i=i: (time.sleep(d), i)[1])
                    for i, d in enumerate(delays)
                ]
            )
            assert outcomes == [0, 1, 2, 3]

    def test_branches_genuinely_overlap(self):
        with RealTimeBackend(max_workers=4) as backend:
            start = time.perf_counter()
            backend.run_wave([lambda: time.sleep(0.05) for _ in range(4)])
            elapsed = time.perf_counter() - start
            # Four 50 ms branches sequentially would take 200 ms.
            assert elapsed < 0.15


class TestWebLatencyWrapper:
    def test_latency_is_genuine(self):
        web = WebLatencyWrapper(
            "web", {"C": [{"k": i} for i in range(10)]}, latency_ms=20.0
        )
        start = time.perf_counter()
        result = web.execute(Scan("C"))
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        assert len(result.rows) == 10
        # Request + response legs: at least two latencies on the wall.
        assert elapsed_ms >= 35.0
        assert result.total_time_ms >= 35.0

    def test_select_filters(self):
        web = WebLatencyWrapper(
            "web",
            {"C": [{"k": float(i)} for i in range(10)]},
            latency_ms=0.0,
            per_row_ms=0.0,
        )
        result = web.execute(
            Select(Scan("C"), Comparison("<", attr("k"), lit(3.0)))
        )
        assert sorted(row["k"] for row in result.rows) == [0.0, 1.0, 2.0]


class TestRealFederationEndToEnd:
    def test_cross_source_join_on_wall_clock(self):
        backend = RealTimeBackend()
        sqlite = SQLiteWrapper(
            "oo7_db", config=schema.TINY, seed=7, extents=("AtomicParts",)
        )
        web = WebLatencyWrapper(
            "web",
            {"Tags": [{"partId": i, "tag": f"t{i % 3}"} for i in range(0, 200, 2)]},
            latency_ms=5.0,
        )
        try:
            mediator = Mediator(
                executor_options=ExecutorOptions(
                    parallel_submits=True, backend=backend
                )
            )
            mediator.register(sqlite)
            mediator.register(web)
            answer = mediator.query(
                "SELECT * FROM AtomicParts, Tags "
                "WHERE AtomicParts.Id = Tags.partId AND AtomicParts.Id <= 50"
            )
            # Ids 0..50, even ones have a tag.
            assert len(answer.rows) == 26
            # Elapsed is wall time and includes the web source's two
            # genuine 5 ms latency legs.
            assert answer.elapsed_ms >= 5.0
        finally:
            sqlite.close()
            backend.close()

    def test_execute_hotpath_gauge_is_nonzero(self):
        backend = RealTimeBackend()
        sqlite = SQLiteWrapper(
            "oo7_db", config=schema.TINY, seed=7, extents=("AtomicParts",)
        )
        try:
            mediator = Mediator(
                executor_options=ExecutorOptions(backend=backend),
                observability=ObservabilityOptions(
                    enabled=True, hotpath=True, metrics=True
                ),
            )
            mediator.register(sqlite)
            mediator.query("SELECT * FROM AtomicParts WHERE Id <= 40")
            gauge = mediator.telemetry.metrics["repro_hotpath_execute_ms"]
            assert gauge.value() > 0.0
        finally:
            sqlite.close()
            backend.close()


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman_rank_correlation(
            [1, 2, 3, 4], [10, 20, 30, 40]
        ) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman_rank_correlation(
            [1, 2, 3, 4], [40, 30, 20, 10]
        ) == pytest.approx(-1.0)

    def test_ties_average(self):
        # x has a tie; monotone y still correlates strongly but not 1.0.
        value = spearman_rank_correlation([1, 2, 2, 4], [1, 2, 3, 4])
        assert 0.9 < value < 1.0

    def test_degenerate_inputs(self):
        assert spearman_rank_correlation([1.0], [1.0]) == 0.0
        assert spearman_rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0


class TestE16Smoke:
    def test_fast_run_correlates(self):
        result = run_realtime(fast=True, repeats=1)
        assert len(result.points) == 8
        assert all(p.measured_ms > 0.0 for p in result.points)
        assert all(p.estimated_ms > 0.0 for p in result.points)
        # The benchmark gate is 0.7; the smoke bar is looser because a
        # single-repeat run on a loaded test machine is noisy.
        assert result.spearman >= 0.5
        payload = result.to_json_dict()
        assert payload["experiment"] == "E16-realtime"
        assert payload["spearman"] == result.spearman
        assert result.table()
