"""Concurrency stress tests for the shared mutable state the real-time
backend hammers from pool threads.

The simulated backend executes branches in order on one thread, so the
breaker, the drift tracker and the subanswer cache never saw concurrent
callers before the `repro.rt` backend existed.  Each test here drives
one of them from a thread pool and asserts *exact* counters — a lost
update under a data race shows up as an off-by-N, not a flake.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.algebra.logical import Scan, Submit
from repro.mediator.cache import SubanswerCache
from repro.mediator.resilience import BreakerPolicy, CircuitBreaker
from repro.obs.accuracy import DriftTracker
from repro.wrappers.base import ExecutionResult

THREADS = 8
ROUNDS = 200


def _hammer(worker, threads: int = THREADS) -> None:
    """Run ``worker(index)`` on every thread, all released at once."""
    barrier = threading.Barrier(threads)

    def _run(index: int) -> None:
        barrier.wait()
        worker(index)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        for future in [pool.submit(_run, i) for i in range(threads)]:
            future.result()


class TestCircuitBreakerConcurrency:
    def test_concurrent_failures_count_exactly(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=10**9))
        _hammer(lambda i: [breaker.record_failure(0.0) for _ in range(ROUNDS)])
        assert breaker.consecutive_failures == THREADS * ROUNDS

    def test_exactly_one_trip_at_threshold(self):
        # Every failure past the threshold re-checks `state == CLOSED`
        # under the lock, so exactly one concurrent failure may trip it.
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
        _hammer(lambda i: breaker.record_failure(0.0))
        assert breaker.trips == 1

    def test_half_open_admits_exactly_one_probe(self):
        # The single-probe guarantee of the half-open state is the
        # check-and-set the lock exists for: N threads race `allow`
        # after the cooldown and exactly one may flow.
        policy = BreakerPolicy(failure_threshold=1, cooldown_ms=5.0)
        for _ in range(50):
            breaker = CircuitBreaker(policy)
            breaker.record_failure(0.0)
            assert breaker.state == "open"
            admitted = []
            admitted_lock = threading.Lock()

            def _try(index: int) -> None:
                if breaker.allow(10.0):
                    with admitted_lock:
                        admitted.append(index)

            _hammer(_try)
            assert len(admitted) == 1
            breaker.record_success()


class TestDriftTrackerConcurrency:
    def test_concurrent_observations_count_exactly(self):
        tracker = DriftTracker()
        child = Scan("AtomicParts")
        submit = Submit(child, "oo7")

        class _Node:
            values = {"TotalTime": 10.0, "CountObject": 5.0}
            provenance = {
                "TotalTime": "wrapper[oo7]: scan(AtomicParts)",
                "CountObject": "wrapper[oo7]: scan(AtomicParts)",
            }

        class _Estimate:
            nodes = {child.node_id: _Node()}

        result = ExecutionResult(
            rows=[{"Id": i} for i in range(5)], total_time_ms=12.0
        )
        _hammer(
            lambda i: [
                tracker.observe_submit(_Estimate(), submit, result)
                for _ in range(ROUNDS)
            ]
        )
        # Two variables per submit, all folded into the same aggregates.
        assert tracker.observations == THREADS * ROUNDS * 2
        assert len(tracker) == 2
        for aggregate in tracker.aggregates():
            assert aggregate.count == THREADS * ROUNDS

    def test_concurrent_unmatched_submits_count_exactly(self):
        tracker = DriftTracker()
        submit = Submit(Scan("AtomicParts"), "oo7")

        class _Empty:
            nodes: dict = {}

        result = ExecutionResult(rows=[], total_time_ms=1.0)
        _hammer(
            lambda i: [
                tracker.observe_submit(_Empty(), submit, result)
                for _ in range(ROUNDS)
            ]
        )
        assert tracker.unmatched_submits == THREADS * ROUNDS


class TestSubanswerCacheConcurrency:
    def test_concurrent_hits_and_misses_count_exactly(self):
        cache = SubanswerCache()
        hot = Scan("Hot")
        cache.store("w", hot, [{"Id": 1}])
        cold = Scan("Cold")
        _hammer(
            lambda i: [
                (cache.lookup("w", hot), cache.lookup("w", cold))
                for _ in range(ROUNDS)
            ]
        )
        assert cache.stats.hits == THREADS * ROUNDS
        assert cache.stats.misses == THREADS * ROUNDS
        assert cache.stats_by_wrapper["w"].hits == THREADS * ROUNDS

    def test_concurrent_stores_never_exceed_capacity(self):
        cache = SubanswerCache(max_entries=16)
        scans = [Scan(f"T{i}") for i in range(THREADS * 8)]

        def _store(index: int) -> None:
            for scan in scans[index::THREADS]:
                cache.store("w", scan, [{"Id": index}])

        _hammer(_store)
        assert len(cache) <= 16
