"""Backend seam equivalence: the refactored sim path IS the seed path.

Two guarantees, both parametrized over every executor shape (sequential,
concurrent waves, armed resilience, sharded overlay, idle replicas with
a hedge-armed policy):

* **golden** — the current tree reproduces, byte for byte, transcripts
  captured from the pre-refactor seed tree (rows, submit subtrees,
  simulated latencies, estimates, clock counters; see
  ``seed_workload.py`` for the capture procedure);
* **explicit-backend identity** — constructing the executor with an
  explicit :class:`~repro.mediator.backend.SimBackend` produces exactly
  what the default (backend-less) construction produces, so the seam's
  default wiring adds nothing.
"""

import json

import pytest

from repro.mediator.executor import MediatorExecutor
from tests.rt.seed_workload import (
    CONFIGS,
    GOLDEN_PATH,
    build_mediator,
    run_workload,
)


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_sim_backend_matches_seed_transcripts(config, golden):
    transcript = run_workload(build_mediator(**CONFIGS[config]))
    assert json.loads(json.dumps(transcript)) == golden[config]


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_explicit_sim_backend_is_default(config):
    from repro.mediator.backend import SimBackend

    explicit = build_mediator(**CONFIGS[config])
    executor = explicit.executor
    rebuilt = MediatorExecutor(
        executor.catalog,
        options=executor.options,
        backend=SimBackend(),
    )
    explicit.executor = rebuilt
    rebuilt.scheduler.replica_ranker = explicit.optimizer.rank_replicas
    explicit.optimizer.health_view = rebuilt.scheduler.open_breaker_wrappers
    assert run_workload(explicit) == run_workload(
        build_mediator(**CONFIGS[config])
    )


def test_answers_are_complete(golden):
    # Sanity: "byte-identical" must not mean "identically empty".
    for config, transcript in golden.items():
        assert all(len(entry["rows"]) > 0 for entry in transcript[:-1]), config
        assert all(not entry["degraded"] for entry in transcript[:-1]), config
