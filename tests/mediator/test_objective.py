"""Tests for the optimizer objective (§2.3's three time forms).

The generic model distinguishes ``TimeFirst`` from ``TotalTime`` (sorts
and aggregates are blocking; pipelines are not).  With the
``time_first`` objective the optimizer minimizes first-tuple latency.
"""

import pytest

from repro.mediator.optimizer import OptimizerOptions


class TestObjectiveOption:
    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            OptimizerOptions(objective="latency")

    def test_default_is_total_time(self):
        assert OptimizerOptions().objective == "total_time"


class TestObjectiveBehaviour:
    def test_time_first_objective_minimizes_time_first(self, federation):
        sql = (
            "SELECT partType, COUNT(*) AS n FROM Suppliers GROUP BY partType"
        )
        federation.optimizer.options = OptimizerOptions(objective="time_first")
        chosen = federation.optimizer.optimize(federation.parse(sql))
        assert "TimeFirst" in chosen.estimate.root.values
        chosen_first = float(chosen.estimate.root.values["TimeFirst"])

        # Re-estimate the same plan and confirm consistency; then check
        # the total-time objective never yields a candidate with lower
        # TimeFirst than the time_first objective picked.
        federation.optimizer.options = OptimizerOptions(objective="total_time")
        by_total = federation.optimizer.optimize(federation.parse(sql))
        by_total_first = float(
            federation.estimator.estimate(
                by_total.plan, variables=("TimeFirst",)
            ).root.values["TimeFirst"]
        )
        assert chosen_first <= by_total_first * 1.001

    def test_objectives_may_choose_same_plan_but_report_costs(self, federation):
        sql = "SELECT * FROM Suppliers WHERE city = 'city0'"
        federation.optimizer.options = OptimizerOptions(objective="time_first")
        result = federation.optimizer.optimize(federation.parse(sql))
        # cost is the TimeFirst value, strictly below the TotalTime.
        total = result.estimate.total_time
        assert 0 < float(result.estimate.root.values["TimeFirst"]) <= total

    def test_pruning_disabled_under_time_first(self, federation):
        sql = (
            "SELECT * FROM Orders, Suppliers "
            "WHERE Orders.supplier = Suppliers.sid"
        )
        federation.optimizer.options = OptimizerOptions(
            objective="time_first", use_pruning=True
        )
        result = federation.optimizer.optimize(federation.parse(sql))
        assert result.stats.candidates_pruned == 0
