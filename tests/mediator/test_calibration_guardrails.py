"""Property-based guardrail battery (hypothesis).

The guardrails are the reason online recalibration is safe to leave on:
whatever the drift window claims, a proposal (a) never leaves the clamp
range, (b) never moves more than ``max_step`` from its predecessor, and
(c) on *stationary* drift the residual ``|log(R / m)|`` contracts
monotonically until the coefficient converges.  These are exactly the
invariants ISSUE.md names; hypothesis explores the policy × ratio space
instead of a few hand-picked points.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mediator.calibration import (
    CalibrationPolicy,
    CalibrationState,
    Calibrator,
    CoefficientKey,
)

#: Measured window ratios spanning pathological under- and over-estimates.
ratios = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)

policies = st.builds(
    CalibrationPolicy,
    min_samples=st.just(1),
    alpha=st.floats(min_value=0.05, max_value=1.0),
    max_step=st.floats(min_value=1.01, max_value=16.0),
    clamp_min=st.floats(min_value=1e-3, max_value=1.0),
    clamp_max=st.floats(min_value=1.0, max_value=1e3),
    min_change=st.just(0.0),
)


def previous_within(policy: CalibrationPolicy, fraction: float) -> float:
    """A prior coefficient interpolated (in log space) across the clamp."""
    low, high = math.log(policy.clamp_min), math.log(policy.clamp_max)
    return math.exp(low + fraction * (high - low))


@settings(max_examples=200, deadline=None)
@given(policy=policies, fraction=st.floats(0.0, 1.0), ratio=ratios)
def test_proposal_never_leaves_clamp_range(policy, fraction, ratio):
    previous = previous_within(policy, fraction)
    proposed = Calibrator(policy).propose(previous, ratio)
    assert policy.clamp_min <= proposed <= policy.clamp_max


@settings(max_examples=200, deadline=None)
@given(policy=policies, fraction=st.floats(0.0, 1.0), ratio=ratios)
def test_proposal_never_exceeds_max_step(policy, fraction, ratio):
    previous = previous_within(policy, fraction)
    proposed = Calibrator(policy).propose(previous, ratio)
    # The range clamp may shrink a step further, never enlarge it.
    tolerance = 1.0 + 1e-9
    assert proposed <= previous * policy.max_step * tolerance
    assert proposed >= previous / policy.max_step / tolerance


@settings(max_examples=100, deadline=None)
@given(
    policy=policies,
    fraction=st.floats(0.0, 1.0),
    true_fraction=st.floats(0.0, 1.0),
)
def test_residual_contracts_monotonically_on_stationary_drift(
    policy, fraction, true_fraction
):
    """Iterating the update rule against a fixed truth never diverges.

    The true correction R is placed inside the clamp range; each round
    the fitter observes the residual ratio ``R / m`` and proposes the
    next ``m``.  The log-residual must never grow, and after enough
    rounds must shrink below any fixed tolerance.
    """
    calibrator = Calibrator(policy)
    target = previous_within(policy, true_fraction)
    multiplier = previous_within(policy, fraction)
    residual = abs(math.log(target / multiplier))
    # Worst case crosses the whole clamp range in max_step-bounded hops,
    # then converges geometrically at rate (1 - alpha).
    rounds = 100 + math.ceil(residual / math.log(policy.max_step))
    if policy.alpha < 1.0:
        rounds += math.ceil(math.log(1e4) / -math.log1p(-policy.alpha))
    for _ in range(rounds):
        multiplier = calibrator.propose(multiplier, target / multiplier)
        next_residual = abs(math.log(target / multiplier))
        assert next_residual <= residual + 1e-9
        residual = next_residual
        if residual < 1e-4:
            break
    assert residual < 1e-3


@settings(max_examples=100, deadline=None)
@given(
    ratio=ratios,
    count=st.integers(min_value=1, max_value=50),
    policy=policies,
)
def test_full_fit_respects_guardrails_end_to_end(ratio, count, policy):
    """Same invariants through Calibrator.fit on a synthetic snapshot."""
    state = CalibrationState()
    snapshot = {
        "rules": [
            {
                "scope": "wrapper",
                "source": "__mediator__",
                "wrapper": "w",
                "variable": "TotalTime",
                "count": count,
                "sum_log_ratio": count * math.log(ratio),
                "mean_q_error": max(ratio, 1.0 / ratio),
            }
        ]
    }
    fit = Calibrator(policy).fit(snapshot, state)
    for update in fit.updates:
        assert update.key == CoefficientKey("w", None, "TotalTime")
        assert policy.clamp_min <= update.proposed <= policy.clamp_max
        assert update.proposed <= update.previous * policy.max_step * (1 + 1e-9)
        assert update.proposed >= update.previous / policy.max_step / (1 + 1e-9)
        assert update.measured_ratio == pytest.approx(ratio, rel=1e-6)
