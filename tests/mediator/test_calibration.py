"""Unit battery for the calibration layer (§4.3 feedback loop).

Covers the pieces in isolation: coefficient keys and their serialized
form, policy validation, the guardrailed fit math, overlay state
apply/rollback/serde, and the estimator actually consuming the active
overlay (with provenance tags, mediator-side exclusion, and exact-scope
precedence).
"""

import json
import math

import pytest

from repro.core.scopes import MEDIATOR_SOURCE
from repro.mediator.calibration import (
    CalibrationOverlay,
    CalibrationPolicy,
    CalibrationState,
    Calibrator,
    CoefficientKey,
    render_calibration_state,
)
from repro.errors import TransientSourceError
from repro.mediator.mediator import Mediator
from repro.wrappers.base import Wrapper
from tests.federation_fixtures import build_sales_wrapper

K_TT = CoefficientKey("sales", None, "TotalTime")


def drift_row(
    wrapper="sales",
    variable="TotalTime",
    count=10,
    ratio=2.0,
    scope="wrapper",
    mean_q=2.0,
):
    """One DriftTracker.snapshot() rule row with a chosen geo ratio."""
    return {
        "scope": scope,
        "source": MEDIATOR_SOURCE,
        "rule": "generic-scan",
        "variable": variable,
        "wrapper": wrapper,
        "count": count,
        "sum_log_ratio": count * math.log(ratio),
        "geo_mean_ratio": ratio,
        "mean_q_error": mean_q,
        "max_q_error": mean_q,
    }


def snapshot(*rows):
    return {"rules": list(rows)}


class TestCoefficientKey:
    def test_round_trips_through_string(self):
        for key in (
            CoefficientKey("west", None, "TotalTime"),
            CoefficientKey("west", "wrapper", "CountObject"),
            CoefficientKey("a-b_c", "collection", "TotalSize"),
        ):
            assert CoefficientKey.from_string(key.as_string()) == key

    def test_wildcard_scope_serializes_as_star(self):
        assert CoefficientKey("w", None, "TotalTime").as_string() == (
            "w|*|TotalTime"
        )

    def test_malformed_string_rejected(self):
        with pytest.raises(ValueError):
            CoefficientKey.from_string("only|two")


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_samples=0),
            dict(alpha=0.0),
            dict(alpha=1.5),
            dict(max_step=1.0),
            dict(clamp_min=0.0),
            dict(clamp_min=2.0, clamp_max=3.0),  # does not straddle 1.0
            dict(clamp_max=0.5),
            dict(min_change=-1e-6),
        ],
    )
    def test_bad_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CalibrationPolicy(**kwargs)

    def test_defaults_are_valid(self):
        CalibrationPolicy()


class TestFitMath:
    def test_measured_ratio_is_geometric_mean(self):
        fit = Calibrator(CalibrationPolicy(min_samples=1)).fit(
            snapshot(drift_row(count=4, ratio=4.0)), CalibrationState()
        )
        [update] = fit.updates
        assert update.measured_ratio == pytest.approx(4.0)
        # alpha=0.5 smoothing: 1.0 * 4^0.5 = 2.0, exactly max_step.
        assert update.proposed == pytest.approx(2.0)

    def test_pools_rows_of_same_wrapper_across_scopes(self):
        fit = Calibrator(CalibrationPolicy(min_samples=6)).fit(
            snapshot(
                drift_row(count=3, ratio=2.0, scope="wrapper"),
                drift_row(count=3, ratio=8.0, scope="default"),
            ),
            CalibrationState(),
        )
        [update] = fit.updates
        assert update.key == K_TT
        assert update.samples == 6
        assert update.measured_ratio == pytest.approx(4.0)

    def test_per_scope_policy_fits_separate_keys(self):
        fit = Calibrator(
            CalibrationPolicy(min_samples=1, per_scope=True)
        ).fit(
            snapshot(
                drift_row(count=3, ratio=3.0, scope="wrapper"),
                drift_row(count=3, ratio=3.0, scope="default"),
            ),
            CalibrationState(),
        )
        assert sorted(u.key.scope for u in fit.updates) == [
            "default",
            "wrapper",
        ]

    def test_below_min_samples_is_skipped_not_fitted(self):
        fit = Calibrator(CalibrationPolicy(min_samples=11)).fit(
            snapshot(drift_row(count=10)), CalibrationState()
        )
        assert not fit.updates
        assert fit.skipped == {
            "sales|*|TotalTime": "below min_samples (10 < 11)"
        }

    def test_mediator_side_rows_never_calibrated(self):
        fit = Calibrator(CalibrationPolicy(min_samples=1)).fit(
            snapshot(drift_row(wrapper=MEDIATOR_SOURCE), drift_row(wrapper="")),
            CalibrationState(),
        )
        assert not fit.updates and not fit.skipped

    def test_zero_count_rows_ignored(self):
        fit = Calibrator(CalibrationPolicy(min_samples=1)).fit(
            snapshot(drift_row(count=0)), CalibrationState()
        )
        assert not fit.updates and not fit.skipped

    def test_variable_allowlist_enforced(self):
        fit = Calibrator(
            CalibrationPolicy(min_samples=1, variables=("CountObject",))
        ).fit(snapshot(drift_row(variable="TotalTime")), CalibrationState())
        assert not fit.updates

    def test_noop_proposal_dropped_below_min_change(self):
        fit = Calibrator(CalibrationPolicy(min_samples=1, min_change=0.01)).fit(
            snapshot(drift_row(ratio=1.0001)), CalibrationState()
        )
        assert not fit.updates
        assert "no-op" in fit.skipped["sales|*|TotalTime"]

    def test_fit_measures_residual_under_active_multiplier(self):
        # With m=4 active and a residual window ratio of 1/2, the
        # smoothed proposal walks m toward 4·(1/2)=2: 4·(1/2)^0.5 ≈ 2.83.
        state = CalibrationState()
        state.apply({K_TT: 4.0})
        fit = Calibrator(CalibrationPolicy(min_samples=1)).fit(
            snapshot(drift_row(ratio=0.5)), state
        )
        [update] = fit.updates
        assert update.previous == pytest.approx(4.0)
        assert update.proposed == pytest.approx(4.0 * 0.5**0.5)

    def test_geo_mean_fallback_when_sum_log_ratio_missing(self):
        row = drift_row(count=4, ratio=9.0)
        del row["sum_log_ratio"]
        fit = Calibrator(CalibrationPolicy(min_samples=1)).fit(
            snapshot(row), CalibrationState()
        )
        [update] = fit.updates
        assert update.measured_ratio == pytest.approx(9.0)

    def test_window_mean_q_weighted_by_count(self):
        fit = Calibrator(CalibrationPolicy(min_samples=1)).fit(
            snapshot(
                drift_row(count=1, mean_q=10.0), drift_row(count=3, mean_q=2.0)
            ),
            CalibrationState(),
        )
        assert fit.window_mean_q == pytest.approx((10.0 + 3 * 2.0) / 4)

    def test_fit_and_apply_appends_overlay_only_on_change(self):
        state = CalibrationState()
        calibrator = Calibrator(CalibrationPolicy(min_samples=1))
        fit, overlay = calibrator.fit_and_apply(
            snapshot(drift_row(ratio=4.0)), state
        )
        assert overlay is not None and overlay.version == 1
        assert state.active_version == 1
        # An empty window changes nothing and appends nothing.
        fit, overlay = calibrator.fit_and_apply(snapshot(), state)
        assert overlay is None and len(state) == 2


class TestStateVersioning:
    def test_version_zero_is_identity(self):
        state = CalibrationState()
        assert state.active_version == 0
        assert state.is_identity
        assert state.multiplier_for("anything", "wrapper", "TotalTime") == 1.0

    def test_apply_merges_onto_active(self):
        state = CalibrationState()
        state.apply({K_TT: 2.0})
        other = CoefficientKey("oo7", None, "TotalTime")
        state.apply({other: 0.5})
        assert state.active_version == 2
        assert state.multiplier_for("sales", None, "TotalTime") == 2.0
        assert state.multiplier_for("oo7", None, "TotalTime") == 0.5

    def test_rollback_restores_exact_coefficients_and_preserves_history(self):
        state = CalibrationState()
        state.apply({K_TT: 2.0})
        state.apply({K_TT: 3.0})
        expected = dict(state.versions[1].multipliers)
        state.rollback(1)
        assert state.active_version == 1
        assert dict(state.active.multipliers) == expected
        assert len(state) == 3  # nothing was deleted
        # Roll forward again: the newer overlay is still there.
        state.rollback(2)
        assert state.multiplier_for("sales", None, "TotalTime") == 3.0

    def test_rollback_to_unknown_version_rejected(self):
        state = CalibrationState()
        with pytest.raises(ValueError):
            state.rollback(1)
        with pytest.raises(ValueError):
            state.rollback(-1)

    def test_exact_scope_beats_wildcard(self):
        overlay = CalibrationOverlay(
            version=1,
            multipliers={
                CoefficientKey("w", None, "TotalTime"): 2.0,
                CoefficientKey("w", "collection", "TotalTime"): 5.0,
            },
        )
        assert overlay.multiplier_for("w", "collection", "TotalTime") == 5.0
        assert overlay.multiplier_for("w", "wrapper", "TotalTime") == 2.0
        assert overlay.multiplier_for("w", None, "TotalTime") == 2.0
        assert overlay.multiplier_for("other", "collection", "TotalTime") == 1.0

    def test_json_round_trip(self):
        state = CalibrationState()
        state.apply({K_TT: 2.5}, note="first", observations=12)
        state.apply(
            {CoefficientKey("sales", "wrapper", "CountObject"): 0.75},
            note="second",
            observations=9,
        )
        state.rollback(1)
        restored = CalibrationState.from_json(state.to_json())
        assert restored.to_dict() == state.to_dict()
        assert restored.active_version == 1
        assert restored.versions[2].note == "second"
        assert restored.versions[2].fitted_observations == 9

    def test_from_json_validates_shape(self):
        with pytest.raises(ValueError):
            CalibrationState.from_dict(
                {"active_version": 5, "versions": [{"version": 0}]}
            )
        with pytest.raises(ValueError):
            CalibrationState.from_dict(
                {"active_version": 0, "versions": [{"version": 3}]}
            )

    def test_render_marks_active_version(self):
        state = CalibrationState()
        state.apply({K_TT: 2.0}, note="fit")
        text = render_calibration_state(state)
        assert "* v1" in text and "sales|*|TotalTime = 2.0000" in text
        state.rollback(0)
        text = render_calibration_state(state)
        assert "* v0" in text and "  v1" in text


class TestEstimatorApplication:
    SQL = "SELECT * FROM Orders WHERE qty > 90"

    def build(self):
        mediator = Mediator()
        mediator.register(build_sales_wrapper())
        return mediator

    def test_overlay_scales_wrapper_estimates_and_tags_provenance(self):
        mediator = self.build()
        before = mediator.query(self.SQL).estimated_ms
        baseline_explain = mediator.explain(self.SQL)
        mediator.apply_calibration({K_TT: 2.0}, note="test")
        result = mediator.query(self.SQL)
        # Every wrapper-owned TotalTime doubles; parents consume the
        # calibrated children, so the plan total at least doubles.
        assert result.estimated_ms >= 2.0 * before
        explain = mediator.explain(self.SQL)
        assert "calibrated x2 (v1)" in explain
        # Rollback to identity byte-restores the seed explain.
        mediator.rollback_calibration(0)
        assert mediator.explain(self.SQL) == baseline_explain
        assert mediator.query(self.SQL).estimated_ms == before

    def test_apply_and_rollback_bump_catalog_version(self):
        mediator = self.build()
        v0 = mediator.catalog.version
        mediator.apply_calibration({K_TT: 2.0})
        v1 = mediator.catalog.version
        mediator.rollback_calibration(0)
        assert v1 > v0 and mediator.catalog.version > v1

    def test_mediator_side_values_never_scaled(self):
        mediator = self.build()
        mediator.apply_calibration({K_TT: 1000.0})
        result = mediator.query(self.SQL)
        tagged = [
            text
            for node in result.estimate.nodes.values()
            for text in node.provenance.values()
            if "calibrated" in text
        ]
        # Wrapper-owned values were calibrated, but the mediator-side
        # root (the local-submit value, owned by no source) never is.
        assert tagged
        root_estimate = result.estimate.nodes[result.plan.node_id]
        for text in root_estimate.provenance.values():
            assert "local-submit" not in text or "calibrated" not in text

    def test_unrelated_wrapper_key_is_inert(self):
        mediator = self.build()
        baseline = mediator.explain(self.SQL)
        mediator.apply_calibration(
            {CoefficientKey("not-registered", None, "TotalTime"): 7.0}
        )
        assert mediator.explain(self.SQL) == baseline

    def test_state_is_shared_with_catalog(self):
        mediator = self.build()
        mediator.apply_calibration({K_TT: 2.0})
        assert mediator.estimator.calibration is mediator.catalog.calibration
        payload = json.loads(mediator.catalog.calibration.to_json())
        assert payload["active_version"] == 1


class TestFaultTaintedExclusion:
    """Satellite: fault-inflated actuals must not poison the fit window.

    A retried, failed-over, or hedged submit's measured wall time folds
    backoff sleeps or another replica's service time into the actual;
    :class:`~repro.service.calibration.CalibrationManager` drops those
    rows before feeding the window tracker."""

    SQL = "SELECT * FROM Suppliers WHERE sid < 25"

    def build(self):
        from repro.mediator.executor import ExecutorOptions
        from repro.mediator.resilience import ResilienceOptions, RetryPolicy
        from repro.obs.metrics import MetricsRegistry
        from repro.service.calibration import (
            CalibrationManager,
            CalibrationOptions,
        )

        class FailsOnDemand(Wrapper):
            def __init__(self, inner):
                super().__init__(inner.name, inner.capabilities)
                self.inner = inner
                self.remaining_failures = 0

            def export_cost_info(self):
                return self.inner.export_cost_info()

            def execute(self, plan):
                if self.remaining_failures > 0:
                    self.remaining_failures -= 1
                    raise TransientSourceError("induced", elapsed_ms=30.0)
                return self.inner.execute(plan)

        mediator = Mediator(
            executor_options=ExecutorOptions(
                resilience=ResilienceOptions(
                    retry=RetryPolicy(max_attempts=3, backoff_base_ms=0.0)
                )
            )
        )
        wrapper = FailsOnDemand(build_sales_wrapper())
        mediator.register(wrapper)
        manager = CalibrationManager(
            mediator,
            CalibrationOptions(cadence_queries=10**6),
            MetricsRegistry(),
        )
        return mediator, wrapper, manager

    def record_one(self, mediator, manager):
        from types import SimpleNamespace

        planned = mediator.plan(self.SQL)
        execution = mediator.executor.execute(planned.plan)
        manager.record(
            "t0", SimpleNamespace(estimate=planned.estimate), execution
        )
        return execution

    def window_count(self, manager):
        return sum(
            row["count"] for row in manager.window.snapshot()["rules"]
        )

    def test_clean_submit_log_drops_only_tainted_rows(self):
        from dataclasses import replace

        from repro.service.calibration import CalibrationManager

        mediator, _, _ = self.build()
        execution = mediator.executor.execute(
            mediator.plan(self.SQL).plan
        )
        submit, measured = execution.submit_log[0]
        assert not measured.fault_tainted
        tainted = replace(
            execution,
            submit_log=[
                (submit, measured),
                (submit, replace(measured, fault_tainted=True)),
            ],
        )
        cleaned = CalibrationManager._clean_submit_log(tainted)
        assert cleaned == [(submit, measured)]

    def test_retried_submits_stay_out_of_the_window(self):
        mediator, wrapper, manager = self.build()
        wrapper.remaining_failures = 1  # the submit retries once
        execution = self.record_one(mediator, manager)
        assert execution.submit_log[0][1].fault_tainted
        assert manager.window_queries == 1
        # The tainted measurement never reached the window tracker.
        assert self.window_count(manager) == 0

    def test_clean_submits_still_feed_the_window(self):
        mediator, _, manager = self.build()
        self.record_one(mediator, manager)
        assert self.window_count(manager) > 0

    def test_mixed_history_fits_only_on_clean_actuals(self):
        mediator, wrapper, manager = self.build()
        before = 0
        for fail in (True, False, True, False):
            wrapper.remaining_failures = 1 if fail else 0
            self.record_one(mediator, manager)
            count = self.window_count(manager)
            if fail:
                assert count == before  # unchanged by the tainted query
            else:
                assert count > before
            before = count
