"""Unit tests for the optimizer's enumeration and pushdown behaviour."""

import pytest

from repro.algebra.expressions import eq
from repro.algebra.logical import Join, Project, Select, Sort, Submit
from repro.errors import QueryError
from repro.mediator.optimizer import Optimizer, OptimizerOptions
from repro.mediator.queryspec import QuerySpec

from tests.federation_fixtures import build_files_wrapper, build_sales_wrapper


@pytest.fixture
def federation_optimizer(federation):
    return federation.optimizer


def spec_for(federation, sql):
    return federation.parse(sql)


class TestAccessPlans:
    def test_filters_pushed_into_capable_wrapper(self, federation):
        spec = spec_for(
            federation, "SELECT * FROM Suppliers WHERE city = 'city0'"
        )
        result = federation.optimizer.optimize(spec)
        submit = next(n for n in result.plan.walk() if isinstance(n, Submit))
        assert any(isinstance(n, Select) for n in submit.child.walk())

    def test_filters_stay_pushed_for_flatfile_select_capability(self, federation):
        # The flat file supports select, so filters go inside the Submit.
        spec = spec_for(federation, "SELECT * FROM AuditLog WHERE severity = 1")
        result = federation.optimizer.optimize(spec)
        submit = next(n for n in result.plan.walk() if isinstance(n, Submit))
        assert any(isinstance(n, Select) for n in submit.child.walk())

    def test_push_filters_disabled(self, federation):
        federation.optimizer.options = OptimizerOptions(push_filters=False)
        spec = spec_for(
            federation, "SELECT * FROM Suppliers WHERE city = 'city0'"
        )
        result = federation.optimizer.optimize(spec)
        submit = next(n for n in result.plan.walk() if isinstance(n, Submit))
        # The filter sits above the submit now.
        assert not any(isinstance(n, Select) for n in submit.child.walk())
        assert any(isinstance(n, Select) for n in result.plan.walk())


class TestJoinEnumeration:
    def test_every_collection_gets_one_submit_or_shares_one(self, federation):
        spec = spec_for(
            federation,
            "SELECT * FROM Orders, Suppliers "
            "WHERE Orders.supplier = Suppliers.sid",
        )
        result = federation.optimizer.optimize(spec)
        scanned = result.plan.base_collections()
        assert scanned == {"Orders", "Suppliers"}

    def test_pushdown_disabled_forces_mediator_join(self, federation):
        federation.optimizer.options = OptimizerOptions(
            push_joins_to_wrappers=False, use_bind_join=False
        )
        spec = spec_for(
            federation,
            "SELECT * FROM Orders, Suppliers "
            "WHERE Orders.supplier = Suppliers.sid",
        )
        result = federation.optimizer.optimize(spec)
        joins = [n for n in result.plan.walk() if isinstance(n, Join)]
        submits = [n for n in result.plan.walk() if isinstance(n, Submit)]
        assert len(joins) == 1
        assert len(submits) == 2

    def test_greedy_matches_dp_on_connected_chain(self, federation):
        sql = (
            "SELECT * FROM Orders, Suppliers, AtomicParts "
            "WHERE Orders.supplier = Suppliers.sid "
            "AND Suppliers.partType = AtomicParts.type AND AtomicParts.Id < 20"
        )
        spec = spec_for(federation, sql)
        dp = federation.optimizer.optimize(spec)
        federation.optimizer.options = OptimizerOptions(
            max_exhaustive_collections=1
        )
        greedy = federation.optimizer.optimize(spec_for(federation, sql))
        # Greedy may differ in cost, never in the answer set; both must be
        # executable plans over all three collections.
        assert greedy.plan.base_collections() == dp.plan.base_collections()
        assert greedy.estimated_total_ms >= dp.estimated_total_ms * 0.999

    def test_disconnected_graph_raises_in_greedy_too(self, federation):
        federation.optimizer.options = OptimizerOptions(
            max_exhaustive_collections=1
        )
        spec = QuerySpec(collections=["Orders", "AuditLog"])
        with pytest.raises(QueryError):
            federation.optimizer.optimize(spec)


class TestDecorations:
    def test_projection_applied(self, federation):
        spec = spec_for(federation, "SELECT sid FROM Suppliers")
        result = federation.optimizer.optimize(spec)
        assert any(isinstance(n, Project) for n in result.plan.walk())

    def test_order_by_applied(self, federation):
        spec = spec_for(federation, "SELECT * FROM Suppliers ORDER BY sid")
        result = federation.optimizer.optimize(spec)
        assert any(isinstance(n, Sort) for n in result.plan.walk())

    def test_single_source_pushdown_candidate_considered(self, federation):
        spec = spec_for(
            federation,
            "SELECT partType, COUNT(*) AS n FROM Suppliers GROUP BY partType",
        )
        result = federation.optimizer.optimize(spec)
        # Two decorated candidates (mediator-side + pushed) were costed.
        assert result.stats.candidates_considered >= 2

    def test_flatfile_cannot_take_aggregate_pushdown(self, federation):
        spec = spec_for(
            federation,
            "SELECT severity, COUNT(*) AS n FROM AuditLog GROUP BY severity",
        )
        result = federation.optimizer.optimize(spec)
        # The aggregate must sit above the Submit (files can't aggregate).
        submit = next(n for n in result.plan.walk() if isinstance(n, Submit))
        assert all(
            n.operator_name != "aggregate" for n in submit.child.walk()
        )


class TestPruning:
    def test_pruning_reduces_or_equals_work(self, federation):
        sql = (
            "SELECT * FROM Orders, Suppliers, AtomicParts "
            "WHERE Orders.supplier = Suppliers.sid "
            "AND Suppliers.partType = AtomicParts.type AND AtomicParts.Id < 20"
        )
        federation.optimizer.options = OptimizerOptions(use_pruning=True)
        pruned = federation.optimizer.optimize(spec_for(federation, sql))
        federation.optimizer.options = OptimizerOptions(use_pruning=False)
        unpruned = federation.optimizer.optimize(spec_for(federation, sql))
        assert pruned.stats.formulas_evaluated <= unpruned.stats.formulas_evaluated
        # Same winning plan cost either way.
        assert pruned.estimated_total_ms == pytest.approx(
            unpruned.estimated_total_ms
        )

    def test_stats_counters_populated(self, federation):
        spec = spec_for(federation, "SELECT * FROM Suppliers")
        result = federation.optimizer.optimize(spec)
        assert result.stats.candidates_considered >= 1
        assert result.stats.formulas_evaluated > 0
