"""End-to-end mediator tests: registration → SQL → plan → rows."""

import pytest

from repro.algebra.logical import Join, Submit
from repro.errors import QueryError, RegistrationError
from repro.mediator.mediator import Mediator

from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper


class TestRegistration:
    def test_wrapper_rules_integrated(self, federation):
        oo7_rules = federation.repository.rules_for_source("oo7")
        assert len(oo7_rules) > 0
        assert federation.repository.rules_for_source("sales") == []

    def test_catalog_filled(self, federation):
        names = federation.catalog.collection_names()
        assert "AtomicParts" in names
        assert "Suppliers" in names
        assert "AuditLog" in names

    def test_stats_only_for_exporting_wrappers(self, federation):
        assert "AtomicParts" in federation.catalog.statistics
        assert "AuditLog" not in federation.catalog.statistics

    def test_reregistration_replaces(self):
        mediator = Mediator()
        mediator.register(build_oo7_wrapper())
        first = len(mediator.repository.rules_for_source("oo7"))
        mediator.register(build_oo7_wrapper())
        assert len(mediator.repository.rules_for_source("oo7")) == first

    def test_flatfile_attributes_discovered(self, federation):
        # No stats exported, but registration peeked at the engine rows.
        assert "severity" in federation.catalog.attributes_of("AuditLog")


class TestSingleSourceQueries:
    def test_exact_match(self, federation):
        result = federation.query("SELECT * FROM AtomicParts WHERE Id = 7")
        assert result.count == 1
        assert result.rows[0]["Id"] == 7

    def test_range_query(self, federation):
        result = federation.query(
            "SELECT * FROM AtomicParts WHERE Id BETWEEN 10 AND 19"
        )
        assert sorted(r["Id"] for r in result.rows) == list(range(10, 20))

    def test_projection(self, federation):
        result = federation.query("SELECT Id FROM AtomicParts WHERE Id < 3")
        assert all(set(r) == {"Id"} for r in result.rows)

    def test_order_by(self, federation):
        result = federation.query(
            "SELECT Id FROM AtomicParts WHERE Id < 20 ORDER BY Id DESC"
        )
        ids = [r["Id"] for r in result.rows]
        assert ids == sorted(ids, reverse=True)

    def test_group_by_count(self, federation):
        result = federation.query(
            "SELECT type, COUNT(*) AS n FROM AtomicParts GROUP BY type"
        )
        assert sum(r["n"] for r in result.rows) == 200  # TINY: 20 comp × 10

    def test_distinct(self, federation):
        result = federation.query("SELECT DISTINCT severity FROM AuditLog")
        assert sorted(r["severity"] for r in result.rows) == [0, 1, 2]

    def test_flatfile_query_runs(self, federation):
        result = federation.query("SELECT * FROM AuditLog WHERE severity = 2")
        assert result.count == 40

    def test_timing_positive_and_estimated(self, federation):
        result = federation.query("SELECT * FROM AtomicParts WHERE Id = 7")
        assert result.elapsed_ms > 0
        assert result.estimated_ms > 0
        assert 0 < result.time_first_ms <= result.elapsed_ms


class TestCrossSourceQueries:
    def test_two_source_join(self, federation):
        result = federation.query(
            "SELECT * FROM AtomicParts, Suppliers "
            "WHERE AtomicParts.type = Suppliers.partType "
            "AND Suppliers.city = 'city1'"
        )
        assert result.count > 0
        for row in result.rows:
            assert row["type"] == row["partType"]
            assert row["city"] == "city1"

    def test_cross_source_join_runs_at_mediator(self, federation):
        optimized = federation.plan(
            "SELECT * FROM AtomicParts, Suppliers "
            "WHERE AtomicParts.type = Suppliers.partType"
        )
        joins = [n for n in optimized.plan.walk() if isinstance(n, Join)]
        assert joins, "expected a mediator-side join"
        submits = [n for n in optimized.plan.walk() if isinstance(n, Submit)]
        assert {s.wrapper for s in submits} == {"oo7", "sales"}

    def test_same_wrapper_join_chooses_cheapest_placement(self, federation):
        """Both placements (pushed-down wrapper join vs. two submits +
        mediator join) are enumerated; the winner must be at least as
        cheap as either hand-built alternative."""
        from repro.algebra.builders import scan
        from repro.algebra.expressions import eq

        sql = (
            "SELECT * FROM Orders, Suppliers "
            "WHERE Orders.supplier = Suppliers.sid AND Suppliers.city = 'city0'"
        )
        optimized = federation.plan(sql)
        pushed = (
            scan("Orders")
            .join(
                scan("Suppliers").where(eq("city", "city0")).build(),
                "supplier",
                "sid",
            )
            .submit_to("sales")
            .build()
        )
        mediator_side = (
            scan("Orders")
            .submit_to("sales")
            .join(
                scan("Suppliers").where(eq("city", "city0")).submit_to("sales"),
                "supplier",
                "sid",
            )
            .build()
        )
        est_pushed = federation.estimator.estimate(pushed).total_time
        est_mediator = federation.estimator.estimate(mediator_side).total_time
        assert optimized.estimated_total_ms <= min(est_pushed, est_mediator) * 1.001

        result = federation.query(sql)
        assert result.count == 80  # 10 suppliers × 8 orders each

    def test_three_source_query(self, federation):
        result = federation.query(
            "SELECT * FROM Orders, Suppliers, AtomicParts "
            "WHERE Orders.supplier = Suppliers.sid "
            "AND Suppliers.partType = AtomicParts.type "
            "AND AtomicParts.Id < 10"
        )
        assert result.count > 0

    def test_disconnected_join_graph_rejected(self, federation):
        with pytest.raises(QueryError):
            federation.query("SELECT * FROM AtomicParts, Suppliers")


class TestExplainAndPlans:
    def test_explain_mentions_scopes(self, federation):
        text = federation.explain("SELECT * FROM AtomicParts WHERE Id = 7")
        assert "estimated TotalTime" in text
        assert "submit[oo7]" in text
        # The Yao rule exported by the wrapper is predicate-scope.
        assert "predicate[oo7]" in text

    def test_estimate_close_to_measurement(self, federation):
        """The headline: with wrapper rules the estimate tracks reality."""
        result = federation.query("SELECT * FROM AtomicParts WHERE Id = 7")
        assert result.estimated_ms == pytest.approx(result.elapsed_ms, rel=0.25)

    def test_execute_plan_direct(self, federation):
        from repro.algebra.builders import scan

        plan = scan("AtomicParts").where_eq("Id", 3).submit_to("oo7").build()
        result = federation.execute_plan(plan)
        assert result.count == 1


class TestErrors:
    def test_failing_wrapper_registration(self):
        from repro.wrappers.base import CostInfoExport, Wrapper

        class BrokenWrapper(Wrapper):
            def __init__(self):
                super().__init__("broken")

            def export_cost_info(self):
                return CostInfoExport(cdl_source="costrule nope(C) { x = ; }")

            def execute(self, plan):
                raise NotImplementedError

        with pytest.raises(RegistrationError):
            Mediator().register(BrokenWrapper())
