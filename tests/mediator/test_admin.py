"""Tests for the §2.1 administrative interface."""

import pytest

from repro.cdl import compile_source
from repro.mediator.admin import AdminConsole
from repro.mediator.mediator import Mediator
from repro.sources.relationaldb import RelationalDatabase
from repro.wrappers import RelationalWrapper


@pytest.fixture
def setup(federation):
    return AdminConsole(federation)


class TestInspection:
    def test_catalog_report(self, setup):
        report = setup.catalog_report()
        assert "AtomicParts @ oo7" in report
        assert "AuditLog @ files (no stats" in report

    def test_rules_report_shows_scopes(self, setup):
        report = setup.rules_report()
        assert "default:" in report
        assert "predicate:" in report  # oo7's Yao rules

    def test_wrapper_rules_listing(self, setup):
        rules = setup.wrapper_rules("oo7")
        assert rules
        assert any("select(AtomicParts" in r for r in rules)
        assert setup.wrapper_rules("sales") == []

    def test_dump_cost_info_is_valid_cdl(self, setup):
        dump = setup.dump_cost_info("oo7")
        compiled = compile_source(
            dump,
            known_collections={"AtomicParts"},
            known_attributes={"Id", "buildDate"},
        )
        assert compiled.rules

    def test_dump_for_ruleless_wrapper(self, setup):
        assert "no cost rules" in setup.dump_cost_info("sales")


class TestDrift:
    def make(self):
        mediator = Mediator()
        db = RelationalDatabase()
        db.create_table(
            "T", [{"x": i} for i in range(100)], row_size=20,
            indexed_columns=["x"],
        )
        wrapper = RelationalWrapper("w", db)
        mediator.register(wrapper)
        return mediator, db

    def test_no_drift_initially(self):
        mediator, _db = self.make()
        console = AdminConsole(mediator)
        reports = console.check_drift()
        assert all(not r.is_stale for r in reports)
        assert reports[0].drift_ratio == pytest.approx(1.0)

    def test_drift_detected_after_inserts(self):
        mediator, db = self.make()
        for i in range(100, 150):
            db.insert("T", {"x": i})
        console = AdminConsole(mediator)
        report = console.check_drift()[0]
        assert report.is_stale
        assert report.drift_ratio == pytest.approx(1.5)

    def test_refresh_stale_reregisters(self):
        mediator, db = self.make()
        for i in range(100, 150):
            db.insert("T", {"x": i})
        console = AdminConsole(mediator)
        refreshed = console.refresh_stale()
        assert refreshed == ["w"]
        assert mediator.catalog.statistics.get("T").count_object == 150
        # Now clean.
        assert console.refresh_stale() == []

    def test_refresh_single(self):
        mediator, db = self.make()
        db.insert("T", {"x": 999})
        AdminConsole(mediator).refresh("w")
        assert mediator.catalog.statistics.get("T").count_object == 101
