"""Tests for partial-answer semantics (``mode="partial"``)."""

import json

import pytest

from repro.algebra.builders import count_star, scan
from repro.algebra.expressions import AttributeRef
from repro.algebra.logical import BindJoin
from repro.errors import SubmitFailedError
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import (
    PARTIAL,
    BreakerPolicy,
    ResilienceOptions,
    RetryPolicy,
)
from repro.obs import ObservabilityOptions
from repro.wrappers.faults import FaultInjector, FaultProfile
from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper

DEAD = FaultProfile(unavailable=True)


def partial_options(breaker=None, attempts=2):
    return ResilienceOptions(
        retry=RetryPolicy(max_attempts=attempts, backoff_base_ms=0.0),
        breaker=breaker,
        mode=PARTIAL,
    )


def build_federation(resilience, oo7_profile=DEAD, observability=None):
    """sales healthy, oo7 behind a fault injector (dead by default)."""
    mediator = Mediator(
        executor_options=ExecutorOptions(resilience=resilience),
        observability=observability,
    )
    mediator.register(build_sales_wrapper())
    injector = FaultInjector(build_oo7_wrapper(), oo7_profile)
    mediator.register(injector)
    return mediator


def union_plan():
    return (
        scan("Orders")
        .submit_to("sales")
        .union(scan("AtomicParts").submit_to("oo7"))
        .build()
    )


def join_plan():
    return (
        scan("AtomicParts")
        .submit_to("oo7")
        .join(scan("Suppliers").submit_to("sales"), "type", "partType")
        .build()
    )


class TestPartialMode:
    def test_union_drops_the_missing_branch(self):
        mediator = build_federation(partial_options())
        result = mediator.executor.execute(union_plan())
        assert result.count == 400  # the surviving sales branch
        assert result.degraded
        partial = result.partial
        assert partial.missing_wrappers == ["oo7"]
        assert partial.missing_collections == ["AtomicParts"]
        assert partial.dropped_union_branches == 1
        assert partial.pruned_joins == 0
        assert partial.sound_lower_bound

    def test_join_over_missing_side_prunes_to_zero_rows(self):
        mediator = build_federation(partial_options())
        result = mediator.executor.execute(join_plan())
        assert result.count == 0
        assert result.degraded
        assert result.partial.pruned_joins == 1
        assert result.partial.dropped_union_branches == 0
        # Inner-join semantics: zero rows is still a sound lower bound.
        assert result.partial.sound_lower_bound

    def test_both_union_branches_missing(self):
        mediator = build_federation(partial_options())
        plan = (
            scan("AtomicParts")
            .submit_to("oo7")
            .union(scan("Documents").submit_to("oo7"))
            .build()
        )
        result = mediator.executor.execute(plan)
        assert result.count == 0
        assert result.partial.dropped_union_branches == 2
        assert result.partial.missing_collections == ["AtomicParts", "Documents"]

    def test_aggregate_above_failure_is_not_sound(self):
        mediator = build_federation(partial_options())
        plan = (
            scan("AtomicParts")
            .submit_to("oo7")
            .aggregate(aggregates=[count_star("parts")])
            .build()
        )
        result = mediator.executor.execute(plan)
        assert result.degraded
        assert not result.partial.sound_lower_bound
        assert "NOT a sound lower bound" in result.partial.describe()

    def test_failure_report_is_structured(self):
        mediator = build_federation(partial_options(attempts=2))
        result = mediator.executor.execute(union_plan())
        (failure,) = result.partial.failures
        assert failure.wrapper == "oo7"
        assert failure.reason == "unavailable"
        assert failure.attempts == 2
        assert not failure.bindjoin_probe
        payload = result.partial.to_dict()
        assert payload["missing_wrappers"] == ["oo7"]
        assert payload["failures"][0]["reason"] == "unavailable"
        json.dumps(payload)  # the report must be JSON-serializable

    def test_strict_mode_raises_instead(self):
        mediator = build_federation(
            ResilienceOptions(retry=RetryPolicy(max_attempts=1), breaker=None)
        )
        with pytest.raises(SubmitFailedError):
            mediator.executor.execute(union_plan())

    def test_bindjoin_probe_failure_prunes_the_dependent_join(self):
        mediator = build_federation(partial_options())
        outer = scan("Orders").submit_to("sales").build()
        plan = BindJoin(
            outer,
            AttributeRef("supplier"),
            "AtomicParts",
            AttributeRef("Id"),
            "oo7",
        )
        result = mediator.executor.execute(plan)
        assert result.count == 0
        assert result.degraded
        (failure,) = result.partial.failures
        assert failure.bindjoin_probe
        assert failure.node_id == plan.node_id  # reported under the BindJoin
        assert failure.collection == "AtomicParts"
        assert result.partial.pruned_joins == 1


class TestQuerySurface:
    def test_sql_query_answers_degraded(self):
        """The ISSUE's acceptance scenario: a query over one dead wrapper
        still answers, reporting what is missing."""
        mediator = build_federation(partial_options())
        result = mediator.query(
            "SELECT oid, qty FROM Orders "
            "UNION ALL SELECT Id AS oid, x AS qty FROM AtomicParts"
        )
        assert result.count == 400
        assert result.degraded
        assert result.partial.missing_wrappers == ["oo7"]

    def test_complete_answer_reports_no_partial(self):
        mediator = build_federation(partial_options(), oo7_profile=FaultProfile())
        result = mediator.query("SELECT * FROM Orders WHERE qty = 7")
        assert not result.degraded
        assert result.partial is None

    def test_explain_flags_open_breakers(self):
        mediator = build_federation(
            partial_options(breaker=BreakerPolicy(failure_threshold=1))
        )
        sql = "SELECT * FROM AtomicParts WHERE Id = 3"
        assert mediator.query(sql).degraded  # trips the oo7 breaker
        text = mediator.explain(sql)
        assert "DEGRADED: circuit breakers not closed for wrappers oo7" in text
        payload = json.loads(mediator.explain(sql, format="json"))
        assert payload["degraded"] is True
        assert payload["degraded_wrappers"] == ["oo7"]

    def test_explain_is_clean_while_breakers_are_closed(self):
        mediator = build_federation(
            partial_options(breaker=BreakerPolicy(failure_threshold=1)),
            oo7_profile=FaultProfile(),
        )
        sql = "SELECT * FROM AtomicParts WHERE Id = 3"
        mediator.query(sql)
        assert "DEGRADED" not in mediator.explain(sql)
        payload = json.loads(mediator.explain(sql, format="json"))
        assert payload["degraded"] is False


class TestMetricsSnapshot:
    def test_fault_counters_reach_the_prometheus_exposition(self):
        """The ISSUE's acceptance scenario: retry/timeout/breaker counters
        appear in the metrics snapshot."""
        mediator = build_federation(
            partial_options(breaker=BreakerPolicy(failure_threshold=2)),
            observability=ObservabilityOptions.all_on(),
        )
        mediator.query("SELECT * FROM AtomicParts WHERE Id = 3")
        exposition = mediator.telemetry.metrics.expose_text()
        assert 'repro_submit_retries_total{wrapper="oo7"} 1.0' in exposition
        assert 'repro_submit_errors_total{wrapper="oo7"} 2.0' in exposition
        assert 'repro_failed_submits_total{wrapper="oo7"} 1.0' in exposition
        assert 'repro_breaker_trips_total{wrapper="oo7"} 1.0' in exposition
        assert "repro_degraded_queries_total 1.0" in exposition
        assert "repro_submit_timeouts_total" in exposition

    def test_fault_free_queries_keep_a_clean_exposition(self):
        mediator = build_federation(
            partial_options(),
            oo7_profile=FaultProfile(),
            observability=ObservabilityOptions.all_on(),
        )
        mediator.query("SELECT * FROM Orders WHERE qty = 7")
        exposition = mediator.telemetry.metrics.expose_text()
        assert "repro_degraded_queries_total 0.0" in exposition
        assert "repro_failed_submits_total" in exposition  # materialized…
        assert 'repro_failed_submits_total{wrapper=' not in exposition  # …empty
