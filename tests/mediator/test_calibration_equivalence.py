"""The calibration layer's do-no-harm guarantee.

Calibration off — and calibration *on* but with ``min_samples`` set
above anything a fit window can reach — must be invisible: query
results, submit logs, simulated latencies, estimates, and explain
output byte-identical to the seed path, across the sequential executor,
the concurrent-wave executor, and a fully armed (never-firing)
resilience configuration.  The identity overlay (version 0) multiplies
nothing and tags no provenance, and a fitter that proposes no update
never bumps the catalog version — so the plan cache keeps its entries
and nothing re-optimizes.  Mirrors ``tests/service/
test_sharding_equivalence.py``.
"""

from repro.algebra.logical import Submit
from repro.mediator.calibration import CalibrationPolicy
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import (
    BreakerPolicy,
    ResilienceOptions,
    RetryPolicy,
)
from repro.service.calibration import CalibrationOptions
from repro.service.service import FederationService, ServiceOptions
from repro.wrappers.faults import FaultInjector, FaultProfile
from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper

ARMED = ResilienceOptions(
    retry=RetryPolicy(
        max_attempts=5,
        backoff_base_ms=100.0,
        jitter_ratio=0.3,
        deadline_ms=1e9,
    ),
    breaker=BreakerPolicy(failure_threshold=1, cooldown_ms=10.0),
    mode="partial",
)

#: Unreachably high: every fit window stays below it, so the manager
#: runs fits on cadence yet never proposes a single update.
NEVER_FIT = CalibrationOptions(
    cadence_queries=2,
    policy=CalibrationPolicy(min_samples=10**6),
)

WORKLOAD = (
    ("scan-filter", "SELECT * FROM Orders WHERE qty > 90"),
    ("point-lookup", "SELECT * FROM Orders WHERE oid = 123"),
    (
        "join",
        "SELECT * FROM Suppliers, Orders "
        "WHERE Orders.supplier = Suppliers.sid AND Suppliers.city = 'city1'",
    ),
    (
        "aggregate",
        "SELECT supplier, COUNT(*) AS n FROM Orders GROUP BY supplier",
    ),
)


def build_service(calibrated, resilience=None, inject=False, parallel=False):
    mediator = Mediator(
        executor_options=ExecutorOptions(
            resilience=resilience, parallel_submits=parallel
        )
    )
    for wrapper in (build_oo7_wrapper(), build_sales_wrapper()):
        if inject:
            wrapper = FaultInjector(wrapper, FaultProfile(error_probability=0.0))
        mediator.register(wrapper)
    options = ServiceOptions(calibration=NEVER_FIT if calibrated else None)
    return mediator, FederationService(mediator, options)


def submit_log(result):
    return [
        [inner.describe() for inner in node.walk()]
        for node in result.plan.walk()
        if isinstance(node, Submit)
    ]


def transcript_entry(label, result, explain):
    return {
        "label": label,
        "rows": result.rows,
        "elapsed_ms": result.elapsed_ms,
        "time_first_ms": result.time_first_ms,
        "estimated_ms": result.estimated_ms,
        # Node ids come from a process-global counter, so key the
        # estimate snapshot by position within the plan, not raw id.
        "estimate_values": [
            dict(node.values)
            for _, node in sorted(result.estimate.nodes.items())
        ],
        "provenance": [
            dict(node.provenance)
            for _, node in sorted(result.estimate.nodes.items())
        ],
        "submits": submit_log(result),
        "explain": explain,
        "partial": result.partial,
    }


def clock_totals(mediator):
    clock = mediator.executor.clock
    return {
        "clock_total": clock.now_ms,
        "wait_ms": clock.stats.wait_ms,
        "messages": clock.stats.messages,
        "bytes": clock.stats.bytes_shipped,
    }


def run_workload(mediator, service):
    session = service.open_session("tenant")
    transcript = [
        transcript_entry(
            label, service.query(session, sql), mediator.explain(sql)
        )
        for label, sql in WORKLOAD
    ]
    transcript.append(clock_totals(mediator))
    transcript.append({"catalog_version": mediator.catalog.version})
    return transcript


class TestInertCalibrationIsByteIdentical:
    def test_sequential_executor(self):
        assert run_workload(*build_service(calibrated=True)) == run_workload(
            *build_service(calibrated=False)
        )

    def test_parallel_wave_executor(self):
        assert run_workload(
            *build_service(calibrated=True, parallel=True)
        ) == run_workload(*build_service(calibrated=False, parallel=True))

    def test_armed_resilience_executor(self):
        assert run_workload(
            *build_service(
                calibrated=True, resilience=ARMED, inject=True, parallel=True
            )
        ) == run_workload(
            *build_service(
                calibrated=False, resilience=ARMED, inject=True, parallel=True
            )
        )

    def test_fits_actually_ran_and_proposed_nothing(self):
        # The equivalence above must not hold because calibration never
        # engaged: the manager runs a fit every 2 queries, each one
        # skipping every key on min_samples, and never versions.
        mediator, service = build_service(calibrated=True)
        run_workload(mediator, service)
        manager = service.calibration
        assert manager is not None
        assert manager.fits_attempted >= 2
        assert manager.overlays_applied == 0
        assert mediator.catalog.calibration.active_version == 0
        assert manager.last_fit is not None
        assert not manager.last_fit.updates
        assert manager.last_fit.skipped  # keys were seen, all skipped

    def test_identity_overlay_tags_no_provenance(self):
        mediator, service = build_service(calibrated=True)
        transcript = run_workload(mediator, service)
        for entry in transcript:
            if "provenance" not in entry:
                continue
            for provenance in entry["provenance"]:
                for text in provenance.values():
                    assert "calibrated" not in text

    def test_answers_are_complete(self):
        # Sanity: byte-identical must not mean identically empty.
        transcript = run_workload(*build_service(calibrated=True))
        row_entries = [e for e in transcript if "rows" in e]
        assert row_entries and all(len(e["rows"]) > 0 for e in row_entries)
        assert all(e["partial"] is None for e in row_entries)
