"""Regression tests for the executor cost-accounting fixes.

Three bugs rode along with the scheduler work:

* bindjoin probe batches never reached the submit log, so §4.3.1 history
  learned nothing from them;
* result payloads ignored projections, overcharging transfer for narrow
  subanswers;
* an empty result reported ``TimeFirst = 0`` even though discovering
  emptiness cost the whole execution.
"""

import pytest

from repro.algebra.builders import scan
from repro.algebra.expressions import eq
from repro.algebra.logical import Scan, Select, Submit
from repro.mediator.mediator import Mediator
from tests.federation_fixtures import build_sales_wrapper
from tests.mediator.test_bindjoin import bindjoin_plan, build_media_federation


class TestBindJoinFeedsHistory:
    def test_probe_batches_logged(self):
        media = build_media_federation()
        node = bindjoin_plan(media)
        node.batch_size = 5
        result = media.executor.execute(node)
        # 1 outer submit + 20 distinct keys / 5 per batch = 4 probes.
        assert len(result.submit_log) == 5
        probes = [entry for entry in result.submit_log if entry[0].wrapper == "media"]
        assert len(probes) == 4
        for probe_node, probe_result in probes:
            assert isinstance(probe_node, Submit)
            assert probe_node.child.primary_collection() == "Images"
            assert probe_result.total_time_ms > 0

    def test_history_learns_from_probes(self):
        media = build_media_federation()
        media_with_history = Mediator(record_history=True)
        # Rebuild the same federation on the history-enabled mediator.
        for name in ("media", "meta"):
            media_with_history.register(media.catalog.wrapper(name))
        node = bindjoin_plan(media_with_history)
        node.batch_size = 5
        media_with_history.execute_plan(node)
        # One query-scope rule per outer submit plus one per probe batch.
        assert len(media_with_history.history) == 5


class TestProjectedPayload:
    def test_projection_ships_projected_share(self, federation):
        plan = scan("Suppliers").keep("sid").submit_to("sales").build()
        clock = federation.executor.clock
        before = clock.stats.bytes_shipped
        result = federation.executor.execute(plan)
        shipped = clock.stats.bytes_shipped - before
        stats = federation.catalog.statistics.get("Suppliers")
        fraction = min(1.0, 1 / len(stats.attributes))
        width = max(1.0, float(max(1, stats.object_size)) * fraction)
        assert shipped == int(result.count * width)
        # Strictly less than shipping whole objects.
        assert shipped < result.count * stats.object_size

    def test_unprojected_scan_ships_whole_objects(self, federation):
        plan = scan("Suppliers").submit_to("sales").build()
        clock = federation.executor.clock
        before = clock.stats.bytes_shipped
        result = federation.executor.execute(plan)
        shipped = clock.stats.bytes_shipped - before
        stats = federation.catalog.statistics.get("Suppliers")
        assert shipped == result.count * stats.object_size


class TestEmptyResultTimeFirst:
    def test_mediator_empty_answer_reports_elapsed(self, federation):
        plan = (
            scan("Suppliers").where_eq("city", "nowhere").submit_to("sales").build()
        )
        result = federation.executor.execute(plan)
        assert result.count == 0
        assert result.total_time_ms > 0
        assert result.time_first_ms == pytest.approx(result.total_time_ms)

    def test_wrapper_empty_answer_reports_elapsed(self):
        wrapper = build_sales_wrapper()
        plan = Select(Scan("Suppliers"), eq("city", "nowhere"))
        result = wrapper.execute(plan)
        assert result.count == 0
        assert result.total_time_ms > 0
        assert result.time_first_ms == pytest.approx(result.total_time_ms)
