"""Unit tests for the mediator-side executor."""

import pytest

from repro.algebra.builders import count_star, scan
from repro.algebra.logical import Scan
from repro.errors import PlanError
from repro.mediator.executor import MEDIATOR_PROFILE, MediatorExecutor


@pytest.fixture
def executor(federation):
    return federation.executor


class TestSubmitDispatch:
    def test_submit_returns_wrapper_rows(self, federation):
        plan = scan("Suppliers").where_eq("city", "city0").submit_to("sales").build()
        result = federation.executor.execute(plan)
        assert result.count == 10
        assert all(r["city"] == "city0" for r in result.rows)

    def test_submit_log_records_each_dispatch(self, federation):
        plan = (
            scan("Orders")
            .submit_to("sales")
            .join(scan("Suppliers").submit_to("sales"), "supplier", "sid")
            .build()
        )
        result = federation.executor.execute(plan)
        assert len(result.submit_log) == 2
        wrappers = {node.wrapper for node, _res in result.submit_log}
        assert wrappers == {"sales"}

    def test_mediator_clock_includes_wrapper_time(self, federation):
        plan = scan("AtomicParts").submit_to("oo7").build()
        result = federation.executor.execute(plan)
        wrapper_time = result.submit_log[0][1].total_time_ms
        # Mediator total = wrapper time + 2 messages + transfer.
        assert result.total_time_ms > wrapper_time
        assert result.total_time_ms >= wrapper_time + 2 * MEDIATOR_PROFILE.net_ms_per_message

    def test_payload_uses_catalog_object_size(self, federation):
        plan = scan("AtomicParts").submit_to("oo7").build()
        start_bytes = federation.executor.clock.stats.bytes_shipped
        result = federation.executor.execute(plan)
        shipped = federation.executor.clock.stats.bytes_shipped - start_bytes
        assert shipped == result.count * 56  # AtomicParts object size

    def test_bare_scan_rejected(self, federation):
        with pytest.raises(PlanError, match="without a submit"):
            federation.executor.execute(Scan("Suppliers"))


class TestMediatorOperators:
    def test_select_above_submit(self, federation):
        plan = (
            scan("Suppliers").submit_to("sales").where_eq("city", "city1").build()
        )
        result = federation.executor.execute(plan)
        assert result.count == 10

    def test_project_and_sort(self, federation):
        plan = (
            scan("Suppliers")
            .submit_to("sales")
            .keep("sid")
            .order_by("sid", descending=True)
            .build()
        )
        result = federation.executor.execute(plan)
        sids = [r["sid"] for r in result.rows]
        assert sids == sorted(sids, reverse=True)
        assert all(set(r) == {"sid"} for r in result.rows)

    def test_distinct(self, federation):
        plan = (
            scan("Suppliers").submit_to("sales").keep("city").distinct().build()
        )
        result = federation.executor.execute(plan)
        assert result.count == 5

    def test_aggregate(self, federation):
        plan = (
            scan("Suppliers")
            .submit_to("sales")
            .aggregate(["city"], [count_star("n")])
            .build()
        )
        result = federation.executor.execute(plan)
        assert sorted(r["n"] for r in result.rows) == [10] * 5

    def test_union(self, federation):
        plan = (
            scan("Suppliers")
            .submit_to("sales")
            .union(scan("Suppliers").submit_to("sales"))
            .build()
        )
        result = federation.executor.execute(plan)
        assert result.count == 100

    def test_cross_wrapper_join(self, federation):
        plan = (
            scan("AtomicParts")
            .where_eq("Id", 3)
            .submit_to("oo7")
            .join(
                scan("Suppliers").submit_to("sales"),
                "type",
                "partType",
            )
            .build()
        )
        result = federation.executor.execute(plan)
        assert result.count == 5  # one part type matches 5 suppliers
        assert all("sid" in r and "Id" in r for r in result.rows)

    def test_time_first_before_total(self, federation):
        plan = scan("Suppliers").submit_to("sales").build()
        result = federation.executor.execute(plan)
        assert 0 < result.time_first_ms <= result.total_time_ms
