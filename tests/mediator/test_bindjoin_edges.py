"""Edge cases for the bind join: empty outers, estimator behaviour,
missing indexes, and interaction with decorations."""

import math

import pytest

from repro.algebra.builders import scan
from repro.algebra.expressions import attr
from repro.algebra.logical import BindJoin

from tests.mediator.test_bindjoin import bindjoin_plan, build_media_federation


@pytest.fixture(scope="module")
def media():
    return build_media_federation()


class TestEmptyAndDegenerate:
    def test_empty_outer_probes_nothing(self, media):
        outer = (
            scan("Tags").where_eq("tag", "no-such-tag").submit_to("meta").build()
        )
        node = BindJoin(
            outer=outer,
            outer_attribute=attr("tagged", "Tags"),
            inner_collection="Images",
            inner_attribute=attr("img", "Images"),
            wrapper="media",
        )
        start = media.executor.clock.stats.messages
        result = media.executor.execute(node)
        assert result.rows == []
        # Only the outer submit's two messages; zero probe batches.
        assert media.executor.clock.stats.messages - start == 2

    def test_unmatched_keys_produce_no_rows(self, media):
        # Tags reference images 0..1999; probe for a key set where the
        # image was deleted is impossible here, so instead verify a
        # smaller invariant: every output row joins correctly.
        node = bindjoin_plan(media, "tag0")
        rows = media.executor.execute(node).rows
        assert all(r["tagged"] == r["img"] for r in rows)


class TestEstimatorRule:
    def test_estimate_positive_and_finite(self, media):
        node = bindjoin_plan(media)
        estimate = media.estimator.estimate(node)
        assert math.isfinite(estimate.total_time)
        assert estimate.total_time > 0

    def test_cardinality_estimate_reasonable(self, media):
        node = bindjoin_plan(media)
        estimate = media.estimator.estimate(node)
        # 20 outer keys × 1 match each.
        assert estimate.root.count_object == pytest.approx(20.0, rel=0.3)

    def test_unindexed_inner_is_not_applicable(self, media):
        node = BindJoin(
            outer=scan("Tags").submit_to("meta").build(),
            outer_attribute=attr("tagged", "Tags"),
            inner_collection="Images",
            inner_attribute=attr("label", "Images"),  # no index on label
            wrapper="media",
        )
        estimate = media.estimator.estimate(node)
        assert estimate.total_time == math.inf

    def test_more_keys_cost_more(self, media):
        small = bindjoin_plan(media, "tag0")  # 20 keys
        outer_all = scan("Tags").submit_to("meta").build()  # 100 keys
        large = BindJoin(
            outer=outer_all,
            outer_attribute=attr("tagged", "Tags"),
            inner_collection="Images",
            inner_attribute=attr("img", "Images"),
            wrapper="media",
        )
        small_est = media.estimator.estimate(small).total_time
        large_est = media.estimator.estimate(large).total_time
        assert large_est > small_est

    def test_provenance_names_bindjoin_rule(self, media):
        node = bindjoin_plan(media)
        estimate = media.estimator.estimate(node)
        assert "bindjoin" in estimate.root.provenance["TotalTime"]


class TestDecorations:
    def test_projection_above_bindjoin(self, media):
        result = media.query(
            "SELECT label FROM Tags, Images "
            "WHERE Tags.tagged = Images.img AND Tags.tag = 'tag0'"
        )
        assert result.count == 20
        assert all(set(r) == {"label"} for r in result.rows)

    def test_aggregate_above_bindjoin(self, media):
        result = media.query(
            "SELECT label, COUNT(*) AS n FROM Tags, Images "
            "WHERE Tags.tagged = Images.img AND Tags.tag = 'tag0'"
            " GROUP BY label"
        )
        assert sum(r["n"] for r in result.rows) == 20
