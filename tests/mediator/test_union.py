"""Tests for UNION / UNION ALL support end to end."""

import pytest

from repro.errors import QueryError, SqlSyntaxError
from repro.mediator.queryspec import QuerySpec, UnionSpec
from repro.sqlfe.parser import parse_sql
from repro.sqlfe.sql_ast import SelectQuery, UnionQuery


class TestParsing:
    def test_plain_select_unchanged(self):
        assert isinstance(parse_sql("SELECT * FROM E"), SelectQuery)

    def test_union_all(self):
        statement = parse_sql("SELECT a FROM E UNION ALL SELECT a FROM F")
        assert isinstance(statement, UnionQuery)
        assert not statement.distinct
        assert len(statement.branches) == 2

    def test_bare_union_dedups(self):
        statement = parse_sql("SELECT a FROM E UNION SELECT a FROM F")
        assert statement.distinct

    def test_chain_of_three(self):
        statement = parse_sql(
            "SELECT a FROM E UNION ALL SELECT a FROM F UNION ALL SELECT a FROM G"
        )
        assert len(statement.branches) == 3

    def test_mixed_forces_distinct(self):
        statement = parse_sql(
            "SELECT a FROM E UNION ALL SELECT a FROM F UNION SELECT a FROM G"
        )
        assert statement.distinct

    def test_trailing_garbage_still_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM E UNION SELECT a FROM F banana")


class TestUnionSpecValidation:
    def make_branch(self, collection, projection):
        return QuerySpec(collections=[collection], projection=projection)

    def test_compatible_branches(self):
        spec = UnionSpec(
            branches=[
                self.make_branch("E", ["a"]),
                self.make_branch("F", ["a"]),
            ]
        )
        assert spec.distinct

    def test_needs_two_branches(self):
        with pytest.raises(QueryError):
            UnionSpec(branches=[self.make_branch("E", ["a"])])

    def test_star_branch_rejected(self):
        with pytest.raises(QueryError, match="SELECT \\*"):
            UnionSpec(
                branches=[
                    self.make_branch("E", None),
                    self.make_branch("F", ["a"]),
                ]
            )

    def test_mismatched_columns_rejected(self):
        with pytest.raises(QueryError, match="not compatible"):
            UnionSpec(
                branches=[
                    self.make_branch("E", ["a"]),
                    self.make_branch("F", ["b"]),
                ]
            )


class TestExecution:
    def test_union_all_concatenates(self, federation):
        result = federation.query(
            "SELECT sid FROM Suppliers WHERE city = 'city0' "
            "UNION ALL SELECT sid FROM Suppliers WHERE city = 'city1'"
        )
        assert result.count == 20

    def test_union_deduplicates(self, federation):
        result = federation.query(
            "SELECT partType FROM Suppliers WHERE city = 'city0' "
            "UNION SELECT partType FROM Suppliers WHERE city = 'city0'"
        )
        # 10 suppliers in city0 share 10 part types... but each appears
        # twice across the branches; distinct collapses everything.
        assert result.count == len(
            {r["partType"] for r in result.rows}
        )

    def test_cross_wrapper_union(self, federation):
        result = federation.query(
            "SELECT type FROM AtomicParts WHERE Id < 5 "
            "UNION ALL SELECT partType AS type FROM Suppliers WHERE sid < 5"
        )
        assert result.count == 10

    def test_union_estimates_positive(self, federation):
        optimized = federation.plan(
            "SELECT sid FROM Suppliers UNION ALL SELECT oid AS sid FROM Orders"
        )
        assert optimized.estimated_total_ms > 0
        assert optimized.plan.operator_name == "union"


class TestExplain:
    """Regression: ``explain`` accepts union queries — both as SQL and as
    an already-built :class:`UnionSpec` (its type hint excluded the
    latter even though ``plan`` always handled it)."""

    UNION_SQL = (
        "SELECT sid FROM Suppliers WHERE city = 'city0' "
        "UNION ALL SELECT oid AS sid FROM Orders WHERE qty > 90"
    )

    def test_explain_union_sql(self, federation):
        text = federation.explain(self.UNION_SQL)
        assert "estimated TotalTime" in text
        assert "union" in text

    def test_explain_union_spec_object(self, federation):
        spec = federation.parse(self.UNION_SQL)
        assert isinstance(spec, UnionSpec)
        text = federation.explain(spec)
        assert "union" in text

    def test_explain_union_json(self, federation):
        import json

        doc = json.loads(federation.explain(self.UNION_SQL, format="json"))
        assert doc["plan"]["operator"] == "union"
        assert len(doc["plan"]["children"]) == 2
        assert doc["estimated_total_ms"] > 0
