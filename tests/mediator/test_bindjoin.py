"""Tests for the dependent (bind) join — the §7 ADT-motivated extension."""

import pytest

from repro.algebra.builders import scan
from repro.algebra.expressions import AttributeRef, Or, attr, eq
from repro.algebra.logical import BindJoin, Scan, Select, Submit, validate_plan
from repro.errors import PlanError
from repro.mediator.mediator import Mediator
from repro.mediator.optimizer import OptimizerOptions
from repro.sources.clock import CostProfile, SimClock
from repro.sources.storage_engine import StorageEngine
from repro.wrappers.base import StorageWrapper

#: An "image library": few thousand wide, expensive-to-produce objects.
IMAGE_DEVICE = CostProfile(io_ms=20.0, cpu_ms_per_object=80.0, cpu_ms_per_eval=1.0)


def build_media_federation() -> Mediator:
    mediator = Mediator()
    images_engine = StorageEngine(SimClock(IMAGE_DEVICE))
    images_engine.create_collection(
        "Images",
        [{"img": i, "label": f"type{i % 10:03d}", "bytes": 10_000} for i in range(2000)],
        object_size=400,
        indexed_attributes=["img"],
        placement="scattered",
    )
    mediator.register(StorageWrapper("media", images_engine))

    meta_engine = StorageEngine(SimClock(CostProfile(io_ms=2.0, cpu_ms_per_object=0.2)))
    meta_engine.create_collection(
        "Tags",
        [{"tagged": i * 97 % 2000, "tag": f"tag{i % 5}"} for i in range(100)],
        object_size=24,
        indexed_attributes=["tagged"],
    )
    mediator.register(StorageWrapper("meta", meta_engine))
    return mediator


@pytest.fixture(scope="module")
def media():
    return build_media_federation()


def bindjoin_plan(media, tag="tag0") -> BindJoin:
    outer = (
        scan("Tags").where_eq("tag", tag).submit_to("meta").build()
    )
    return BindJoin(
        outer=outer,
        outer_attribute=attr("tagged", "Tags"),
        inner_collection="Images",
        inner_attribute=attr("img", "Images"),
        wrapper="media",
    )


class TestNode:
    def test_children_is_outer_only(self, media):
        node = bindjoin_plan(media)
        assert len(node.children) == 1

    def test_base_collections_include_inner(self, media):
        node = bindjoin_plan(media)
        assert node.base_collections() == {"Tags", "Images"}

    def test_validation_rejects_bindjoin_inside_submit(self, media):
        node = Submit(bindjoin_plan(media), "media")
        with pytest.raises(PlanError, match="bindjoin inside a submit"):
            validate_plan(node)

    def test_bad_batch_size(self):
        with pytest.raises(PlanError):
            BindJoin(
                Scan("Tags"), attr("tagged"), "Images", attr("img"), "media",
                batch_size=0,
            )


class TestExecution:
    def test_bindjoin_answers_match_hash_join(self, media):
        bind = bindjoin_plan(media)
        classic = (
            scan("Tags")
            .where_eq("tag", "tag0")
            .submit_to("meta")
            .join(scan("Images").submit_to("media"), "tagged", "img")
            .build()
        )
        bind_rows = media.executor.execute(bind).rows
        classic_rows = media.executor.execute(classic).rows
        key = lambda r: (r["tagged"], r["label"])
        assert sorted(map(key, bind_rows)) == sorted(map(key, classic_rows))
        assert len(bind_rows) == 20  # 100 tags / 5 values

    def test_bindjoin_is_actually_cheaper(self, media):
        bind = bindjoin_plan(media, "tag1")
        classic = (
            scan("Tags")
            .where_eq("tag", "tag1")
            .submit_to("meta")
            .join(scan("Images").submit_to("media"), "tagged", "img")
            .build()
        )
        bind_ms = media.executor.execute(bind).total_time_ms
        classic_ms = media.executor.execute(classic).total_time_ms
        # Probing 20 keys beats producing 2000 images at 80 ms each.
        assert bind_ms * 10 < classic_ms

    def test_batching_respected(self, media):
        node = bindjoin_plan(media, "tag2")
        node.batch_size = 5
        start_messages = media.executor.clock.stats.messages
        media.executor.execute(node)
        messages = media.executor.clock.stats.messages - start_messages
        # 20 distinct keys / 5 per batch = 4 probe batches (2 msgs each),
        # plus the outer submit's 2 messages.
        assert messages == 2 + 4 * 2

    def test_duplicate_outer_keys_probe_once(self, media):
        # All 100 tag rows (keys repeat? they don't here) — use a plan with
        # duplicated keys by unioning the outer with itself.
        outer = (
            scan("Tags").where_eq("tag", "tag3").submit_to("meta").build()
        )
        doubled = outer  # same 20 keys; simpler: two bindjoin runs
        node = BindJoin(
            outer=doubled,
            outer_attribute=attr("tagged", "Tags"),
            inner_collection="Images",
            inner_attribute=attr("img", "Images"),
            wrapper="media",
            batch_size=50,
        )
        start = media.executor.clock.stats.messages
        media.executor.execute(node)
        assert media.executor.clock.stats.messages - start == 4  # 1 batch


class TestInterpreterKeyProbes:
    def test_or_chain_uses_index(self, media):
        engine = media.catalog.wrapper("media").engine
        predicate = Or(Or(eq("img", 3), eq("img", 900)), eq("img", 1500))
        plan = Select(Scan("Images"), predicate)
        start_pages = engine.clock.stats.page_reads
        rows = media.catalog.wrapper("media").execute(plan).rows
        pages = engine.clock.stats.page_reads - start_pages
        assert sorted(r["img"] for r in rows) == [3, 900, 1500]
        assert pages <= 3  # index lookups, not a full scan

    def test_mixed_attribute_or_falls_back_to_scan(self, media):
        engine = media.catalog.wrapper("media").engine
        predicate = Or(eq("img", 3), eq("label", "type001"))
        plan = Select(Scan("Images"), predicate)
        rows = media.catalog.wrapper("media").execute(plan).rows
        assert len(rows) == 1 + 200 - (1 if 3 % 10 == 1 else 0)


class TestOptimizerChoice:
    def test_optimizer_picks_bindjoin_when_profitable(self, media):
        optimized = media.plan(
            "SELECT * FROM Tags, Images "
            "WHERE Tags.tagged = Images.img AND Tags.tag = 'tag0'"
        )
        assert any(
            isinstance(n, BindJoin) for n in optimized.plan.walk()
        ), optimized.estimate.explain()

    def test_bindjoin_disabled_by_option(self, media):
        media.optimizer.options = OptimizerOptions(use_bind_join=False)
        try:
            optimized = media.plan(
                "SELECT * FROM Tags, Images "
                "WHERE Tags.tagged = Images.img AND Tags.tag = 'tag0'"
            )
            assert not any(isinstance(n, BindJoin) for n in optimized.plan.walk())
        finally:
            media.optimizer.options = OptimizerOptions()

    def test_end_to_end_query_through_bindjoin(self, media):
        result = media.query(
            "SELECT * FROM Tags, Images "
            "WHERE Tags.tagged = Images.img AND Tags.tag = 'tag4'"
        )
        assert result.count == 20
        assert all(r["tagged"] == r["img"] for r in result.rows)

    def test_estimate_in_right_ballpark(self, media):
        result = media.query(
            "SELECT * FROM Tags, Images "
            "WHERE Tags.tagged = Images.img AND Tags.tag = 'tag2'"
        )
        assert result.estimated_ms == pytest.approx(result.elapsed_ms, rel=0.6)
