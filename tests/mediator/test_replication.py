"""Replicated sources: catalog replica sets, cost-based selection,
mid-query failover, and hedged submits."""

import pytest

from repro.algebra.builders import scan
from repro.algebra.logical import Submit, clone_plan
from repro.errors import (
    RegistrationError,
    SubmitFailedError,
    UnknownCollectionError,
)
from repro.mediator.calibration import CoefficientKey
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import (
    BreakerPolicy,
    HedgePolicy,
    ReplicaStats,
    ResilienceOptions,
    RetryPolicy,
)
from repro.obs import ObservabilityOptions
from repro.sources.relationaldb import RelationalDatabase
from repro.wrappers import RelationalWrapper
from repro.wrappers.faults import FaultInjector, FaultProfile

NO_BACKOFF = RetryPolicy(max_attempts=2, backoff_base_ms=0.0)


def sales_wrapper(name="sales", rows=50):
    db = RelationalDatabase()
    db.create_table(
        "Suppliers",
        [
            {"sid": i, "partType": f"type{i % 10:03d}", "city": f"city{i % 5}"}
            for i in range(rows)
        ],
        row_size=40,
        indexed_columns=["sid"],
    )
    return RelationalWrapper(name, db)


def files_wrapper(name="files"):
    db = RelationalDatabase()
    db.create_table(
        "AuditLog",
        [{"entry": i, "severity": i % 3} for i in range(30)],
        row_size=16,
    )
    return RelationalWrapper(name, db)


def build_replicated(
    resilience=None,
    primary_profile=None,
    replica_profile=None,
    observability=None,
):
    """A sales wrapper with one replica, both behind fault injectors."""
    mediator = Mediator(
        executor_options=ExecutorOptions(resilience=resilience),
        observability=observability,
    )
    primary = FaultInjector(
        sales_wrapper("sales"), primary_profile or FaultProfile()
    )
    replica = FaultInjector(
        sales_wrapper("sales_b"), replica_profile or FaultProfile()
    )
    mediator.register(primary)
    mediator.register_replica(replica, of="sales")
    return mediator, primary, replica


def suppliers_plan():
    return scan("Suppliers").submit_to("sales").build()


def bound_submits(result):
    return [
        node for node in result.plan.walk() if isinstance(node, Submit)
    ]


class TestCatalogReplicaSets:
    def test_members_are_primary_first_and_resolve_from_any_member(self):
        mediator, _, _ = build_replicated()
        catalog = mediator.catalog
        assert catalog.has_replicas()
        assert catalog.replica_members("sales") == ("sales", "sales_b")
        assert catalog.replica_members("sales_b") == ("sales", "sales_b")
        assert catalog.replica_primary("sales_b") == "sales"
        assert catalog.replicas_of("sales") == ("sales_b",)
        # Unreplicated wrappers are their own 1-member set.
        assert catalog.replica_members("nowhere") == ("nowhere",)

    def test_registration_bumps_catalog_version(self):
        mediator = Mediator()
        mediator.register(sales_wrapper("sales"))
        before = mediator.catalog.version
        mediator.register_replica(sales_wrapper("sales_b"), of="sales")
        assert mediator.catalog.version > before

    def test_replica_must_serve_primary_collections(self):
        mediator = Mediator()
        mediator.register(sales_wrapper("sales"))
        with pytest.raises(RegistrationError, match="Suppliers"):
            mediator.register_replica(files_wrapper("sales_b"), of="sales")

    def test_replica_of_unknown_primary_rejected(self):
        mediator = Mediator()
        with pytest.raises(UnknownCollectionError):
            mediator.register_replica(sales_wrapper("sales_b"), of="sales")

    def test_replica_name_collision_rejected(self):
        mediator, _, _ = build_replicated()
        with pytest.raises(RegistrationError, match="already registered"):
            mediator.register_replica(sales_wrapper("sales_b"), of="sales")

    def test_nested_and_double_membership_rejected(self):
        mediator, _, _ = build_replicated()
        mediator.register(files_wrapper("files"))
        # A replica cannot itself be replicated...
        with pytest.raises(UnknownCollectionError):
            mediator.catalog.add_replica("sales_b", "files")
        # ...and a member cannot join a second set.
        with pytest.raises(UnknownCollectionError):
            mediator.catalog.add_replica("files", "sales_b")

    def test_removing_replica_shrinks_set_removing_primary_dissolves_it(self):
        mediator, _, _ = build_replicated()
        catalog = mediator.catalog
        catalog.remove_wrapper("sales_b")
        assert not catalog.has_replicas()
        assert catalog.replica_members("sales") == ("sales",)

        mediator2, _, _ = build_replicated()
        mediator2.catalog.remove_wrapper("sales")
        assert not mediator2.catalog.has_replicas()
        assert mediator2.catalog.replica_members("sales_b") == ("sales_b",)

    def test_describe_lists_replica_sets(self):
        mediator, _, _ = build_replicated()
        assert "sales_b" in mediator.catalog.describe()


class TestCostBasedSelection:
    def test_tie_keeps_primary(self):
        mediator, _, _ = build_replicated()
        result = mediator.plan("SELECT sid FROM Suppliers WHERE sid < 5")
        assert [s.wrapper for s in bound_submits(result)] == ["sales"]

    def test_cheaper_replica_wins_and_is_tagged_in_provenance(self):
        mediator, _, _ = build_replicated()
        # Calibration makes the replica's predictions half the primary's.
        mediator.apply_calibration(
            {CoefficientKey("sales_b", None, "TotalTime"): 0.5}
        )
        result = mediator.plan("SELECT sid FROM Suppliers WHERE sid < 5")
        submits = bound_submits(result)
        assert [s.wrapper for s in submits] == ["sales_b"]
        provenance = result.estimate.nodes[submits[0].node_id].provenance
        assert provenance["TotalTime"].endswith("| replica sales_b")

    def test_health_view_excludes_open_breaker_members(self):
        mediator, _, _ = build_replicated()
        mediator.apply_calibration(
            {CoefficientKey("sales_b", None, "TotalTime"): 0.5}
        )
        mediator.optimizer.health_view = lambda: ["sales_b"]
        result = mediator.plan("SELECT sid FROM Suppliers WHERE sid < 5")
        assert [s.wrapper for s in bound_submits(result)] == ["sales"]

    def test_all_members_down_falls_back_to_full_set(self):
        mediator, _, _ = build_replicated()
        mediator.optimizer.health_view = lambda: ["sales", "sales_b"]
        result = mediator.plan("SELECT sid FROM Suppliers WHERE sid < 5")
        # Costing proceeds over every member; runtime failover decides.
        assert [s.wrapper for s in bound_submits(result)] == ["sales"]

    def test_unreplicated_sources_keep_untagged_provenance(self):
        mediator, _, _ = build_replicated()
        mediator.register(files_wrapper("files"))
        result = mediator.plan("SELECT * FROM AuditLog")
        submits = bound_submits(result)
        provenance = result.estimate.nodes[submits[0].node_id].provenance
        assert "| replica" not in provenance.get("TotalTime", "")

    def test_rank_replicas_orders_cheapest_first(self):
        mediator, _, _ = build_replicated()
        mediator.apply_calibration(
            {CoefficientKey("sales_b", None, "TotalTime"): 0.5}
        )
        submit = suppliers_plan()
        assert isinstance(submit, Submit)
        ranked = mediator.optimizer.rank_replicas(
            submit, ("sales", "sales_b")
        )
        assert ranked == ["sales_b", "sales"]

    def test_executed_answer_matches_unreplicated_answer(self):
        mediator, _, _ = build_replicated()
        mediator.apply_calibration(
            {CoefficientKey("sales_b", None, "TotalTime"): 0.5}
        )
        plain = Mediator()
        plain.register(sales_wrapper("sales"))
        sql = "SELECT sid FROM Suppliers WHERE sid < 20"
        assert mediator.query(sql).rows == plain.query(sql).rows


class TestCloneplan:
    def test_clone_has_fresh_node_ids_and_equal_shape(self):
        plan = (
            scan("Suppliers").where_eq("sid", 3).submit_to("sales").build()
        )
        clone = clone_plan(plan)
        assert clone.describe() == plan.describe()
        original_ids = {node.node_id for node in plan.walk()}
        clone_ids = {node.node_id for node in clone.walk()}
        assert not original_ids & clone_ids


class TestFailover:
    def breaker_resilience(self, mode="strict", hedge=None):
        return ResilienceOptions(
            retry=NO_BACKOFF,
            breaker=BreakerPolicy(failure_threshold=2, cooldown_ms=1e9),
            mode=mode,
            hedge=hedge,
        )

    def test_dead_primary_fails_over_to_replica(self):
        mediator, _, _ = build_replicated(
            resilience=self.breaker_resilience(),
            primary_profile=FaultProfile(unavailable=True),
        )
        scheduler = mediator.executor.scheduler
        outcome = scheduler.dispatch_one(suppliers_plan())
        assert not outcome.failed
        assert outcome.submit.wrapper == "sales_b"
        assert outcome.result.count == 50
        assert outcome.result.fault_tainted
        assert scheduler.replica_stats.failovers == {"sales_b": 1}
        assert scheduler.replica_stats.selected == {"sales_b": 1}

    def test_rescued_submit_shares_the_planned_child_node(self):
        mediator, _, _ = build_replicated(
            resilience=self.breaker_resilience(),
            primary_profile=FaultProfile(unavailable=True),
        )
        submit = suppliers_plan()
        outcome = mediator.executor.scheduler.dispatch_one(submit)
        # Drift/profile joins key on the planned child's node id.
        assert outcome.submit.child is submit.child

    def test_attempt_chain_spans_both_members(self):
        mediator, _, _ = build_replicated(
            resilience=self.breaker_resilience(),
            primary_profile=FaultProfile(unavailable=True),
        )
        outcome = mediator.executor.scheduler.dispatch_one(suppliers_plan())
        # 2 failed primary attempts + 1 successful replica attempt.
        assert outcome.attempts == 3

    def test_open_breaker_fast_fail_fails_over_immediately(self):
        mediator, primary, _ = build_replicated(
            resilience=self.breaker_resilience(),
            primary_profile=FaultProfile(unavailable=True),
        )
        scheduler = mediator.executor.scheduler
        scheduler.dispatch_one(suppliers_plan())  # trips the primary
        executions_before = primary.log.executions
        outcome = scheduler.dispatch_one(suppliers_plan())
        assert not outcome.failed
        assert outcome.submit.wrapper == "sales_b"
        # The open breaker spared the primary any further attempts.
        assert primary.log.executions == executions_before

    def test_exhausted_set_reports_replicas_tried_strict(self):
        mediator, _, _ = build_replicated(
            resilience=self.breaker_resilience(mode="strict"),
            primary_profile=FaultProfile(unavailable=True),
            replica_profile=FaultProfile(unavailable=True),
        )
        with pytest.raises(SubmitFailedError) as exc:
            mediator.executor.execute(suppliers_plan())
        failure = exc.value.failure
        assert failure.wrapper == "sales"
        assert failure.replicas_tried == ("sales", "sales_b")
        assert failure.attempts == 4  # two attempts per member

    def test_exhausted_set_degrades_partial_answer_with_chain(self):
        mediator, _, _ = build_replicated(
            resilience=self.breaker_resilience(mode="partial"),
            primary_profile=FaultProfile(unavailable=True),
            replica_profile=FaultProfile(unavailable=True),
        )
        result = mediator.query("SELECT sid FROM Suppliers")
        assert result.degraded
        assert result.partial.failures[0].replicas_tried == (
            "sales",
            "sales_b",
        )

    def test_failed_submit_keeps_plan_node_identity(self):
        mediator, _, _ = build_replicated(
            resilience=self.breaker_resilience(mode="partial"),
            primary_profile=FaultProfile(unavailable=True),
            replica_profile=FaultProfile(unavailable=True),
        )
        submit = suppliers_plan()
        outcome = mediator.executor.scheduler.dispatch_one(submit)
        assert outcome.failed
        assert outcome.failure.node_id == submit.node_id

    def test_submit_log_records_the_serving_wrapper(self):
        mediator, _, _ = build_replicated(
            resilience=self.breaker_resilience(),
            primary_profile=FaultProfile(unavailable=True),
        )
        execution = mediator.executor.execute(suppliers_plan())
        assert [s.wrapper for s, _ in execution.submit_log] == ["sales_b"]
        assert execution.submit_log[0][1].fault_tainted

    def test_execution_carries_replication_delta(self):
        mediator, _, _ = build_replicated(
            resilience=self.breaker_resilience(),
            primary_profile=FaultProfile(unavailable=True),
        )
        execution = mediator.executor.execute(suppliers_plan())
        assert execution.replication is not None
        assert execution.replication.failovers == {"sales_b": 1}
        # Deltas are per-execution: the second rescue (breaker fast-fail
        # into failover) reports 1 again, not the cumulative 2.
        second = mediator.executor.execute(suppliers_plan())
        assert second.replication.failovers == {"sales_b": 1}
        stats = mediator.executor.scheduler.replica_stats
        assert stats.failovers == {"sales_b": 2}

    def test_no_replicas_means_no_replication_delta(self):
        mediator = Mediator(
            executor_options=ExecutorOptions(
                resilience=self.breaker_resilience()
            )
        )
        mediator.register(sales_wrapper("sales"))
        execution = mediator.executor.execute(suppliers_plan())
        assert execution.replication is None

    def test_wave_dispatch_fails_over_too(self):
        mediator, _, _ = build_replicated(
            resilience=self.breaker_resilience(),
            primary_profile=FaultProfile(unavailable=True),
        )
        outcomes = mediator.executor.scheduler.dispatch_wave(
            [suppliers_plan(), suppliers_plan()]
        )
        assert [o.submit.wrapper for o in outcomes] == ["sales_b", "sales_b"]
        assert all(not o.failed for o in outcomes)


class TestHedgedSubmits:
    def hedge_resilience(self, delay_ms=50.0, **kwargs):
        return ResilienceOptions(
            retry=NO_BACKOFF,
            breaker=None,
            hedge=HedgePolicy(delay_ms=delay_ms, **kwargs),
        )

    def straggler(self):
        return FaultProfile(latency_multiplier=20.0, latency_probability=1.0)

    def test_backup_wins_and_only_winner_time_is_charged(self):
        raw_wait = sales_wrapper().execute(scan("Suppliers").build()).total_time_ms
        delay = 50.0
        mediator, _, _ = build_replicated(
            resilience=self.hedge_resilience(delay_ms=delay),
            primary_profile=self.straggler(),
        )
        scheduler = mediator.executor.scheduler
        clock = mediator.executor.clock
        before = clock.now_ms
        outcome = scheduler.dispatch_one(suppliers_plan())
        assert outcome.submit.wrapper == "sales_b"
        assert outcome.result.count == 50
        assert outcome.result.fault_tainted
        stats = scheduler.replica_stats
        assert stats.hedges_launched == {"sales_b": 1}
        assert stats.hedges_won == {"sales_b": 1}
        # Wrapper-side charge is threshold + backup wait, not the
        # straggling primary's 20x wait; the loser's remainder lands in
        # hedge_cancelled_ms only.
        straggle_wait = 20.0 * raw_wait
        winner_wait = delay + raw_wait
        assert stats.hedge_cancelled_ms == pytest.approx(
            straggle_wait - winner_wait
        )
        elapsed = clock.now_ms - before
        assert elapsed < straggle_wait

    def test_fast_primary_never_hedges(self):
        mediator, _, replica = build_replicated(
            resilience=self.hedge_resilience(delay_ms=1e6)
        )
        scheduler = mediator.executor.scheduler
        outcome = scheduler.dispatch_one(suppliers_plan())
        assert outcome.submit.wrapper == "sales"
        stats = scheduler.replica_stats
        assert stats.selected == {"sales": 1}
        assert stats.hedges_launched == {}
        assert replica.log.executions == 0

    def test_primary_wins_when_backup_is_slower(self):
        # Both members straggle: the hedge fires but cannot win, so the
        # primary's full wait is charged and the backup work cancelled.
        mediator, _, _ = build_replicated(
            resilience=self.hedge_resilience(delay_ms=50.0),
            primary_profile=self.straggler(),
            replica_profile=self.straggler(),
        )
        scheduler = mediator.executor.scheduler
        outcome = scheduler.dispatch_one(suppliers_plan())
        assert outcome.submit.wrapper == "sales"
        stats = scheduler.replica_stats
        assert stats.hedges_launched == {"sales_b": 1}
        assert stats.hedges_won == {}
        assert stats.hedge_cancelled_ms > 0

    def test_hedge_needs_a_healthy_replica(self):
        mediator, _, replica = build_replicated(
            resilience=ResilienceOptions(
                retry=NO_BACKOFF,
                breaker=BreakerPolicy(failure_threshold=1, cooldown_ms=1e9),
                hedge=HedgePolicy(delay_ms=50.0),
            ),
            primary_profile=self.straggler(),
            replica_profile=FaultProfile(unavailable=True),
        )
        scheduler = mediator.executor.scheduler
        # Trip the replica's breaker first (failover attempt fails).
        dead = FaultProfile(unavailable=True)
        replica.set_profile(dead)
        scheduler.dispatch_one(
            scan("Suppliers").where_eq("sid", 1).submit_to("sales_b").build()
        )
        assert scheduler.breakers["sales_b"].state != "closed"
        executions_before = replica.log.executions
        outcome = scheduler.dispatch_one(suppliers_plan())
        # No healthy candidate: the straggling primary answers unhedged.
        assert outcome.submit.wrapper == "sales"
        assert replica.log.executions == executions_before
        assert scheduler.replica_stats.hedges_launched == {}

    def test_percentile_mode_learns_the_trigger(self):
        policy = HedgePolicy(
            mode="percentile",
            delay_ms=1e9,
            percentile=90.0,
            min_samples=4,
            window=16,
        )
        # Below min_samples: the fixed fallback.
        assert policy.threshold_ms([10.0, 20.0]) == 1e9
        history = [10.0, 20.0, 30.0, 40.0, 1_000.0]
        assert policy.threshold_ms(history) == 1_000.0
        assert HedgePolicy(
            mode="percentile", percentile=50.0, min_samples=4
        ).threshold_ms(history) == 30.0

    def test_hedge_policy_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(mode="adaptive")
        with pytest.raises(ValueError):
            HedgePolicy(delay_ms=-1.0)
        with pytest.raises(ValueError):
            HedgePolicy(percentile=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_samples=0)
        with pytest.raises(ValueError):
            HedgePolicy(min_samples=10, window=5)


class TestReplicaStats:
    def test_copy_and_minus_delta(self):
        stats = ReplicaStats()
        stats._inc(stats.selected, "a")
        stats.hedge_cancelled_ms = 10.0
        before = stats.copy()
        stats._inc(stats.selected, "a")
        stats._inc(stats.failovers, "b")
        stats.hedge_cancelled_ms = 25.0
        delta = stats.minus(before)
        assert delta.selected == {"a": 1}
        assert delta.failovers == {"b": 1}
        assert delta.hedge_cancelled_ms == 15.0
        assert not delta.empty
        assert stats.minus(stats.copy()).empty

    def test_totals(self):
        stats = ReplicaStats()
        stats._inc(stats.failovers, "a", 2)
        stats._inc(stats.hedges_launched, "b")
        stats._inc(stats.hedges_won, "b")
        assert stats.total_failovers == 2
        assert stats.total_hedges_launched == 1
        assert stats.total_hedges_won == 1


class TestReplicationTelemetry:
    def observability(self):
        return ObservabilityOptions(enabled=True, profile=True)

    def test_metrics_count_selection_failover_and_hedges(self):
        mediator, _, _ = build_replicated(
            resilience=ResilienceOptions(
                retry=NO_BACKOFF,
                breaker=BreakerPolicy(failure_threshold=2, cooldown_ms=1e9),
                mode="partial",
            ),
            primary_profile=FaultProfile(unavailable=True),
            observability=self.observability(),
        )
        mediator.query("SELECT sid FROM Suppliers")
        rendered = mediator.telemetry.metrics.expose_text()
        assert 'repro_replica_selected_total{wrapper="sales_b"} 1' in rendered
        assert 'repro_failover_total{wrapper="sales_b"} 1' in rendered

    def test_profile_carries_replication_rows_and_span_events(self):
        mediator, _, _ = build_replicated(
            resilience=ResilienceOptions(
                retry=NO_BACKOFF,
                breaker=BreakerPolicy(failure_threshold=2, cooldown_ms=1e9),
                mode="partial",
            ),
            primary_profile=FaultProfile(unavailable=True),
            observability=self.observability(),
        )
        result = mediator.query("SELECT sid FROM Suppliers")
        assert result.profile is not None
        rows = {r["wrapper"]: r for r in result.profile.replication}
        assert rows["sales_b"]["failovers"] == 1
        rendered = result.trace.render()
        assert "failover.rescued" in rendered
        assert result.profile.from_dict(result.profile.to_dict()).replication

    def test_hedge_metrics_render(self):
        mediator, _, _ = build_replicated(
            resilience=ResilienceOptions(
                retry=NO_BACKOFF,
                breaker=None,
                hedge=HedgePolicy(delay_ms=50.0),
            ),
            primary_profile=FaultProfile(
                latency_multiplier=20.0, latency_probability=1.0
            ),
            observability=self.observability(),
        )
        mediator.query("SELECT sid FROM Suppliers")
        rendered = mediator.telemetry.metrics.expose_text()
        assert 'repro_hedge_launched_total{wrapper="sales_b"} 1' in rendered
        assert 'repro_hedge_won_total{wrapper="sales_b"} 1' in rendered
        assert "repro_hedge_cancelled_ms_total" in rendered
