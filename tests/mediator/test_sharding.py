"""Sharded federations: partition schemes, scatter planning, pruning,
execution, degradation, and catalog lifecycle."""

import pytest

from repro.algebra.logical import (
    Scan,
    Scatter,
    Submit,
    Union,
    strip_submits,
    validate_plan,
)
from repro.errors import (
    PlanError,
    RegistrationError,
    UnknownCollectionError,
)
from repro.mediator.catalog import (
    PARTITIONED_WRAPPER,
    PartitionScheme,
    Shard,
)
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import ResilienceOptions
from repro.sources.relationaldb import RelationalDatabase
from repro.wrappers import RelationalWrapper
from repro.wrappers.faults import FaultInjector, FaultProfile

ROWS = 200


def order_rows():
    return [
        {"oid": i, "supplier": i % 50, "qty": (i * 7) % 100}
        for i in range(ROWS)
    ]


def scheme_for(shards, kind="hash", boundaries=()):
    return PartitionScheme(
        collection="Orders",
        shard_key="oid",
        shards=tuple(
            Shard(collection=f"Orders#{i}", wrapper=f"node{i}")
            for i in range(shards)
        ),
        kind=kind,
        boundaries=boundaries,
    )


def build_federation(
    shards=4, kind="hash", boundaries=(), faulty=(), resilience=None
):
    """One wrapper per shard; rows placed exactly where the scheme routes
    them, so pruning is sound by construction."""
    scheme = scheme_for(shards, kind, boundaries)
    mediator = Mediator(
        executor_options=ExecutorOptions(resilience=resilience)
    )
    for index in range(shards):
        db = RelationalDatabase()
        db.create_table(
            f"Orders#{index}",
            [row for row in order_rows() if scheme.shard_index(row["oid"]) == index],
            row_size=32,
            indexed_columns=["oid"],
        )
        wrapper = RelationalWrapper(f"node{index}", db)
        if f"node{index}" in faulty:
            wrapper = FaultInjector(
                wrapper, FaultProfile(error_probability=1.0)
            )
        mediator.register(wrapper)
    mediator.register_partitioned(scheme)
    return mediator


def build_unsharded():
    mediator = Mediator()
    db = RelationalDatabase()
    db.create_table(
        "Orders", order_rows(), row_size=32, indexed_columns=["oid"]
    )
    mediator.register(RelationalWrapper("node0", db))
    return mediator


def scatter_of(plan):
    scatters = [n for n in plan.walk() if isinstance(n, Scatter)]
    assert len(scatters) == 1
    return scatters[0]


def sort_key(row):
    return row["oid"]


class TestPartitionScheme:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError, match=">= 1 shard"):
            PartitionScheme("Orders", "oid", shards=())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown partition kind"):
            scheme_for(2, kind="round-robin")

    def test_range_boundary_count_enforced(self):
        with pytest.raises(ValueError, match="needs 3 boundaries"):
            scheme_for(4, kind="range", boundaries=(50,))

    def test_range_boundaries_must_ascend(self):
        with pytest.raises(ValueError, match="ascending"):
            scheme_for(3, kind="range", boundaries=(100, 50))

    def test_hash_takes_no_boundaries(self):
        with pytest.raises(ValueError, match="no boundaries"):
            scheme_for(2, kind="hash", boundaries=(50,))

    def test_duplicate_shard_collections_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PartitionScheme(
                "Orders",
                "oid",
                shards=(Shard("X", "w1"), Shard("X", "w2")),
            )

    def test_integer_hash_routing_is_modulo(self):
        scheme = scheme_for(4)
        for value in (0, 1, 123, 10**9):
            assert scheme.shard_index(value) == value % 4

    def test_non_integer_routing_is_deterministic(self):
        # Builtin ``hash`` is salted per process; routing must not be.
        for value in ("alice", 3.5, True, None):
            indices = {scheme_for(4).shard_index(value) for _ in range(3)}
            assert len(indices) == 1
            assert 0 <= indices.pop() < 4

    def test_range_routing_respects_boundaries(self):
        scheme = scheme_for(3, kind="range", boundaries=(50, 100))
        assert scheme.shard_index(0) == 0
        assert scheme.shard_index(49) == 0
        assert scheme.shard_index(50) == 1
        assert scheme.shard_index(99) == 1
        assert scheme.shard_index(100) == 2

    def test_range_pruning_for_intervals(self):
        scheme = scheme_for(3, kind="range", boundaries=(50, 100))
        assert scheme.shards_for_range(None, 75) == (0, 1)
        assert scheme.shards_for_range(120, None) == (2,)
        assert scheme.shards_for_range(None, None) == (0, 1, 2)

    def test_hash_cannot_prune_ranges(self):
        assert scheme_for(4).shards_for_range(10, 20) == (0, 1, 2, 3)


class TestScatterPlanning:
    def test_oblivious_predicate_scatters_to_all_shards(self):
        mediator = build_federation(shards=4)
        optimized = mediator.plan("SELECT * FROM Orders WHERE qty > 90")
        scatter = scatter_of(optimized.plan)
        assert len(scatter.branches) == 4
        assert scatter.total_shards == 4

    def test_shard_key_equality_prunes_to_owner(self):
        mediator = build_federation(shards=4)
        optimized = mediator.plan("SELECT * FROM Orders WHERE oid = 123")
        scatter = scatter_of(optimized.plan)
        assert len(scatter.branches) == 1
        assert scatter.branches[0].wrapper == f"node{123 % 4}"

    def test_range_predicate_prunes_range_partition(self):
        mediator = build_federation(
            shards=4, kind="range", boundaries=(50, 100, 150)
        )
        optimized = mediator.plan("SELECT * FROM Orders WHERE oid < 40")
        scatter = scatter_of(optimized.plan)
        assert [b.wrapper for b in scatter.branches] == ["node0"]

    def test_pruned_lookup_estimate_beats_full_scatter(self):
        mediator = build_federation(shards=4)
        pruned = mediator.plan("SELECT * FROM Orders WHERE oid = 123")
        full = mediator.plan("SELECT * FROM Orders WHERE qty > 90")
        assert pruned.estimated_total_ms < full.estimated_total_ms

    def test_contradictory_key_predicates_yield_empty_answer(self):
        mediator = build_federation(shards=4)
        result = mediator.query(
            "SELECT * FROM Orders WHERE oid = 5 AND oid = 7"
        )
        assert result.rows == []
        assert len(scatter_of(result.plan).branches) == 1


class TestScatterExecution:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM Orders WHERE qty > 90",
            "SELECT * FROM Orders WHERE oid = 123",
            "SELECT * FROM Orders",
        ],
    )
    @pytest.mark.parametrize("kind", ["hash", "range"])
    def test_gather_matches_unsharded_answer(self, sql, kind):
        boundaries = (50, 100, 150) if kind == "range" else ()
        sharded = build_federation(shards=4, kind=kind, boundaries=boundaries)
        assert sorted(sharded.query(sql).rows, key=sort_key) == sorted(
            build_unsharded().query(sql).rows, key=sort_key
        )

    def test_dead_shard_yields_partial_answer(self):
        mediator = build_federation(
            shards=4,
            faulty=("node2",),
            resilience=ResilienceOptions(mode="partial"),
        )
        result = mediator.query("SELECT * FROM Orders")
        assert result.degraded
        partial = result.partial
        assert partial.missing_wrappers == ["node2"]
        assert partial.missing_collections == ["Orders#2"]
        assert partial.dropped_union_branches == 1
        assert partial.sound_lower_bound is True
        survivors = [r for r in order_rows() if r["oid"] % 4 != 2]
        assert sorted(result.rows, key=sort_key) == sorted(
            survivors, key=sort_key
        )


class TestCatalogLifecycle:
    def test_register_partitioned_bumps_catalog_version(self):
        mediator = build_federation(shards=2)
        before = mediator.catalog.version
        mediator.register_partitioned(scheme_for(2))
        assert mediator.catalog.version > before

    def test_aggregated_statistics(self):
        mediator = build_federation(shards=4)
        stats = mediator.catalog.statistics.get("Orders")
        assert stats.count_object == ROWS
        # Shards hold disjoint key sets: the shard key's distinct sums.
        assert stats.attributes["oid"].count_distinct == ROWS

    def test_logical_entry_uses_partitioned_sentinel(self):
        mediator = build_federation(shards=4)
        assert mediator.catalog.is_partitioned("Orders")
        assert mediator.catalog.wrapper_for("Orders") == PARTITIONED_WRAPPER

    def test_unregistered_shard_collection_rejected(self):
        mediator = Mediator()
        with pytest.raises(RegistrationError, match="not registered"):
            mediator.register_partitioned(scheme_for(2))

    def test_shard_wrapper_must_own_the_shard_collection(self):
        mediator = build_federation(shards=2)
        stolen = PartitionScheme(
            "Other",
            "oid",
            shards=(Shard("Orders#0", "node1"),),
        )
        with pytest.raises(UnknownCollectionError, match="not registered"):
            mediator.catalog.add_partition(stolen)

    def test_remove_wrapper_drops_dependent_scheme(self):
        mediator = build_federation(shards=4)
        mediator.catalog.remove_wrapper("node2")
        assert not mediator.catalog.is_partitioned("Orders")
        assert "Orders" not in mediator.catalog

    def test_remove_partition_keeps_physical_shards(self):
        mediator = build_federation(shards=2)
        mediator.catalog.remove_partition("Orders")
        assert not mediator.catalog.is_partitioned("Orders")
        assert "Orders#0" in mediator.catalog
        assert "Orders#1" in mediator.catalog


class TestScatterAlgebra:
    def test_strip_submits_collapses_to_union_chain(self):
        plan = Scatter(
            [Submit(Scan("A"), "w1"), Submit(Scan("B"), "w2")],
            collection="L",
            shard_key="k",
            total_shards=2,
        )
        stripped = strip_submits(plan)
        assert isinstance(stripped, Union)
        assert all(
            n.operator_name not in ("submit", "scatter")
            for n in stripped.walk()
        )

    def test_scatter_inside_submit_rejected(self):
        scatter = Scatter(
            [Submit(Scan("A"), "w1")],
            collection="L",
            shard_key="k",
            total_shards=1,
        )
        with pytest.raises(PlanError, match="scatter inside a submit"):
            validate_plan(Submit(scatter, "outer"))


class TestResilienceUnderScatter:
    """Satellite: a scatter wave where one shard dies outright while a
    sibling shard retries through a transient fault — partial-answer
    bookkeeping, breaker counters, and wave makespan accounting all stay
    coherent."""

    def build(self):
        from repro.errors import TransientSourceError
        from repro.mediator.resilience import (
            BreakerPolicy,
            RetryPolicy,
        )
        from repro.wrappers.base import Wrapper

        class FailsOnce(Wrapper):
            def __init__(self, inner):
                super().__init__(inner.name, inner.capabilities)
                self.inner = inner
                self.remaining_failures = 1

            def export_cost_info(self):
                return self.inner.export_cost_info()

            def execute(self, plan):
                if self.remaining_failures > 0:
                    self.remaining_failures -= 1
                    raise TransientSourceError("blip", elapsed_ms=20.0)
                return self.inner.execute(plan)

        scheme = scheme_for(4)
        mediator = Mediator(
            executor_options=ExecutorOptions(
                resilience=ResilienceOptions(
                    retry=RetryPolicy(max_attempts=2, backoff_base_ms=10.0),
                    breaker=BreakerPolicy(
                        failure_threshold=2, cooldown_ms=1e9
                    ),
                    mode="partial",
                ),
                parallel_submits=True,
            )
        )
        for index in range(4):
            db = RelationalDatabase()
            db.create_table(
                f"Orders#{index}",
                [
                    row
                    for row in order_rows()
                    if scheme.shard_index(row["oid"]) == index
                ],
                row_size=32,
                indexed_columns=["oid"],
            )
            wrapper = RelationalWrapper(f"node{index}", db)
            if index == 2:  # this shard is dead for the whole wave
                wrapper = FaultInjector(
                    wrapper, FaultProfile(unavailable=True)
                )
            elif index == 1:  # this sibling blips once, then recovers
                wrapper = FailsOnce(wrapper)
            mediator.register(wrapper)
        mediator.register_partitioned(scheme)
        return mediator

    def run(self):
        mediator = self.build()
        result = mediator.query("SELECT * FROM Orders WHERE qty >= 0")
        return mediator, result

    def test_partial_answer_books_only_the_dead_shard(self):
        mediator, result = self.run()
        scheme = scheme_for(4)
        partial = result.partial
        assert partial is not None
        assert partial.missing_wrappers == ["node2"]
        assert partial.missing_collections == ["Orders#2"]
        assert partial.dropped_union_branches == 1
        assert partial.failures[0].attempts == 2  # full budget burned
        # The retried sibling's rows made it: the answer is every row
        # except shard 2's, nothing more and nothing less.
        expected = sorted(
            (
                row
                for row in order_rows()
                if scheme.shard_index(row["oid"]) != 2
            ),
            key=sort_key,
        )
        assert sorted(result.rows, key=sort_key) == expected

    def test_breaker_and_retry_counters_split_by_wrapper(self):
        mediator, _ = self.run()
        stats = mediator.executor.scheduler.resilience_stats
        assert stats.retries == {"node1": 1, "node2": 1}
        assert stats.attempt_errors == {"node1": 1, "node2": 2}
        assert stats.breaker_trips == {"node2": 1}
        assert stats.failed_submits == {"node2": 1}
        assert stats.backoff_ms == 20.0  # one backoff sleep per retry
        breakers = mediator.executor.scheduler.breakers
        assert breakers["node2"].state == "open"
        assert breakers["node1"].state == "closed"

    def test_retried_branch_is_fault_tainted_dead_branch_absent(self):
        mediator = self.build()
        planned = mediator.plan("SELECT * FROM Orders WHERE qty >= 0")
        execution = mediator.executor.execute(planned.plan)
        by_wrapper = {
            submit.wrapper: measured
            for submit, measured in execution.submit_log
        }
        assert "node2" not in by_wrapper  # failed branches ship no rows
        assert by_wrapper["node1"].fault_tainted
        assert not by_wrapper["node0"].fault_tainted
        assert not by_wrapper["node3"].fault_tainted

    def test_wave_makespan_accounts_fault_latency(self):
        mediator, result = self.run()
        wave = mediator.executor.scheduler.last_wave
        assert wave is not None
        assert wave.branches == 4  # the dead branch still occupied a slot
        # Makespan is list-scheduled: at least the slowest branch, at
        # most the sequential sum, and the saving is their difference.
        assert 0.0 < wave.makespan_ms <= wave.sequential_ms
        assert wave.saved_ms == pytest.approx(
            wave.sequential_ms - wave.makespan_ms
        )
        assert result.parallel_saved_ms == pytest.approx(wave.saved_ms)
