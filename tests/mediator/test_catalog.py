"""Unit tests for the mediator catalog."""

import pytest

from repro.core.statistics import AttributeStats, CollectionStats
from repro.errors import UnknownAttributeError, UnknownCollectionError
from repro.mediator.catalog import MediatorCatalog


def stats(name, attrs):
    return CollectionStats.from_extent(
        name, 10, 10, attributes=[AttributeStats(a) for a in attrs]
    )


class TestCollections:
    def test_add_and_lookup(self):
        catalog = MediatorCatalog()
        catalog.add_collection("E", "w1", ("a", "b"), stats("E", ["a", "b"]))
        assert catalog.wrapper_for("E") == "w1"
        assert "E" in catalog
        assert catalog.entry("E").has_statistics

    def test_unknown_collection(self):
        with pytest.raises(UnknownCollectionError):
            MediatorCatalog().entry("nope")

    def test_collection_owned_by_other_wrapper_rejected(self):
        catalog = MediatorCatalog()
        catalog.add_collection("E", "w1")
        with pytest.raises(UnknownCollectionError):
            catalog.add_collection("E", "w2")

    def test_reregistration_same_wrapper_allowed(self):
        catalog = MediatorCatalog()
        catalog.add_collection("E", "w1", ("a",))
        catalog.add_collection("E", "w1", ("a", "b"))
        assert catalog.attributes_of("E") == ("a", "b")

    def test_attributes_fall_back_to_statistics(self):
        catalog = MediatorCatalog()
        catalog.add_collection("E", "w1", (), stats("E", ["x", "y"]))
        assert set(catalog.attributes_of("E")) == {"x", "y"}


class TestResolution:
    def make(self):
        catalog = MediatorCatalog()
        catalog.add_collection("E", "w1", ("a", "shared"))
        catalog.add_collection("F", "w2", ("b", "shared"))
        return catalog

    def test_unique_owner(self):
        catalog = self.make()
        assert catalog.resolve_attribute("a", ["E", "F"]) == "E"

    def test_ambiguous(self):
        with pytest.raises(UnknownAttributeError, match="ambiguous"):
            self.make().resolve_attribute("shared", ["E", "F"])

    def test_unknown(self):
        with pytest.raises(UnknownAttributeError):
            self.make().resolve_attribute("zzz", ["E", "F"])


class TestWrapperRemoval:
    def test_remove_wrapper_drops_collections_and_stats(self):
        catalog = MediatorCatalog()
        catalog.add_collection("E", "w1", ("a",), stats("E", ["a"]))
        catalog.add_collection("F", "w2", ("b",), stats("F", ["b"]))

        class FakeWrapper:
            name = "w1"

        catalog.add_wrapper(FakeWrapper())  # type: ignore[arg-type]
        catalog.remove_wrapper("w1")
        assert "E" not in catalog
        assert "F" in catalog
        assert "E" not in catalog.statistics

    def test_describe(self):
        catalog = MediatorCatalog()
        catalog.add_collection("E", "w1", ("a",), stats("E", ["a"]))
        text = catalog.describe()
        assert "E @ w1" in text
