"""Plan-cache correctness, above all invalidation on re-registration.

A cached plan is only as good as the statistics it was optimized under
(§2.1: re-registration refreshes statistics and cost rules).  The cache
therefore keys every entry on the catalog version, and a lookup against
a newer version must evict the entry — and, after the source has grown
enough, the freshly optimized plan must actually *differ* from the one
the cache held.
"""

import pytest

from repro.mediator.mediator import Mediator
from repro.mediator.optimizer import OptimizationResult
from repro.service import FederationService, PlanCache, ServiceOptions
from repro.sources.relationaldb import RelationalDatabase
from repro.wrappers import RelationalWrapper

JOIN_SQL = (
    "SELECT * FROM Suppliers, Orders "
    "WHERE Orders.supplier = Suppliers.sid AND Suppliers.city = 'city1'"
)


def build_sales():
    db = RelationalDatabase()
    db.create_table(
        "Suppliers",
        [{"sid": i, "city": f"city{i % 5}"} for i in range(50)],
        row_size=24,
        indexed_columns=["sid"],
    )
    db.create_table(
        "Orders",
        [{"oid": i, "supplier": i % 50, "qty": i % 100} for i in range(400)],
        row_size=32,
        indexed_columns=["oid"],
    )
    mediator = Mediator()
    wrapper = RelationalWrapper("sales", db, export_rules=True)
    mediator.register(wrapper)
    return mediator, db, wrapper


class TestPlanCacheUnit:
    def make_optimized(self, mediator):
        return mediator.plan(JOIN_SQL)

    def test_store_and_lookup(self):
        mediator, _db, _wrapper = build_sales()
        optimized = self.make_optimized(mediator)
        cache = PlanCache()
        assert cache.lookup("fp", 1) is None
        cache.store("fp", 1, optimized)
        assert cache.lookup("fp", 1) is optimized
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_version_mismatch_evicts(self):
        mediator, _db, _wrapper = build_sales()
        optimized = self.make_optimized(mediator)
        cache = PlanCache()
        cache.store("fp", 1, optimized)
        assert cache.lookup("fp", 2) is None
        assert cache.stats.invalidations == 1
        assert len(cache) == 0
        # Gone for good: even the original version misses now.
        assert cache.lookup("fp", 1) is None

    def test_capacity_eviction_is_fifo(self):
        mediator, _db, _wrapper = build_sales()
        optimized = self.make_optimized(mediator)
        cache = PlanCache(max_entries=2)
        cache.store("a", 1, optimized)
        cache.store("b", 1, optimized)
        cache.store("c", 1, optimized)
        assert cache.lookup("a", 1) is None
        assert cache.lookup("b", 1) is optimized
        assert cache.lookup("c", 1) is optimized

    def test_sql_map_is_version_guarded(self):
        cache = PlanCache()
        cache.remember_sql("SELECT 1", "fp", 1)
        assert cache.fingerprint_for_sql("SELECT 1", 1) == "fp"
        assert cache.fingerprint_for_sql("SELECT 1", 2) is None
        assert cache.stats.sql_hits == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)


class TestReregistrationInvalidation:
    """The acceptance scenario: changed statistics ⇒ evicted plan ⇒
    *different* plan."""

    def grow_suppliers(self, db):
        for i in range(50, 5000):
            db.insert("Suppliers", {"sid": i, "city": f"city{i % 5}"})

    def test_version_bump_evicts_and_replans(self):
        mediator, db, wrapper = build_sales()
        service = FederationService(
            mediator, ServiceOptions(max_concurrent_queries=1)
        )
        session = service.open_session("t")
        before = session.resolve(JOIN_SQL)
        assert session.resolve(JOIN_SQL).plan_cached

        self.grow_suppliers(db)
        mediator.register(wrapper)  # bumps catalog.version

        after = session.resolve(JOIN_SQL)
        assert not after.plan_cached
        assert service.plan_cache.stats.invalidations >= 1
        assert isinstance(after.optimized, OptimizationResult)
        # With 100x more suppliers the pushed-down join flips to a bind
        # join driven from Orders — the stale cached plan would have been
        # materially wrong, not just re-optimized.
        assert after.optimized.plan.describe() != before.optimized.plan.describe()
        assert "bindjoin" in after.optimized.plan.describe()

    def test_sql_fast_path_also_invalidated(self):
        mediator, db, wrapper = build_sales()
        service = FederationService(
            mediator, ServiceOptions(max_concurrent_queries=1)
        )
        session = service.open_session("t")
        session.resolve(JOIN_SQL)
        session.resolve(JOIN_SQL)
        sql_hits_before = service.plan_cache.stats.sql_hits
        assert sql_hits_before >= 1

        self.grow_suppliers(db)
        mediator.register(wrapper)

        # The byte-identical SQL text must be re-parsed against the new
        # catalog, not resolved through the stale text map.
        session.resolve(JOIN_SQL)
        assert service.plan_cache.stats.sql_hits == sql_hits_before

    def test_fresh_plan_is_cached_under_new_version(self):
        mediator, db, wrapper = build_sales()
        service = FederationService(
            mediator, ServiceOptions(max_concurrent_queries=1)
        )
        session = service.open_session("t")
        session.resolve(JOIN_SQL)
        self.grow_suppliers(db)
        mediator.register(wrapper)
        replanned = session.resolve(JOIN_SQL)
        assert not replanned.plan_cached
        again = session.resolve(JOIN_SQL)
        assert again.plan_cached
        assert again.optimized is replanned.optimized

    def test_query_answers_stay_correct_across_invalidation(self):
        mediator, db, wrapper = build_sales()
        service = FederationService(
            mediator, ServiceOptions(max_concurrent_queries=1)
        )
        session = service.open_session("t")
        before = service.query(session, JOIN_SQL)
        self.grow_suppliers(db)
        mediator.register(wrapper)
        after = service.query(session, JOIN_SQL)
        # 10 city1 suppliers of the original 50 → 400/50 orders each;
        # after growth, 1000 suppliers match but order keys still hit
        # sids 0..49, so the matching pairs are unchanged.
        def canonical(rows):
            return sorted(tuple(sorted(row.items())) for row in rows)

        assert len(after.rows) == len(before.rows)
        assert canonical(after.rows) == canonical(before.rows)
