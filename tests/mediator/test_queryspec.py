"""Unit tests for the normalized query representation."""

import pytest

from repro.algebra.expressions import Comparison, attr, eq
from repro.errors import QueryError
from repro.mediator.queryspec import QuerySpec


def join(left_col, left_attr, right_col, right_attr):
    return Comparison("=", attr(left_attr, left_col), attr(right_attr, right_col))


class TestValidation:
    def test_needs_collections(self):
        with pytest.raises(QueryError):
            QuerySpec(collections=[])

    def test_duplicates_rejected(self):
        with pytest.raises(QueryError):
            QuerySpec(collections=["A", "A"])

    def test_filter_on_foreign_collection_rejected(self):
        with pytest.raises(QueryError):
            QuerySpec(collections=["A"], filters={"B": [eq("x", 1)]})

    def test_join_must_be_attr_attr(self):
        with pytest.raises(QueryError):
            QuerySpec(collections=["A", "B"], joins=[eq("x", 1)])

    def test_join_must_qualify_both_sides(self):
        unqualified = Comparison("=", attr("x"), attr("y", "B"))
        with pytest.raises(QueryError):
            QuerySpec(collections=["A", "B"], joins=[unqualified])

    def test_valid_spec(self):
        spec = QuerySpec(
            collections=["A", "B"],
            filters={"A": [eq("x", 1)]},
            joins=[join("A", "x", "B", "y")],
        )
        assert spec.filters_for("A")
        assert spec.filters_for("B") == []


class TestJoinGraphHelpers:
    def make(self):
        return QuerySpec(
            collections=["A", "B", "C"],
            joins=[join("A", "x", "B", "y"), join("B", "z", "C", "w")],
        )

    def test_joins_between_direct(self):
        spec = self.make()
        found = spec.joins_between({"A"}, {"B"})
        assert len(found) == 1
        assert found[0].left.collection == "A"

    def test_joins_between_flips_orientation(self):
        spec = self.make()
        found = spec.joins_between({"B"}, {"A"})
        assert len(found) == 1
        assert found[0].left.collection == "B"
        assert found[0].right.collection == "A"

    def test_joins_between_disconnected(self):
        spec = self.make()
        assert spec.joins_between({"A"}, {"C"}) == []

    def test_joins_between_groups(self):
        spec = self.make()
        found = spec.joins_between({"A", "B"}, {"C"})
        assert len(found) == 1

    def test_joins_within(self):
        spec = self.make()
        assert len(spec.joins_within({"A", "B"})) == 1
        assert len(spec.joins_within({"A", "B", "C"})) == 2
        assert spec.joins_within({"A", "C"}) == []

    def test_single_collection_flag(self):
        assert QuerySpec(collections=["A"]).is_single_collection
        assert not self.make().is_single_collection
