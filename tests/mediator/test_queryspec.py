"""Unit tests for the normalized query representation."""

import pytest

from repro.algebra.expressions import Comparison, attr, eq
from repro.errors import QueryError
from repro.mediator.queryspec import (
    QuerySpec,
    UnionSpec,
    normalized,
    spec_fingerprint,
)


def join(left_col, left_attr, right_col, right_attr):
    return Comparison("=", attr(left_attr, left_col), attr(right_attr, right_col))


class TestValidation:
    def test_needs_collections(self):
        with pytest.raises(QueryError):
            QuerySpec(collections=[])

    def test_duplicates_rejected(self):
        with pytest.raises(QueryError):
            QuerySpec(collections=["A", "A"])

    def test_filter_on_foreign_collection_rejected(self):
        with pytest.raises(QueryError):
            QuerySpec(collections=["A"], filters={"B": [eq("x", 1)]})

    def test_join_must_be_attr_attr(self):
        with pytest.raises(QueryError):
            QuerySpec(collections=["A", "B"], joins=[eq("x", 1)])

    def test_join_must_qualify_both_sides(self):
        unqualified = Comparison("=", attr("x"), attr("y", "B"))
        with pytest.raises(QueryError):
            QuerySpec(collections=["A", "B"], joins=[unqualified])

    def test_valid_spec(self):
        spec = QuerySpec(
            collections=["A", "B"],
            filters={"A": [eq("x", 1)]},
            joins=[join("A", "x", "B", "y")],
        )
        assert spec.filters_for("A")
        assert spec.filters_for("B") == []


class TestJoinGraphHelpers:
    def make(self):
        return QuerySpec(
            collections=["A", "B", "C"],
            joins=[join("A", "x", "B", "y"), join("B", "z", "C", "w")],
        )

    def test_joins_between_direct(self):
        spec = self.make()
        found = spec.joins_between({"A"}, {"B"})
        assert len(found) == 1
        assert found[0].left.collection == "A"

    def test_joins_between_flips_orientation(self):
        spec = self.make()
        found = spec.joins_between({"B"}, {"A"})
        assert len(found) == 1
        assert found[0].left.collection == "B"
        assert found[0].right.collection == "A"

    def test_joins_between_disconnected(self):
        spec = self.make()
        assert spec.joins_between({"A"}, {"C"}) == []

    def test_joins_between_groups(self):
        spec = self.make()
        found = spec.joins_between({"A", "B"}, {"C"})
        assert len(found) == 1

    def test_joins_within(self):
        spec = self.make()
        assert len(spec.joins_within({"A", "B"})) == 1
        assert len(spec.joins_within({"A", "B", "C"})) == 2
        assert spec.joins_within({"A", "C"}) == []

    def test_single_collection_flag(self):
        assert QuerySpec(collections=["A"]).is_single_collection
        assert not self.make().is_single_collection


class TestNormalization:
    def test_collection_order_canonicalized(self):
        ab = QuerySpec(collections=["A", "B"], joins=[join("A", "x", "B", "y")])
        ba = QuerySpec(collections=["B", "A"], joins=[join("A", "x", "B", "y")])
        assert normalized(ab) == normalized(ba)

    def test_join_orientation_canonicalized(self):
        forward = QuerySpec(
            collections=["A", "B"], joins=[join("A", "x", "B", "y")]
        )
        flipped = QuerySpec(
            collections=["A", "B"], joins=[join("B", "y", "A", "x")]
        )
        assert normalized(forward) == normalized(flipped)

    def test_filter_conjunct_order_canonicalized(self):
        first = QuerySpec(
            collections=["A"], filters={"A": [eq("x", 1), eq("y", 2)]}
        )
        second = QuerySpec(
            collections=["A"], filters={"A": [eq("y", 2), eq("x", 1)]}
        )
        assert normalized(first) == normalized(second)

    def test_projection_order_is_semantic(self):
        xy = QuerySpec(collections=["A"], projection=["x", "y"])
        yx = QuerySpec(collections=["A"], projection=["y", "x"])
        assert normalized(xy) != normalized(yx)


class TestFingerprint:
    def test_stable_and_short(self):
        spec = QuerySpec(collections=["A"], filters={"A": [eq("x", 1)]})
        first = spec_fingerprint(spec)
        assert first == spec_fingerprint(spec)
        assert len(first) == 20
        assert all(c in "0123456789abcdef" for c in first)

    def test_equal_for_shuffled_presentation(self):
        ab = QuerySpec(
            collections=["A", "B"],
            filters={"A": [eq("x", 1), eq("y", 2)]},
            joins=[join("A", "x", "B", "y")],
        )
        ba = QuerySpec(
            collections=["B", "A"],
            filters={"A": [eq("y", 2), eq("x", 1)]},
            joins=[join("B", "y", "A", "x")],
        )
        assert spec_fingerprint(ab) == spec_fingerprint(ba)

    def test_differs_on_semantic_changes(self):
        base = QuerySpec(collections=["A"], filters={"A": [eq("x", 1)]})
        fingerprints = {
            spec_fingerprint(base),
            spec_fingerprint(
                QuerySpec(collections=["A"], filters={"A": [eq("x", 2)]})
            ),
            spec_fingerprint(QuerySpec(collections=["A"])),
            spec_fingerprint(
                QuerySpec(
                    collections=["A"],
                    filters={"A": [eq("x", 1)]},
                    distinct=True,
                )
            ),
            spec_fingerprint(
                QuerySpec(
                    collections=["A"],
                    filters={"A": [eq("x", 1)]},
                    projection=["x"],
                )
            ),
        }
        assert len(fingerprints) == 5

    def test_union_fingerprint_covers_branches_and_distinct(self):
        left = QuerySpec(collections=["A"], projection=["x"])
        right = QuerySpec(collections=["B"], projection=["x"])
        union_all = UnionSpec(branches=[left, right], distinct=False)
        union_distinct = UnionSpec(branches=[left, right], distinct=True)
        assert spec_fingerprint(union_all) == spec_fingerprint(
            UnionSpec(branches=[left, right], distinct=False)
        )
        assert spec_fingerprint(union_all) != spec_fingerprint(union_distinct)
        # Branch order is semantic for unions (bag semantics of the
        # output stream), so it stays part of the identity.
        assert spec_fingerprint(union_all) != spec_fingerprint(
            UnionSpec(branches=[right, left], distinct=False)
        )
