"""Tests for retry/timeout/backoff dispatch and circuit breakers."""

import random

import pytest

from repro.algebra.builders import scan
from repro.errors import SubmitFailedError, TransientSourceError
from repro.mediator.executor import MEDIATOR_PROFILE, ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
    ResilienceOptions,
    ResilienceStats,
    RetryPolicy,
)
from repro.wrappers.base import Wrapper
from repro.wrappers.faults import FaultInjector, FaultProfile
from tests.federation_fixtures import build_sales_wrapper


class FlakyWrapper(Wrapper):
    """Fails the first ``failures`` executions transiently, then delegates."""

    def __init__(self, inner, failures=1, latency_ms=40.0):
        super().__init__(inner.name, inner.capabilities)
        self.inner = inner
        self.remaining_failures = failures
        self.latency_ms = latency_ms

    def export_cost_info(self):
        return self.inner.export_cost_info()

    def execute(self, plan):
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise TransientSourceError(
                "flaky source", elapsed_ms=self.latency_ms
            )
        return self.inner.execute(plan)


def build_mediator(wrapper, resilience, cache=False):
    options = ExecutorOptions(resilience=resilience, cache_subanswers=cache)
    mediator = Mediator(executor_options=options)
    mediator.register(wrapper)
    return mediator


def suppliers_plan():
    return scan("Suppliers").submit_to("sales").build()


NO_BACKOFF = RetryPolicy(max_attempts=3, backoff_base_ms=0.0)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base_ms=100.0, backoff_multiplier=2.0, backoff_max_ms=350.0
        )
        rng = random.Random(0)
        assert policy.backoff_ms(1, rng) == 100.0
        assert policy.backoff_ms(2, rng) == 200.0
        assert policy.backoff_ms(3, rng) == 350.0  # capped, not 400

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base_ms=100.0, jitter_ratio=0.5)
        delays = [policy.backoff_ms(1, random.Random(7)) for _ in range(5)]
        assert delays == [delays[0]] * 5  # same seed, same delay
        for _ in range(50):
            delay = policy.backoff_ms(1, random.Random())
            assert 50.0 <= delay <= 150.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_ratio=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_ms=0.0)
        with pytest.raises(ValueError):
            ResilienceOptions(mode="lenient")


class TestCircuitBreakerStateMachine:
    """Satellite (d): trip, cooldown, half-open probe, on simulated time."""

    def build(self, threshold=2, cooldown=1_000.0):
        return CircuitBreaker(
            BreakerPolicy(failure_threshold=threshold, cooldown_ms=cooldown)
        )

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = self.build(threshold=3)
        assert not breaker.record_failure(now_ms=10.0)
        assert not breaker.record_failure(now_ms=20.0)
        assert breaker.state == CLOSED
        assert breaker.record_failure(now_ms=30.0)  # third one trips
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = self.build(threshold=2)
        breaker.record_failure(now_ms=1.0)
        breaker.record_success()
        breaker.record_failure(now_ms=2.0)
        assert breaker.state == CLOSED  # streak restarted, no trip

    def test_open_blocks_until_cooldown_elapses(self):
        breaker = self.build(threshold=1, cooldown=1_000.0)
        breaker.record_failure(now_ms=100.0)
        assert breaker.state == OPEN
        assert not breaker.allow(now_ms=100.0)
        assert not breaker.allow(now_ms=1_099.0)
        assert breaker.allow(now_ms=1_100.0)  # cooldown over: probe allowed
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker = self.build(threshold=1, cooldown=100.0)
        breaker.record_failure(now_ms=0.0)
        assert breaker.allow(now_ms=200.0)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow(now_ms=200.0)

    def test_half_open_probe_failure_reopens_and_restarts_cooldown(self):
        breaker = self.build(threshold=3, cooldown=100.0)
        for now in (0.0, 1.0, 2.0):
            breaker.record_failure(now_ms=now)
        assert breaker.allow(now_ms=150.0)  # half-open probe
        assert breaker.record_failure(now_ms=150.0)  # one failure re-opens
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow(now_ms=200.0)  # new cooldown from 150
        assert breaker.allow(now_ms=250.0)


class TestRetryDispatch:
    def test_retry_after_transient_failure_succeeds(self):
        mediator = build_mediator(
            FlakyWrapper(build_sales_wrapper(), failures=1),
            ResilienceOptions(retry=RetryPolicy(max_attempts=3)),
        )
        result = mediator.executor.execute(suppliers_plan())
        assert result.count == 50
        assert result.resilience.retries == {"sales": 1}
        assert result.resilience.attempt_errors == {"sales": 1}
        assert result.resilience.failed_submits == {}

    def test_retry_message_accounting_not_double_charged(self):
        """Satellite (b): each attempt ships one request message; the
        response message is charged once, for the successful attempt."""
        latency = 40.0
        backoff = 100.0
        mediator = build_mediator(
            FlakyWrapper(build_sales_wrapper(), failures=1, latency_ms=latency),
            ResilienceOptions(
                retry=RetryPolicy(max_attempts=3, backoff_base_ms=backoff)
            ),
        )
        clock = mediator.executor.clock
        messages_before = clock.stats.messages
        result = mediator.executor.execute(suppliers_plan())
        # 2 requests (one per attempt) + 1 response = 3, not 4.
        assert clock.stats.messages - messages_before == 3
        assert clock.stats.wait_ms == backoff  # the backoff sleep, only
        wrapper_ms = result.submit_log[0][1].total_time_ms
        payload_ms = clock.stats.bytes_shipped * MEDIATOR_PROFILE.net_ms_per_byte
        expected = (
            3 * MEDIATOR_PROFILE.net_ms_per_message
            + payload_ms
            + latency  # the failed attempt's wait is charged once
            + backoff
            + wrapper_ms
        )
        assert result.total_time_ms == pytest.approx(expected)

    def test_failed_attempts_never_enter_submit_log(self):
        mediator = build_mediator(
            FlakyWrapper(build_sales_wrapper(), failures=1),
            ResilienceOptions(retry=NO_BACKOFF),
        )
        result = mediator.executor.execute(suppliers_plan())
        assert len(result.submit_log) == 1  # only the successful execution
        assert result.submit_log[0][1].count == 50

    def test_exhausted_retries_raise_in_strict_mode(self):
        mediator = build_mediator(
            FlakyWrapper(build_sales_wrapper(), failures=10),
            ResilienceOptions(retry=NO_BACKOFF, breaker=None),
        )
        with pytest.raises(SubmitFailedError) as exc:
            mediator.executor.execute(suppliers_plan())
        assert exc.value.failure.wrapper == "sales"
        assert exc.value.failure.reason == "transient"
        assert exc.value.failure.attempts == 3

    def test_empty_wrapper_answer_keeps_count_and_device_stats(self):
        """Satellite (b): a zero-row subanswer is a *successful* submit —
        count 0, device stats present, no failure recorded."""
        mediator = build_mediator(
            build_sales_wrapper(),
            ResilienceOptions(retry=NO_BACKOFF),
        )
        plan = (
            scan("Suppliers").where_eq("sid", 9_999).submit_to("sales").build()
        )
        result = mediator.executor.execute(plan)
        assert result.count == 0
        assert result.partial is None
        assert result.resilience.empty
        logged = result.submit_log[0][1]
        assert logged.count == 0
        assert logged.device_stats is not None
        assert set(logged.device_stats) == {"page_reads", "objects_processed"}
        # Discovering emptiness costs the full execution (TimeFirst rule).
        assert logged.time_first_ms == logged.total_time_ms


class TestDeadline:
    def test_deadline_cancels_wrapper_wait_mid_flight(self):
        raw = build_sales_wrapper().execute(scan("Suppliers").build())
        deadline = raw.total_time_ms / 2
        mediator = build_mediator(
            build_sales_wrapper(),
            ResilienceOptions(
                retry=RetryPolicy(max_attempts=3, deadline_ms=deadline),
                breaker=None,
            ),
        )
        scheduler = mediator.executor.scheduler
        clock = mediator.executor.clock
        before = clock.now_ms
        outcome = scheduler.dispatch_one(suppliers_plan())
        assert outcome.failed
        assert outcome.failure.reason == "timeout"
        assert outcome.attempts == 1  # the budget is gone: no retry fits
        # Only the request message plus the remaining budget is charged.
        assert clock.now_ms - before == pytest.approx(
            MEDIATOR_PROFILE.net_ms_per_message + deadline
        )
        assert scheduler.resilience_stats.cancelled_wait_ms == pytest.approx(
            raw.total_time_ms - deadline
        )
        assert scheduler.resilience_stats.timeouts == {"sales": 1}

    def test_timed_out_submit_is_never_cached(self):
        """Satellite (a): a cancelled wait's rows are an unusable prefix."""
        raw = build_sales_wrapper().execute(scan("Suppliers").build())
        mediator = build_mediator(
            build_sales_wrapper(),
            ResilienceOptions(
                retry=RetryPolicy(
                    max_attempts=1, deadline_ms=raw.total_time_ms / 2
                ),
                breaker=None,
            ),
            cache=True,
        )
        outcome = mediator.executor.scheduler.dispatch_one(suppliers_plan())
        assert outcome.failed
        assert len(mediator.executor.cache) == 0

    def test_backoff_is_capped_by_remaining_deadline(self):
        latency = 40.0
        deadline = 100.0
        mediator = build_mediator(
            FlakyWrapper(
                build_sales_wrapper(), failures=10, latency_ms=latency
            ),
            ResilienceOptions(
                retry=RetryPolicy(
                    max_attempts=2,
                    backoff_base_ms=10_000.0,
                    deadline_ms=deadline,
                ),
                breaker=None,
            ),
        )
        scheduler = mediator.executor.scheduler
        outcome = scheduler.dispatch_one(suppliers_plan())
        assert outcome.failed
        # The first backoff was clipped to deadline - latency, so the
        # total waited time never exceeds the budget.
        assert scheduler.resilience_stats.backoff_ms == pytest.approx(
            deadline - latency
        )


class TestBreakerDispatch:
    def breaker_options(self, threshold=2, cooldown=1_000.0, attempts=1):
        return ResilienceOptions(
            retry=RetryPolicy(max_attempts=attempts, backoff_base_ms=0.0),
            breaker=BreakerPolicy(
                failure_threshold=threshold, cooldown_ms=cooldown
            ),
        )

    def dead_sales_wrapper(self):
        return FaultInjector(
            build_sales_wrapper(), FaultProfile(unavailable=True)
        )

    def test_open_breaker_fast_fails_without_attempts(self):
        mediator = build_mediator(
            self.dead_sales_wrapper(), self.breaker_options(threshold=2)
        )
        scheduler = mediator.executor.scheduler
        for _ in range(2):  # trip it
            assert scheduler.dispatch_one(suppliers_plan()).failed
        clock_before = mediator.executor.clock.now_ms
        outcome = scheduler.dispatch_one(suppliers_plan())
        assert outcome.failed
        assert outcome.failure.reason == "circuit_open"
        assert outcome.attempts == 0
        assert mediator.executor.clock.now_ms == clock_before  # zero charge
        assert scheduler.resilience_stats.breaker_fast_fails == {"sales": 1}
        assert scheduler.resilience_stats.breaker_trips == {"sales": 1}
        assert scheduler.open_breaker_wrappers() == ["sales"]

    def test_tripped_breaker_stops_the_retry_loop(self):
        """A dead source must not burn the remaining retry budget."""
        mediator = build_mediator(
            self.dead_sales_wrapper(),
            self.breaker_options(threshold=2, attempts=5),
        )
        outcome = mediator.executor.scheduler.dispatch_one(suppliers_plan())
        assert outcome.failed
        assert outcome.attempts == 2  # trip at 2, not 5

    def test_half_open_probe_recovers_through_scheduler(self):
        injector = self.dead_sales_wrapper()
        mediator = build_mediator(
            injector, self.breaker_options(threshold=1, cooldown=500.0)
        )
        scheduler = mediator.executor.scheduler
        assert scheduler.dispatch_one(suppliers_plan()).failed  # trips
        assert scheduler.dispatch_one(suppliers_plan()).failure.reason == (
            "circuit_open"
        )
        injector.set_profile(FaultProfile())  # the source comes back
        mediator.executor.clock.advance(500.0)  # cooldown on the sim clock
        outcome = scheduler.dispatch_one(suppliers_plan())  # half-open probe
        assert not outcome.failed
        assert outcome.result.count == 50
        assert scheduler.breakers["sales"].state == CLOSED
        assert scheduler.open_breaker_wrappers() == []

    def test_cache_hit_bypasses_open_breaker(self):
        """Satellite (a): memoized rows answer even while the source is
        down — the hit is served before the breaker is consulted."""
        injector = FaultInjector(build_sales_wrapper())
        mediator = build_mediator(
            injector, self.breaker_options(threshold=1), cache=True
        )
        scheduler = mediator.executor.scheduler
        healthy = scheduler.dispatch_one(suppliers_plan())
        assert not healthy.failed  # populated the cache
        injector.set_profile(FaultProfile(unavailable=True))
        other_plan = (
            scan("Suppliers").where_eq("sid", 1).submit_to("sales").build()
        )
        assert scheduler.dispatch_one(other_plan).failed  # trips the breaker
        assert scheduler.breakers["sales"].state == OPEN
        fast_fails_before = dict(scheduler.resilience_stats.breaker_fast_fails)
        outcome = scheduler.dispatch_one(suppliers_plan())
        assert outcome.cached and not outcome.failed
        assert outcome.result.rows == healthy.result.rows
        # The breaker saw nothing: no fast-fail was recorded.
        assert scheduler.resilience_stats.breaker_fast_fails == fast_fails_before


class TestHalfOpenProbeGating:
    """Satellite: only one half-open probe may be in flight; a failed
    probe re-opens with a fresh cooldown."""

    def build(self, cooldown=100.0):
        return CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown_ms=cooldown)
        )

    def test_second_caller_is_blocked_while_probe_is_out(self):
        breaker = self.build()
        breaker.record_failure(now_ms=0.0)
        assert breaker.allow(now_ms=150.0)  # the probe
        assert breaker.state == HALF_OPEN
        # Siblings arriving while the probe is in flight fast-fail, even
        # arbitrarily later — HALF_OPEN admits exactly one request.
        assert not breaker.allow(now_ms=150.0)
        assert not breaker.allow(now_ms=9_999.0)

    def test_probe_success_reopens_the_gate(self):
        breaker = self.build()
        breaker.record_failure(now_ms=0.0)
        assert breaker.allow(now_ms=150.0)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow(now_ms=150.0)
        assert breaker.allow(now_ms=150.0)  # no single-probe gate when closed

    def test_failed_probe_restarts_cooldown_and_clears_the_gate(self):
        breaker = self.build(cooldown=100.0)
        breaker.record_failure(now_ms=0.0)
        assert breaker.allow(now_ms=150.0)
        assert breaker.record_failure(now_ms=150.0)  # probe failed: re-trip
        assert breaker.state == OPEN
        assert not breaker.allow(now_ms=200.0)  # fresh cooldown from 150
        assert breaker.allow(now_ms=250.0)  # ...and the next probe may fly

    def test_parallel_wave_sends_exactly_one_probe(self):
        injector = FaultInjector(
            build_sales_wrapper(), FaultProfile(unavailable=True)
        )
        mediator = Mediator(
            executor_options=ExecutorOptions(
                resilience=ResilienceOptions(
                    retry=RetryPolicy(max_attempts=1, backoff_base_ms=0.0),
                    breaker=BreakerPolicy(
                        failure_threshold=1, cooldown_ms=500.0
                    ),
                    mode="partial",
                ),
                parallel_submits=True,
            )
        )
        mediator.register(injector)
        scheduler = mediator.executor.scheduler
        assert scheduler.dispatch_one(suppliers_plan()).failed  # trips
        mediator.executor.clock.advance(500.0)
        executions_before = injector.log.executions
        fast_fails_before = scheduler.resilience_stats.breaker_fast_fails.get(
            "sales", 0
        )
        outcomes = scheduler.dispatch_wave([suppliers_plan() for _ in range(3)])
        assert all(outcome.failed for outcome in outcomes)
        # The still-dead source saw exactly one probe; its wave siblings
        # fast-failed on the in-flight gate.
        assert injector.log.executions == executions_before + 1
        assert scheduler.resilience_stats.breaker_fast_fails["sales"] == (
            fast_fails_before + 2
        )
        # The failed probe re-opened with a fresh cooldown.
        probe_failed_at = mediator.executor.clock.now_ms
        assert scheduler.breakers["sales"].state == OPEN
        assert not scheduler.breakers["sales"].allow(probe_failed_at + 499.0)
        assert scheduler.breakers["sales"].allow(probe_failed_at + 500.0)


class TestBackoffDesynchronization:
    """Satellite: jitter is seeded per (wrapper, dispatch, attempt), so
    concurrent retries against one wrapper draw distinct backoffs."""

    JITTERED = ResilienceOptions(
        retry=RetryPolicy(
            max_attempts=2, backoff_base_ms=100.0, jitter_ratio=0.5
        )
    )

    def test_rng_is_deterministic_per_draw_and_distinct_across_draws(self):
        mediator = build_mediator(build_sales_wrapper(), self.JITTERED)
        scheduler = mediator.executor.scheduler
        draws = {
            (wrapper, seq, attempt): scheduler._jitter_rng(
                wrapper, seq, attempt
            ).random()
            for wrapper in ("sales", "oo7")
            for seq in (1, 2)
            for attempt in (1, 2)
        }
        # Same coordinates, same draw — replayable.
        for (wrapper, seq, attempt), value in draws.items():
            assert (
                scheduler._jitter_rng(wrapper, seq, attempt).random() == value
            )
        # Distinct coordinates, distinct draws — no thundering herd.
        assert len(set(draws.values())) == len(draws)

    def test_consecutive_dispatches_draw_distinct_backoffs(self):
        flaky = FlakyWrapper(build_sales_wrapper(), failures=0)
        mediator = build_mediator(flaky, self.JITTERED)
        scheduler = mediator.executor.scheduler
        stats = scheduler.resilience_stats
        backoffs = []
        for _ in range(4):
            flaky.remaining_failures = 1  # each dispatch retries once
            before = stats.backoff_ms
            assert not scheduler.dispatch_one(suppliers_plan()).failed
            backoffs.append(stats.backoff_ms - before)
        assert all(50.0 <= backoff <= 150.0 for backoff in backoffs)
        assert len(set(backoffs)) == len(backoffs)


class TestResilienceStats:
    def test_copy_is_independent(self):
        stats = ResilienceStats()
        stats._inc(stats.retries, "a")
        snapshot = stats.copy()
        stats._inc(stats.retries, "a")
        assert snapshot.retries == {"a": 1}
        assert stats.retries == {"a": 2}

    def test_minus_yields_per_execution_delta(self):
        stats = ResilienceStats()
        stats._inc(stats.retries, "a")
        stats.backoff_ms = 100.0
        before = stats.copy()
        stats._inc(stats.retries, "a")
        stats._inc(stats.timeouts, "b")
        stats.backoff_ms = 250.0
        delta = stats.minus(before)
        assert delta.retries == {"a": 1}
        assert delta.timeouts == {"b": 1}
        assert delta.backoff_ms == 150.0
        assert not delta.empty
        assert stats.minus(stats.copy()).empty

    def test_totals(self):
        stats = ResilienceStats()
        stats._inc(stats.retries, "a", 2)
        stats._inc(stats.retries, "b")
        assert stats.total_retries == 3
        assert stats.total_timeouts == 0
