"""Tests for concurrent submit dispatch and the subanswer cache."""

import pytest

from repro.algebra.builders import scan
from repro.mediator.executor import MEDIATOR_PROFILE, ExecutorOptions
from repro.mediator.mediator import Mediator
from tests.federation_fixtures import (
    build_files_wrapper,
    build_oo7_wrapper,
    build_sales_wrapper,
)

PARALLEL = ExecutorOptions(parallel_submits=True)
CACHED = ExecutorOptions(cache_subanswers=True)
PARALLEL_CACHED = ExecutorOptions(parallel_submits=True, cache_subanswers=True)


def build_mediator(options=None):
    """A fresh federation per call — wrapper-side buffer caches mean a
    shared instance would not give comparable timings across modes."""
    mediator = Mediator(executor_options=options)
    mediator.register(build_oo7_wrapper())
    mediator.register(build_sales_wrapper())
    mediator.register(build_files_wrapper())
    return mediator


def union_two_wrappers():
    return (
        scan("AtomicParts")
        .submit_to("oo7")
        .union(scan("Orders").submit_to("sales"))
        .build()
    )


def cross_wrapper_join():
    return (
        scan("AtomicParts")
        .where_eq("Id", 3)
        .submit_to("oo7")
        .join(scan("Suppliers").submit_to("sales"), "type", "partType")
        .build()
    )


class TestParallelWaveAccounting:
    def test_wave_total_is_messages_plus_makespan(self):
        """Parallel total = serialized messages + max of wrapper times."""
        mediator = build_mediator(PARALLEL)
        executor = mediator.executor
        bytes_before = executor.clock.stats.bytes_shipped
        result = executor.execute(union_two_wrappers())
        shipped = executor.clock.stats.bytes_shipped - bytes_before
        wrapper_times = [res.total_time_ms for _node, res in result.submit_log]
        assert len(wrapper_times) == 2
        expected = (
            4 * MEDIATOR_PROFILE.net_ms_per_message
            + shipped * MEDIATOR_PROFILE.net_ms_per_byte
            + max(wrapper_times)
        )
        assert result.total_time_ms == pytest.approx(expected)
        # The overlap saved exactly the smaller branch's wait.
        assert result.parallel_saved_ms == pytest.approx(min(wrapper_times))

    def test_sequential_total_is_additive(self):
        mediator = build_mediator()
        executor = mediator.executor
        bytes_before = executor.clock.stats.bytes_shipped
        result = executor.execute(union_two_wrappers())
        shipped = executor.clock.stats.bytes_shipped - bytes_before
        wrapper_times = [res.total_time_ms for _node, res in result.submit_log]
        expected = (
            4 * MEDIATOR_PROFILE.net_ms_per_message
            + shipped * MEDIATOR_PROFILE.net_ms_per_byte
            + sum(wrapper_times)
        )
        assert result.total_time_ms == pytest.approx(expected)
        assert result.parallel_saved_ms == 0.0

    def test_parallel_beats_sequential(self):
        sequential = build_mediator().executor.execute(union_two_wrappers())
        parallel = build_mediator(PARALLEL).executor.execute(union_two_wrappers())
        assert parallel.total_time_ms < sequential.total_time_ms

    def test_concurrency_one_matches_sequential(self):
        """A single slot serializes the wave: same clock as the seed model."""
        capped = ExecutorOptions(parallel_submits=True, max_concurrency=1)
        sequential = build_mediator().executor.execute(union_two_wrappers())
        serialized = build_mediator(capped).executor.execute(union_two_wrappers())
        assert serialized.total_time_ms == pytest.approx(sequential.total_time_ms)
        assert serialized.parallel_saved_ms == 0.0


class TestParallelResultEquivalence:
    @pytest.mark.parametrize("plan_builder", [union_two_wrappers, cross_wrapper_join])
    def test_rows_identical_to_sequential(self, plan_builder):
        sequential = build_mediator().executor.execute(plan_builder())
        parallel = build_mediator(PARALLEL).executor.execute(plan_builder())
        assert parallel.rows == sequential.rows

    def test_parallel_order_is_deterministic(self):
        first = build_mediator(PARALLEL).executor.execute(cross_wrapper_join())
        second = build_mediator(PARALLEL).executor.execute(cross_wrapper_join())
        assert first.rows == second.rows

    def test_submit_log_order_matches_sequential(self):
        """Prefetch must not reorder the log the §4.3.1 history sees."""
        sequential = build_mediator().executor.execute(cross_wrapper_join())
        parallel = build_mediator(PARALLEL).executor.execute(cross_wrapper_join())
        assert [node.wrapper for node, _res in parallel.submit_log] == [
            node.wrapper for node, _res in sequential.submit_log
        ]


class TestSubanswerCache:
    def test_repeat_query_hits_cache(self):
        mediator = build_mediator(CACHED)
        plan = scan("Suppliers").submit_to("sales").build()
        first = mediator.executor.execute(plan)
        assert (first.cache_hits, first.cache_misses) == (0, 1)
        second = mediator.executor.execute(plan)
        assert (second.cache_hits, second.cache_misses) == (1, 0)
        assert second.rows == first.rows

    def test_hit_skips_wrapper_and_charges_zero(self):
        mediator = build_mediator(CACHED)
        plan = scan("Suppliers").submit_to("sales").build()
        mediator.executor.execute(plan)
        wrapper_clock = mediator.catalog.wrapper("sales").engine.clock
        wrapper_before = wrapper_clock.now_ms
        mediator_before = mediator.executor.clock.now_ms
        second = mediator.executor.execute(plan)
        assert wrapper_clock.now_ms == wrapper_before  # no wrapper execution
        assert mediator.executor.clock.now_ms == mediator_before  # zero time
        assert second.total_time_ms == 0.0
        assert second.submit_log == []  # history must not learn from hits

    def test_within_wave_duplicates_hit(self):
        mediator = build_mediator(PARALLEL_CACHED)
        plan = (
            scan("Suppliers")
            .submit_to("sales")
            .union(scan("Suppliers").submit_to("sales"))
            .build()
        )
        result = mediator.executor.execute(plan)
        assert result.count == 100
        assert (result.cache_hits, result.cache_misses) == (1, 1)
        assert len(result.submit_log) == 1

    def test_cached_rows_are_isolated(self):
        mediator = build_mediator(CACHED)
        plan = scan("Suppliers").submit_to("sales").build()
        first = mediator.executor.execute(plan)
        first.rows[0]["city"] = "mutated"
        second = mediator.executor.execute(plan)
        assert second.rows[0]["city"] != "mutated"

    def test_reregistration_invalidates(self):
        mediator = build_mediator(CACHED)
        plan = scan("Suppliers").submit_to("sales").build()
        mediator.executor.execute(plan)
        mediator.register(build_sales_wrapper())
        result = mediator.executor.execute(plan)
        assert (result.cache_hits, result.cache_misses) == (0, 1)


class TestMediatorSurface:
    def test_query_result_reports_counters(self):
        mediator = build_mediator(PARALLEL_CACHED)
        sql = "SELECT * FROM Suppliers WHERE city = 'city0'"
        first = mediator.query(sql)
        assert first.cache_misses >= 1
        second = mediator.query(sql)
        assert second.cache_hits >= 1
        assert second.rows == first.rows

    def test_explain_shows_cache_stats(self):
        mediator = build_mediator(CACHED)
        sql = "SELECT * FROM Suppliers WHERE city = 'city0'"
        mediator.query(sql)
        mediator.query(sql)
        text = mediator.explain(sql)
        # The counters are cumulative executor state (explain itself
        # executes nothing), so the label must say so.
        assert "subanswer cache (lifetime): 1 hits / 1 misses" in text

    def test_query_result_reports_parallel_savings(self):
        mediator = build_mediator(PARALLEL)
        result = mediator.execute_plan(union_two_wrappers())
        assert result.parallel_saved_ms > 0.0
