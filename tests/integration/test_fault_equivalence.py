"""Property test: with fault probability 0 the resilient path is
byte-identical to the seed path.

The fault-tolerance layer must be pay-for-what-you-use twice over: the
executor default (``resilience=None``) leaves the original code path
untouched, and a configured layer whose injectors never fire must
produce the same rows, the same submit log, and the *same simulated
clock totals* — retries, breakers and deadlines only act on failures.
"""

import pytest

from repro.algebra.builders import scan
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import (
    BreakerPolicy,
    ResilienceOptions,
    RetryPolicy,
)
from repro.oo7 import TINY
from repro.oo7.workload import build_workload
from repro.wrappers.faults import FaultInjector, FaultProfile
from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper

SEED = 7

#: A fully armed layer (retries, jitter, deadline, breakers) that never
#: fires because no fault ever occurs.
ARMED = ResilienceOptions(
    retry=RetryPolicy(
        max_attempts=5,
        backoff_base_ms=100.0,
        jitter_ratio=0.3,
        deadline_ms=1e9,
    ),
    breaker=BreakerPolicy(failure_threshold=1, cooldown_ms=10.0),
    mode="partial",
)


def build_mediator(resilience=None, inject=False, parallel=False):
    mediator = Mediator(
        executor_options=ExecutorOptions(
            resilience=resilience, parallel_submits=parallel
        )
    )
    for wrapper in (build_oo7_wrapper(), build_sales_wrapper()):
        if inject:
            # Zero-probability profile: the injector must be transparent.
            wrapper = FaultInjector(wrapper, FaultProfile(error_probability=0.0))
        mediator.register(wrapper)
    return mediator


def run_workload(mediator):
    """Row/clock/submit-log transcript of the OO7 workload."""
    transcript = []
    for query in build_workload(TINY, SEED):
        plan = mediator.plan(query.sql).plan
        execution = mediator.executor.execute(plan)
        transcript.append(
            {
                "label": query.label,
                "rows": execution.rows,
                "elapsed_ms": execution.total_time_ms,
                "time_first_ms": execution.time_first_ms,
                "submit_log": [
                    (node.wrapper, node.child.describe(), res.total_time_ms)
                    for node, res in execution.submit_log
                ],
            }
        )
    transcript.append(("clock_total", mediator.executor.clock.now_ms))
    transcript.append(("wait_ms", mediator.executor.clock.stats.wait_ms))
    transcript.append(("messages", mediator.executor.clock.stats.messages))
    transcript.append(("bytes", mediator.executor.clock.stats.bytes_shipped))
    return transcript


class TestZeroProbabilityEquivalence:
    def test_armed_layer_with_benign_injectors_matches_seed(self):
        """Satellite (c): p=0 ⇒ identical results, clock, submit_log."""
        seed_transcript = run_workload(build_mediator())
        resilient_transcript = run_workload(
            build_mediator(resilience=ARMED, inject=True)
        )
        assert resilient_transcript == seed_transcript

    def test_armed_layer_without_injectors_matches_seed(self):
        assert run_workload(build_mediator(resilience=ARMED)) == run_workload(
            build_mediator()
        )

    def test_wave_dispatch_equivalence(self):
        """The concurrent (wave) charge path is preserved too."""
        plan = (
            scan("Orders")
            .submit_to("sales")
            .union(scan("AtomicParts").submit_to("oo7"))
            .build()
        )
        seed = build_mediator(parallel=True).execute_plan(plan)
        resilient = build_mediator(
            resilience=ARMED, inject=True, parallel=True
        ).execute_plan(plan)
        assert resilient.rows == seed.rows
        assert resilient.elapsed_ms == pytest.approx(seed.elapsed_ms, abs=1e-9)
        assert resilient.parallel_saved_ms == pytest.approx(
            seed.parallel_saved_ms, abs=1e-9
        )

    def test_no_resilience_stats_attached_on_seed_path(self):
        mediator = build_mediator()
        plan = mediator.plan("SELECT * FROM Suppliers WHERE city = 'city0'").plan
        execution = mediator.executor.execute(plan)
        assert execution.partial is None
        assert execution.resilience is None

    def test_empty_resilience_stats_attached_on_armed_path(self):
        mediator = build_mediator(resilience=ARMED, inject=True)
        plan = mediator.plan("SELECT * FROM Suppliers WHERE city = 'city0'").plan
        execution = mediator.executor.execute(plan)
        assert execution.partial is None
        assert execution.resilience is not None
        assert execution.resilience.empty
