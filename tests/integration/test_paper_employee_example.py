"""The paper's running Employee example, end to end (Figures 3–8).

A hand-written wrapper (no storage engine) exports exactly the
information the paper's figures show: the Employee interface with its
cardinality methods (Figures 3–6) and the two Figure 8 cost rules.  The
mediator registers it, and estimates must follow the paper's arithmetic.
"""

import pytest

from repro.algebra.builders import scan
from repro.algebra.logical import PlanNode, Scan, Select, strip_submits
from repro.mediator.mediator import Mediator
from repro.wrappers.base import CostInfoExport, ExecutionResult, Wrapper

#: Figures 3–6 as one CDL document, plus the Figure 8 rules.  The scan
#: rule's TotalTime follows §3.3.1's example formula; the select rule
#: builds on the scan's result exactly as Figure 8 shows.
EMPLOYEE_CDL = """
interface Employee {
    attribute Long salary;
    attribute String Name;
    short age();

    cardinality extent(CountObject = 10000, TotalSize = 1200000,
                       ObjectSize = 120);
    cardinality attribute(salary, Indexed = true, CountDistinct = 10000,
                          Min = 1000, Max = 30000);
    cardinality attribute(Name, Indexed = true, CountDistinct = 10000,
                          Min = 'Adiba', Max = 'Valduriez');
}

costrule scan(Employee) {
    TotalTime = 120 + Employee.TotalSize * 12
                + Employee.CountObject / Employee.salary.CountDistinct;
}

costrule select(C, A = V) {
    CountObject = C.CountObject * selectivity(A, V);
    TotalSize = CountObject * C.ObjectSize;
    TotalTime = C.TotalTime + C.TotalSize * 25;
}
"""

EMPLOYEES = [
    {"salary": 1000 + i * 29 % 29000, "Name": f"emp{i:05d}"} for i in range(100)
]


class EmployeeWrapper(Wrapper):
    """A minimal hand-rolled wrapper: canned data, paper cost info."""

    def __init__(self) -> None:
        super().__init__("employees")

    def export_cost_info(self) -> CostInfoExport:
        return CostInfoExport(
            cdl_source=EMPLOYEE_CDL,
            collections=["Employee"],
            # The ad-hoc selectivity function of §3.3.2, shipped as code.
            functions={"selectivity": lambda a, v: 1.0 / 10000.0},
        )

    def execute(self, plan: PlanNode) -> ExecutionResult:
        plan = strip_submits(plan)
        rows = list(EMPLOYEES)
        node = plan
        # Tiny interpreter: apply selects/projects found on the spine.
        predicates = [
            n.predicate for n in plan.walk() if isinstance(n, Select)
        ]
        for predicate in predicates:
            rows = [r for r in rows if predicate.evaluate(r)]
        return ExecutionResult(rows=rows, total_time_ms=50.0, time_first_ms=5.0)


@pytest.fixture
def mediator():
    mediator = Mediator()
    mediator.register(EmployeeWrapper())
    return mediator


class TestRegistration:
    def test_collection_known_without_statistics_export(self, mediator):
        assert "Employee" in mediator.catalog.collection_names()
        # Statistics arrived through the CDL cardinality sections.
        stats = mediator.catalog.statistics.get("Employee")
        assert stats.count_object == 10000
        assert stats.attribute("salary").indexed

    def test_two_rules_integrated(self, mediator):
        rules = mediator.repository.rules_for_source("employees")
        assert len(rules) == 2
        scopes = sorted(str(r.scope) for r in rules)
        assert scopes == ["collection", "wrapper"]


class TestPaperArithmetic:
    def test_scan_rule_value(self, mediator):
        """120 + TotalSize*12 + CountObject/CountDistinct(salary)."""
        estimate = mediator.estimator.estimate(
            Scan("Employee"), default_source="employees"
        )
        assert estimate.total_time == pytest.approx(120 + 1200000 * 12 + 1)

    def test_select_rule_builds_on_scan(self, mediator):
        """Figure 8 walk-through for select(scan(employee), salary = 10)."""
        plan = scan("Employee").where_eq("salary", 10).build()
        estimate = mediator.estimator.estimate(plan, default_source="employees")
        scan_time = 120 + 1200000 * 12 + 1
        assert estimate.total_time == pytest.approx(scan_time + 1200000 * 25)
        assert estimate.root.count_object == pytest.approx(10000 / 10000)
        assert estimate.root.values["TotalSize"] == pytest.approx(1 * 120)

    def test_missing_formulas_fall_back_to_generic(self, mediator):
        """Figure 8 note: "for both rules, several formula are missing.
        Default formulas (i.e., that of the generic cost model) are used
        in this case."
        """
        estimate = mediator.estimator.estimate(
            Scan("Employee"),
            default_source="employees",
            variables=("TotalTime", "CountObject", "TimeFirst"),
        )
        assert "generic" in estimate.root.provenance["CountObject"]
        assert "generic" in estimate.root.provenance["TimeFirst"]
        assert "scan(Employee)" in estimate.root.provenance["TotalTime"]


class TestQueryPhase:
    def test_query_executes_against_custom_wrapper(self, mediator):
        result = mediator.query("SELECT * FROM Employee WHERE Name = 'emp00007'")
        assert result.count == 1
        assert result.rows[0]["salary"] == EMPLOYEES[7]["salary"]

    def test_explain_shows_wrapper_scopes(self, mediator):
        text = mediator.explain("SELECT * FROM Employee WHERE salary = 10")
        assert "wrapper[employees]" in text or "collection[employees]" in text
