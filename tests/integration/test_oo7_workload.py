"""Integration: the OO7 workload end-to-end through the mediator.

Answers are checked against ground truth computed from the generated
data, under both the statistics-only and the rules-exporting wrapper —
cost-model configuration must never change query *answers*.
"""

import pytest

from repro.mediator.mediator import Mediator
from repro.oo7 import TINY, generate, load_database
from repro.oo7.workload import build_workload, expected_q8_pairs
from repro.wrappers import ObjectStoreWrapper

SEED = 7


def make_mediator(export_rules):
    mediator = Mediator()
    mediator.register(
        ObjectStoreWrapper("oo7", load_database(TINY, SEED), export_rules=export_rules)
    )
    return mediator


@pytest.fixture(scope="module")
def workload():
    return build_workload(TINY, SEED)


@pytest.fixture(scope="module", params=[True, False], ids=["rules", "no-rules"])
def mediator(request):
    return make_mediator(request.param)


def test_workload_has_all_query_families(workload):
    labels = {q.label.split(".")[0] for q in workload}
    assert labels == {"Q1", "Q2", "Q3", "Q4", "Q5", "Q7", "Q8"}


def test_every_query_returns_expected_rows(mediator, workload):
    for query in workload:
        result = mediator.query(query.sql)
        assert result.count == query.expected_rows, query.label


def test_q7_is_ordered(mediator):
    result = mediator.query(
        "SELECT Id, buildDate FROM AtomicParts ORDER BY buildDate"
    )
    dates = [row["buildDate"] for row in result.rows]
    assert dates == sorted(dates)


def test_q8_count_matches_ground_truth(mediator):
    data = generate(TINY, SEED)
    result = mediator.query(
        "SELECT COUNT(*) AS pairs FROM AtomicParts, Documents "
        "WHERE AtomicParts.partOf = Documents.compPartId"
    )
    assert result.rows[0]["pairs"] == expected_q8_pairs(data)


def test_estimates_positive_for_all_queries(mediator, workload):
    for query in workload:
        optimized = mediator.plan(query.sql)
        assert optimized.estimated_total_ms > 0, query.label


def test_rules_configuration_estimates_selections_better():
    """On the range queries (Q2/Q3) the Yao rules beat the generic model."""
    with_rules = make_mediator(True)
    without_rules = make_mediator(False)
    for query in build_workload(TINY, SEED):
        if not query.label.startswith(("Q2", "Q3")):
            continue
        actual = with_rules.query(query.sql).elapsed_ms
        est_rules = with_rules.plan(query.sql).estimated_total_ms
        est_plain = without_rules.plan(query.sql).estimated_total_ms
        error_rules = abs(est_rules - actual) / actual
        error_plain = abs(est_plain - actual) / actual
        assert error_rules <= error_plain, query.label
