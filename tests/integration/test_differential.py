"""Differential testing: mediator answers vs. a naive reference evaluator.

Hypothesis generates query specs over a fixed two-wrapper schema; whatever
plan the optimizer selects (pushdowns, join placements, access paths), the
executed answer must match the reference evaluation over the raw rows.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.builders import count_star
from repro.algebra.expressions import Comparison, attr, lit
from repro.algebra.logical import AggregateSpec
from repro.mediator.mediator import Mediator
from repro.mediator.queryspec import QuerySpec
from repro.sources.relationaldb import RelationalDatabase
from repro.wrappers import RelationalWrapper

from tests.integration import reference

#: Raw data, mirrored into the wrappers and used by the reference.
EMP_ROWS = [
    {"eid": i, "dept": i % 7, "salary": 1000 + (i * 37) % 900, "grade": i % 4}
    for i in range(120)
]
DEPT_ROWS = [
    {"did": d, "budget": 10_000 + d * 1000, "region": d % 3} for d in range(7)
]

TABLES = {"Emp": EMP_ROWS, "Dept": DEPT_ROWS}


def build_mediator() -> Mediator:
    mediator = Mediator()
    emp_db = RelationalDatabase()
    emp_db.create_table("Emp", EMP_ROWS, row_size=48, indexed_columns=["eid"])
    mediator.register(RelationalWrapper("hr", emp_db))
    dept_db = RelationalDatabase()
    dept_db.create_table("Dept", DEPT_ROWS, row_size=32, indexed_columns=["did"])
    mediator.register(RelationalWrapper("orgs", dept_db))
    return mediator


@pytest.fixture(scope="module")
def mediator():
    return build_mediator()


# -- strategies ----------------------------------------------------------------

_emp_filters = st.lists(
    st.one_of(
        st.tuples(st.just("dept"), st.sampled_from(["=", "<", ">="]),
                  st.integers(0, 7)),
        st.tuples(st.just("salary"), st.sampled_from(["<", "<=", ">", ">="]),
                  st.integers(900, 2000)),
        st.tuples(st.just("grade"), st.just("="), st.integers(0, 4)),
    ),
    max_size=2,
)
_dept_filters = st.lists(
    st.tuples(st.just("region"), st.sampled_from(["=", "<="]), st.integers(0, 3)),
    max_size=1,
)


def _to_predicates(collection, triples):
    return [
        Comparison(op, attr(name, collection), lit(value))
        for name, op, value in triples
    ]


@st.composite
def single_collection_specs(draw):
    filters = draw(_emp_filters)
    distinct = draw(st.booleans())
    order = draw(st.sampled_from([None, "salary", "eid"]))
    projection = draw(st.sampled_from([None, ["eid"], ["eid", "salary"]]))
    if (
        distinct
        and order is not None
        and projection is not None
        and order not in projection
    ):
        # SELECT DISTINCT may only order by output columns (invalid SQL
        # otherwise; the optimizer rejects it).
        order = None
    spec = QuerySpec(
        collections=["Emp"],
        filters={"Emp": _to_predicates("Emp", filters)} if filters else {},
        projection=projection,
        distinct=distinct,
        order_by=[order] if order else [],
    )
    return spec


@st.composite
def join_specs(draw):
    emp_filters = draw(_emp_filters)
    dept_filters = draw(_dept_filters)
    filters = {}
    if emp_filters:
        filters["Emp"] = _to_predicates("Emp", emp_filters)
    if dept_filters:
        filters["Dept"] = _to_predicates("Dept", dept_filters)
    return QuerySpec(
        collections=["Emp", "Dept"],
        filters=filters,
        joins=[Comparison("=", attr("dept", "Emp"), attr("did", "Dept"))],
    )


@st.composite
def aggregate_specs(draw):
    group = draw(st.sampled_from([["dept"], ["grade"], ["dept", "grade"]]))
    functions = draw(
        st.lists(
            st.sampled_from(
                [
                    count_star("n"),
                    AggregateSpec("sum", "salary", "total"),
                    AggregateSpec("min", "salary", "low"),
                    AggregateSpec("max", "salary", "high"),
                    AggregateSpec("avg", "salary", "mean"),
                ]
            ),
            min_size=1,
            max_size=3,
            unique_by=lambda s: s.alias,
        )
    )
    filters = draw(_emp_filters)
    return QuerySpec(
        collections=["Emp"],
        filters={"Emp": _to_predicates("Emp", filters)} if filters else {},
        group_by=group,
        aggregates=functions,
    )


# -- the differential property -----------------------------------------------------


def check(mediator, spec, compare_keys):
    from repro.algebra.logical import validate_plan

    expected = reference.evaluate(spec, TABLES)
    optimized = mediator.plan(spec)
    validate_plan(optimized.plan)  # every chosen plan is structurally sound
    actual = mediator.query(spec)
    assert actual.count == len(expected), spec
    assert reference.fingerprint(actual.rows, compare_keys) == (
        reference.fingerprint(expected, compare_keys)
    ), spec


class TestDifferential:
    @given(spec=single_collection_specs())
    @settings(max_examples=40, deadline=None)
    def test_single_collection_queries(self, spec):
        mediator = build_mediator()
        keys = spec.projection or ["eid", "salary", "dept", "grade"]
        check(mediator, spec, keys)

    @given(spec=join_specs())
    @settings(max_examples=30, deadline=None)
    def test_join_queries(self, spec):
        mediator = build_mediator()
        check(mediator, spec, ["eid", "did", "budget"])

    @given(spec=aggregate_specs())
    @settings(max_examples=30, deadline=None)
    def test_aggregate_queries(self, spec):
        mediator = build_mediator()
        keys = list(spec.group_by) + [a.alias for a in spec.aggregates]
        check(mediator, spec, keys)

    def test_order_by_respected_end_to_end(self, mediator):
        spec = QuerySpec(
            collections=["Emp"],
            order_by=["salary"],
            order_descending=True,
            projection=["eid", "salary"],
        )
        result = mediator.query(spec)
        salaries = [r["salary"] for r in result.rows]
        assert salaries == sorted(salaries, reverse=True)
