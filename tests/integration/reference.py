"""A naive reference evaluator for QuerySpecs over raw row lists.

Used by the differential tests: whatever plan the optimizer picks and
however the executor runs it, the answer must equal this straightforward
evaluation (nested loops, no indexes, no cost model).
"""

from __future__ import annotations

from typing import Any

from repro.algebra.expressions import AttributeRef
from repro.algebra.logical import AggregateSpec
from repro.mediator.queryspec import QuerySpec

Row = dict[str, Any]


def evaluate(spec: QuerySpec, tables: dict[str, list[Row]]) -> list[Row]:
    """Evaluate a query spec directly over the raw rows."""
    # Filter each collection.
    filtered: dict[str, list[Row]] = {}
    for collection in spec.collections:
        rows = [dict(r) for r in tables[collection]]
        for predicate in spec.filters_for(collection):
            rows = [r for r in rows if predicate.evaluate(r)]
        filtered[collection] = rows

    # Join by nested loops in FROM order.
    current = [
        {"__tables__": {spec.collections[0]: row}, **row}
        for row in filtered[spec.collections[0]]
    ]
    placed = {spec.collections[0]}
    remaining = list(spec.collections[1:])
    while remaining:
        progressed = False
        for collection in list(remaining):
            connecting = spec.joins_between(placed, {collection})
            if not connecting and len(spec.collections) > 1:
                continue
            next_rows: list[Row] = []
            for combined in current:
                for row in filtered[collection]:
                    candidate_tables = dict(combined["__tables__"])
                    candidate_tables[collection] = row
                    if all(
                        _join_holds(join, candidate_tables)
                        for join in connecting
                    ):
                        merged = {
                            key: value
                            for key, value in combined.items()
                            if key != "__tables__"
                        }
                        merged.update(row)
                        merged["__tables__"] = candidate_tables
                        next_rows.append(merged)
            current = next_rows
            placed.add(collection)
            remaining.remove(collection)
            progressed = True
            break
        if not progressed:
            raise AssertionError(f"disconnected join graph: {remaining}")
    rows = [
        {key: value for key, value in row.items() if key != "__tables__"}
        for row in current
    ]

    # Grouping / aggregates.  ORDER BY keys missing from the projection
    # sort before projection (mirroring the optimizer's decoration rule).
    sorted_early = False
    if (
        spec.order_by
        and spec.projection is not None
        and not all(key in spec.projection for key in spec.order_by)
    ):
        rows = sorted(
            rows,
            key=lambda r: tuple(
                AttributeRef(k).evaluate(r) for k in spec.order_by
            ),
            reverse=spec.order_descending,
        )
        sorted_early = True
    if spec.aggregates or spec.group_by:
        rows = _aggregate(rows, spec.group_by, spec.aggregates)
    elif spec.projection is not None:
        renames = spec.projection_renames
        rows = [
            {
                name: AttributeRef(renames.get(name, name)).evaluate(row)
                for name in spec.projection
            }
            for row in rows
        ]
    if spec.distinct:
        seen = set()
        unique: list[Row] = []
        for row in rows:
            key = tuple(sorted(row.items()))
            if key not in seen:
                seen.add(key)
                unique.append(row)
        rows = unique
    if spec.order_by and not sorted_early:
        rows = sorted(
            rows,
            key=lambda r: tuple(
                AttributeRef(k).evaluate(r) for k in spec.order_by
            ),
            reverse=spec.order_descending,
        )
    return rows


def _join_holds(join, tables: dict[str, Row]) -> bool:
    left = join.left
    right = join.right
    left_row = tables.get(left.collection)
    right_row = tables.get(right.collection)
    if left_row is None or right_row is None:
        return True  # the other side is not placed yet
    return left_row[left.name] == right_row[right.name]


def _aggregate(
    rows: list[Row], group_by: list[str], aggregates: list[AggregateSpec]
) -> list[Row]:
    groups: dict[tuple, list[Row]] = {}
    for row in rows:
        key = tuple(AttributeRef(k).evaluate(row) for k in group_by)
        groups.setdefault(key, []).append(row)
    if not groups and not group_by:
        groups[()] = []
    results = []
    for key, members in groups.items():
        result: Row = dict(zip(group_by, key))
        for spec in aggregates:
            result[spec.alias] = _aggregate_value(spec, members)
        results.append(result)
    return results


def _aggregate_value(spec: AggregateSpec, rows: list[Row]) -> Any:
    if spec.function == "count":
        if spec.attribute is None:
            return len(rows)
        return sum(1 for r in rows if r.get(spec.attribute) is not None)
    values = [r[spec.attribute] for r in rows if r.get(spec.attribute) is not None]
    if not values:
        return None
    if spec.function == "sum":
        return sum(values)
    if spec.function == "avg":
        return sum(values) / len(values)
    if spec.function == "min":
        return min(values)
    return max(values)


def fingerprint(rows: list[Row], keys: list[str]) -> list[tuple]:
    """Order-insensitive multiset view over selected attributes."""
    return sorted(
        tuple(AttributeRef(k).evaluate(row) for k in keys) for row in rows
    )
