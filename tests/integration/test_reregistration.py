"""The §2.1 administrative re-registration workflow.

"This interface is necessary when the cost formulas are improved by the
wrapper implementor, or the statistics become out of date."  A relational
source keeps growing after registration; its exported statistics drift
until the administrator re-registers the wrapper.
"""

import pytest

from repro.mediator.mediator import Mediator
from repro.sources.relationaldb import RelationalDatabase
from repro.wrappers import RelationalWrapper


@pytest.fixture
def setup():
    mediator = Mediator()
    db = RelationalDatabase()
    db.create_table(
        "Events",
        [{"eid": i, "kind": i % 5} for i in range(100)],
        row_size=40,
        indexed_columns=["eid"],
    )
    wrapper = RelationalWrapper("log", db, export_rules=True)
    mediator.register(wrapper)
    return mediator, db, wrapper


class TestStatisticsDrift:
    def test_catalog_snapshot_goes_stale(self, setup):
        mediator, db, _wrapper = setup
        for i in range(100, 1100):
            db.insert("Events", {"eid": i, "kind": i % 5})
        # The catalog still reflects registration time...
        assert mediator.catalog.statistics.get("Events").count_object == 100
        # ...so the cardinality estimate is ~10x off.
        estimate = mediator.plan("SELECT * FROM Events").estimate
        submit = estimate.plan
        assert estimate.root.count_object == pytest.approx(100.0)

    def test_reregistration_refreshes_everything(self, setup):
        mediator, db, wrapper = setup
        for i in range(100, 1100):
            db.insert("Events", {"eid": i, "kind": i % 5})
        rule_count = mediator.register(wrapper)  # re-register
        assert mediator.catalog.statistics.get("Events").count_object == 1100
        estimate = mediator.plan("SELECT * FROM Events").estimate
        assert estimate.root.count_object == pytest.approx(1100.0)
        # Rules were replaced, not duplicated.
        assert len(mediator.repository.rules_for_source("log")) == rule_count

    def test_improved_formulas_take_effect(self, setup):
        """Re-registering after the implementor 'improves' the formulas
        (here: toggling rule export on a statistics-only wrapper)."""
        mediator, db, _wrapper = setup
        plain = RelationalWrapper("log", db, export_rules=False)
        mediator.register(plain)
        assert mediator.repository.rules_for_source("log") == []
        improved = RelationalWrapper("log", db, export_rules=True)
        count = mediator.register(improved)
        assert count > 0
        assert len(mediator.repository.rules_for_source("log")) == count

    def test_answers_always_fresh_regardless_of_stale_stats(self, setup):
        """Stale statistics mislead the optimizer, never the executor."""
        mediator, db, _wrapper = setup
        for i in range(100, 200):
            db.insert("Events", {"eid": i, "kind": i % 5})
        result = mediator.query("SELECT * FROM Events WHERE kind = 0")
        assert result.count == 40  # 200 rows / 5 kinds
