"""Unit tests for the simulated clock."""

import pytest

from repro.sources.clock import ClockStats, CostProfile, SimClock, Stopwatch


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ms == 0.0

    def test_page_read_charges_io(self):
        clock = SimClock(CostProfile(io_ms=25.0))
        clock.charge_page_read(4)
        assert clock.now_ms == 100.0
        assert clock.stats.page_reads == 4

    def test_objects_charge_cpu(self):
        clock = SimClock(CostProfile(cpu_ms_per_object=9.0))
        clock.charge_objects(10)
        assert clock.now_ms == 90.0
        assert clock.stats.objects_processed == 10

    def test_message_charges_latency_and_bytes(self):
        clock = SimClock(CostProfile(net_ms_per_message=100.0, net_ms_per_byte=0.01))
        clock.charge_message(payload_bytes=1000)
        assert clock.now_ms == 110.0
        assert clock.stats.messages == 1
        assert clock.stats.bytes_shipped == 1000

    def test_seek_charges_overhead(self):
        clock = SimClock(CostProfile(seek_ms=5.0))
        clock.charge_seek()
        assert clock.now_ms == 5.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_elapsed_since(self):
        clock = SimClock()
        clock.advance(10.0)
        mark = clock.now_ms
        clock.advance(5.0)
        assert clock.elapsed_since(mark) == 5.0

    def test_reset(self):
        clock = SimClock()
        clock.charge_page_read()
        clock.reset()
        assert clock.now_ms == 0.0
        assert clock.stats == ClockStats()

    def test_default_profile_matches_paper(self):
        profile = CostProfile()
        assert profile.io_ms == 25.0
        assert profile.cpu_ms_per_object == 9.0


class TestStopwatch:
    def test_measures_span(self):
        clock = SimClock()
        clock.advance(7.0)
        watch = Stopwatch(clock)
        clock.advance(3.0)
        assert watch.elapsed_ms == 3.0

    def test_restart(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(3.0)
        watch.restart()
        assert watch.elapsed_ms == 0.0
