"""Unit tests for the simulated clock."""

import pytest

from repro.sources.clock import (
    ClockStats,
    CostProfile,
    ParallelClock,
    SimClock,
    Stopwatch,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ms == 0.0

    def test_page_read_charges_io(self):
        clock = SimClock(CostProfile(io_ms=25.0))
        clock.charge_page_read(4)
        assert clock.now_ms == 100.0
        assert clock.stats.page_reads == 4

    def test_objects_charge_cpu(self):
        clock = SimClock(CostProfile(cpu_ms_per_object=9.0))
        clock.charge_objects(10)
        assert clock.now_ms == 90.0
        assert clock.stats.objects_processed == 10

    def test_message_charges_latency_and_bytes(self):
        clock = SimClock(CostProfile(net_ms_per_message=100.0, net_ms_per_byte=0.01))
        clock.charge_message(payload_bytes=1000)
        assert clock.now_ms == 110.0
        assert clock.stats.messages == 1
        assert clock.stats.bytes_shipped == 1000

    def test_seek_charges_overhead(self):
        clock = SimClock(CostProfile(seek_ms=5.0))
        clock.charge_seek()
        assert clock.now_ms == 5.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_elapsed_since(self):
        clock = SimClock()
        clock.advance(10.0)
        mark = clock.now_ms
        clock.advance(5.0)
        assert clock.elapsed_since(mark) == 5.0

    def test_reset(self):
        clock = SimClock()
        clock.charge_page_read()
        clock.reset()
        assert clock.now_ms == 0.0
        assert clock.stats == ClockStats()

    def test_default_profile_matches_paper(self):
        profile = CostProfile()
        assert profile.io_ms == 25.0
        assert profile.cpu_ms_per_object == 9.0


class TestMakespan:
    def test_empty_wave_is_free(self):
        assert ParallelClock.makespan([]) == 0.0

    def test_unbounded_is_max(self):
        assert ParallelClock.makespan([5.0, 3.0, 4.0]) == 5.0

    def test_single_slot_is_sum(self):
        assert ParallelClock.makespan([5.0, 3.0, 4.0], max_concurrency=1) == 12.0

    def test_two_slots_list_schedules(self):
        # Greedy earliest-slot: 6 | 2+2+2 = both slots finish at 6.
        assert ParallelClock.makespan([6.0, 2.0, 2.0, 2.0], max_concurrency=2) == 6.0

    def test_cap_beyond_branch_count_is_max(self):
        assert ParallelClock.makespan([4.0, 1.0], max_concurrency=16) == 4.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ParallelClock.makespan([1.0, -2.0])


class TestParallelClock:
    def test_wave_advances_by_makespan_not_sum(self):
        clock = SimClock()
        parallel = ParallelClock(clock)
        parallel.begin_wave()
        parallel.charge_branch(30.0)
        parallel.charge_branch(50.0)
        parallel.charge_branch(20.0)
        wave = parallel.commit_wave()
        assert clock.now_ms == 50.0
        assert wave.sequential_ms == 100.0
        assert wave.makespan_ms == 50.0
        assert wave.saved_ms == 50.0

    def test_messages_stay_serialized(self):
        clock = SimClock(CostProfile(net_ms_per_message=10.0))
        parallel = ParallelClock(clock)
        parallel.begin_wave()
        parallel.charge_message()
        parallel.charge_branch(100.0)
        parallel.charge_message()
        parallel.charge_branch(40.0)
        parallel.commit_wave()
        # 2 messages (sum) + max(100, 40).
        assert clock.now_ms == 120.0
        assert clock.stats.messages == 2

    def test_concurrency_cap_applies(self):
        clock = SimClock()
        parallel = ParallelClock(clock, max_concurrency=2)
        parallel.begin_wave()
        for duration in (10.0, 10.0, 10.0, 10.0):
            parallel.charge_branch(duration)
        wave = parallel.commit_wave()
        assert wave.makespan_ms == 20.0
        assert clock.now_ms == 20.0

    def test_cumulative_stats_accumulate(self):
        parallel = ParallelClock(SimClock())
        for _ in range(2):
            parallel.begin_wave()
            parallel.charge_branch(4.0)
            parallel.charge_branch(6.0)
            parallel.commit_wave()
        assert parallel.stats.waves == 2
        assert parallel.stats.branches == 4
        assert parallel.stats.sequential_ms == 20.0
        assert parallel.stats.makespan_ms == 12.0
        assert parallel.stats.saved_ms == 8.0

    def test_waves_do_not_nest(self):
        parallel = ParallelClock(SimClock())
        parallel.begin_wave()
        with pytest.raises(RuntimeError):
            parallel.begin_wave()

    def test_branch_outside_wave_rejected(self):
        parallel = ParallelClock(SimClock())
        with pytest.raises(RuntimeError):
            parallel.charge_branch(1.0)

    def test_commit_without_wave_rejected(self):
        parallel = ParallelClock(SimClock())
        with pytest.raises(RuntimeError):
            parallel.commit_wave()

    def test_bad_concurrency_rejected(self):
        with pytest.raises(ValueError):
            ParallelClock(SimClock(), max_concurrency=0)


class TestStopwatch:
    def test_measures_span(self):
        clock = SimClock()
        clock.advance(7.0)
        watch = Stopwatch(clock)
        clock.advance(3.0)
        assert watch.elapsed_ms == 3.0

    def test_restart(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(3.0)
        watch.restart()
        assert watch.elapsed_ms == 0.0
