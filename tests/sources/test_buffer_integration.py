"""Tests for the buffer pool integrated into the storage engine."""

import pytest

from repro.sources.clock import CostProfile, SimClock
from repro.sources.storage_engine import StorageEngine


def make_engine(buffer_pages):
    engine = StorageEngine(
        SimClock(CostProfile(io_ms=10.0, cpu_ms_per_object=0.0)),
        buffer_pages=buffer_pages,
    )
    engine.create_collection(
        "T",
        [{"id": i} for i in range(100)],
        object_size=40,
        indexed_attributes=["id"],
        placement="sequential",
        page_size=400,  # 10 rows per page -> 10 pages
        fill_factor=1.0,
    )
    return engine


class TestColdCache:
    def test_default_recharges_every_operation(self):
        engine = make_engine(buffer_pages=0)
        list(engine.seq_scan("T"))
        list(engine.seq_scan("T"))
        assert engine.clock.stats.page_reads == 20


class TestWarmCache:
    def test_repeat_scan_is_free_when_everything_fits(self):
        engine = make_engine(buffer_pages=10)
        list(engine.seq_scan("T"))
        first = engine.clock.stats.page_reads
        list(engine.seq_scan("T"))
        assert engine.clock.stats.page_reads == first  # all hits

    def test_small_pool_still_misses(self):
        engine = make_engine(buffer_pages=2)
        list(engine.seq_scan("T"))
        list(engine.seq_scan("T"))
        # Sequential flooding through a 2-page LRU: everything misses.
        assert engine.clock.stats.page_reads == 20

    def test_index_point_lookups_become_hits(self):
        engine = make_engine(buffer_pages=10)
        list(engine.index_scan("T", "id", value=5))
        first = engine.clock.stats.page_reads
        list(engine.index_scan("T", "id", value=5))
        assert engine.clock.stats.page_reads == first

    def test_warm_cache_reduces_measured_time(self):
        cold = make_engine(buffer_pages=0)
        warm = make_engine(buffer_pages=10)
        for engine in (cold, warm):
            list(engine.seq_scan("T"))
            list(engine.seq_scan("T"))
        assert warm.clock.now_ms < cold.clock.now_ms

    def test_within_operation_distinct_page_accounting_unchanged(self):
        """Inside one index scan, each page still costs exactly one read
        on a cold pool — the Yao quantity is untouched by buffering."""
        cold = make_engine(buffer_pages=0)
        warm = make_engine(buffer_pages=10)
        for engine in (cold, warm):
            engine.clock.reset()
            list(engine.index_scan("T", "id", low=0, high=49))
        assert cold.clock.stats.page_reads == warm.clock.stats.page_reads == 5
