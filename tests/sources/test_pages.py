"""Unit tests for pages, placement policies, and the buffer pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageError
from repro.sources.clock import SimClock
from repro.sources.pages import (
    BufferPool,
    ClusteredPlacement,
    Page,
    PagedFile,
    ScatteredPlacement,
    SequentialPlacement,
)


def rows(n):
    return [{"id": i} for i in range(n)]


class TestPage:
    def test_append_returns_slot(self):
        page = Page(0, capacity=100)
        assert page.append({"x": 1}, 40) == 0
        assert page.append({"x": 2}, 40) == 1
        assert len(page) == 2

    def test_overflow_rejected(self):
        page = Page(0, capacity=100)
        page.append({}, 80)
        with pytest.raises(PageError):
            page.append({}, 30)

    def test_oversized_record_rejected(self):
        with pytest.raises(PageError):
            Page(0, capacity=10).append({}, 11)


class TestPagedFile:
    def test_bulk_load_packs_by_fill_factor(self):
        # 4096 * 0.96 = 3932 usable; 56-byte objects -> 70 per page.
        file = PagedFile(page_size=4096, fill_factor=0.96)
        file.bulk_load(rows(700), record_size=56)
        assert file.page_count == 10
        assert len(file.pages[0]) == 70

    def test_paper_page_count(self):
        """70 000 AtomicParts of 56 bytes on 4096-byte pages at 96 % fill
        occupy the paper's 1000 pages."""
        file = PagedFile(page_size=4096, fill_factor=0.96)
        file.bulk_load(rows(70000), record_size=56)
        assert file.page_count == 1000

    def test_rids_returned_in_input_order(self):
        file = PagedFile()
        rids = file.bulk_load(rows(10), record_size=100)
        for i, rid in enumerate(rids):
            assert file.fetch(rid) == {"id": i}

    def test_double_load_rejected(self):
        file = PagedFile()
        file.bulk_load(rows(1), record_size=10)
        with pytest.raises(PageError):
            file.bulk_load(rows(1), record_size=10)

    def test_bad_fill_factor(self):
        with pytest.raises(PageError):
            PagedFile(fill_factor=0.0)
        with pytest.raises(PageError):
            PagedFile(fill_factor=1.5)

    def test_variable_record_sizes(self):
        file = PagedFile(page_size=100, fill_factor=1.0)
        file.bulk_load(rows(4), record_size=lambda r: 30 + r["id"] * 20)
        assert file.record_count == 4
        assert file.total_bytes == 30 + 50 + 70 + 90

    def test_fetch_bad_rid(self):
        file = PagedFile()
        file.bulk_load(rows(1), record_size=10)
        with pytest.raises(PageError):
            file.fetch((5, 0))
        with pytest.raises(PageError):
            file.fetch((0, 5))

    def test_scan_rids_covers_everything(self):
        file = PagedFile(page_size=64, fill_factor=1.0)
        file.bulk_load(rows(10), record_size=30)
        scanned = list(file.scan_rids())
        assert len(scanned) == 10
        assert {row["id"] for _rid, row in scanned} == set(range(10))


class TestPlacement:
    def test_sequential_preserves_order(self):
        assert SequentialPlacement().order(rows(5)) == [0, 1, 2, 3, 4]

    def test_clustered_sorts_by_attribute(self):
        data = [{"k": 3}, {"k": 1}, {"k": 2}]
        assert ClusteredPlacement("k").order(data) == [1, 2, 0]

    def test_scattered_is_deterministic_permutation(self):
        order1 = ScatteredPlacement(seed=7).order(rows(100))
        order2 = ScatteredPlacement(seed=7).order(rows(100))
        assert order1 == order2
        assert sorted(order1) == list(range(100))
        assert order1 != list(range(100))

    def test_scattered_seed_changes_order(self):
        assert ScatteredPlacement(1).order(rows(50)) != ScatteredPlacement(2).order(
            rows(50)
        )

    def test_clustered_placement_groups_keys_on_pages(self):
        file = PagedFile(page_size=100, fill_factor=1.0)
        data = [{"k": i % 10} for i in range(50)]
        file.bulk_load(data, record_size=20, placement=ClusteredPlacement("k"))
        # Every page holds 5 records; with clustering, each page holds at
        # most 2 distinct keys (5 copies of each key are contiguous).
        for page in file.pages:
            assert len({r["k"] for r in page.records}) <= 2

    @given(n=st.integers(min_value=1, max_value=200), seed=st.integers(0, 2**16))
    @settings(max_examples=30)
    def test_property_scatter_is_bijection(self, n, seed):
        order = ScatteredPlacement(seed).order(rows(n))
        assert sorted(order) == list(range(n))


class TestBufferPool:
    def make(self, capacity):
        file = PagedFile(page_size=64, fill_factor=1.0)
        file.bulk_load(rows(12), record_size=30)  # 2 per page -> 6 pages
        clock = SimClock()
        return BufferPool(file, clock, capacity=capacity), clock

    def test_capacity_zero_always_misses(self):
        pool, clock = self.make(0)
        pool.access(0)
        pool.access(0)
        assert pool.misses == 2
        assert clock.stats.page_reads == 2

    def test_hit_is_free(self):
        pool, clock = self.make(4)
        pool.access(0)
        pool.access(0)
        assert (pool.hits, pool.misses) == (1, 1)
        assert clock.stats.page_reads == 1

    def test_lru_eviction(self):
        pool, _clock = self.make(2)
        pool.access(0)
        pool.access(1)
        pool.access(2)  # evicts page 0
        pool.access(0)  # miss again
        assert pool.misses == 4

    def test_mru_refresh_prevents_eviction(self):
        pool, _clock = self.make(2)
        pool.access(0)
        pool.access(1)
        pool.access(0)  # refresh 0; 1 becomes LRU
        pool.access(2)  # evicts 1
        pool.access(0)  # still resident
        assert pool.hits == 2

    def test_fetch_returns_row(self):
        pool, _clock = self.make(2)
        assert pool.fetch((0, 1)) == {"id": 1}

    def test_clear(self):
        pool, _clock = self.make(2)
        pool.access(0)
        pool.clear()
        pool.access(0)
        assert pool.misses == 1
