"""Tests for the storage engine, the object store, and the relational
engine — including the physical Yao behaviour the §5 experiment rests on."""

import pytest

from repro.core.selectivity import yao_exact
from repro.errors import StorageError
from repro.sources.clock import CostProfile, SimClock
from repro.sources.objectdb import OO7_DEVICE, ObjectDatabase
from repro.sources.relationaldb import RelationalDatabase
from repro.sources.storage_engine import StorageEngine


def make_engine(n=700, indexed=("id",), placement="scattered"):
    engine = StorageEngine(SimClock(CostProfile(io_ms=25.0, cpu_ms_per_object=9.0)))
    rows = [{"id": i, "group": i % 10} for i in range(n)]
    engine.create_collection(
        "parts",
        rows,
        object_size=56,
        indexed_attributes=indexed,
        placement=placement,
        page_size=4096,
        fill_factor=0.96,
    )
    return engine


class TestEngineBasics:
    def test_duplicate_collection_rejected(self):
        engine = make_engine()
        with pytest.raises(StorageError):
            engine.create_collection("parts", [], object_size=10)

    def test_unknown_collection(self):
        with pytest.raises(StorageError):
            StorageEngine().collection("nope")

    def test_indexing_missing_attribute_rejected(self):
        engine = StorageEngine()
        with pytest.raises(StorageError):
            engine.create_collection(
                "x", [{"a": 1}], object_size=10, indexed_attributes=["b"]
            )

    def test_page_count(self):
        engine = make_engine(700)
        assert engine.page_count("parts") == 10  # 70 objects/page

    def test_drop_collection(self):
        engine = make_engine()
        engine.drop_collection("parts")
        assert engine.collection_names() == []


class TestSeqScan:
    def test_returns_all_rows(self):
        engine = make_engine(700)
        rows = list(engine.seq_scan("parts"))
        assert len(rows) == 700
        assert {r["id"] for r in rows} == set(range(700))

    def test_charges_every_page_once(self):
        engine = make_engine(700)
        list(engine.seq_scan("parts"))
        assert engine.clock.stats.page_reads == 10
        assert engine.clock.stats.objects_processed == 700

    def test_elapsed_time_structure(self):
        engine = make_engine(700)
        start = engine.clock.now_ms
        list(engine.seq_scan("parts"))
        elapsed = engine.clock.elapsed_since(start)
        assert elapsed == pytest.approx(10 * 25.0 + 700 * 9.0)


class TestIndexScan:
    def test_exact_match(self):
        engine = make_engine()
        rows = list(engine.index_scan("parts", "id", value=123))
        assert rows == [{"id": 123, "group": 3}]

    def test_range(self):
        engine = make_engine()
        rows = list(engine.index_scan("parts", "id", low=10, high=19))
        assert sorted(r["id"] for r in rows) == list(range(10, 20))

    def test_exclusive_range(self):
        engine = make_engine()
        rows = list(
            engine.index_scan(
                "parts", "id", low=10, high=20, low_inclusive=False,
                high_inclusive=False,
            )
        )
        assert sorted(r["id"] for r in rows) == list(range(11, 20))

    def test_missing_index_rejected(self):
        engine = make_engine(indexed=())
        with pytest.raises(StorageError):
            list(engine.index_scan("parts", "id", value=1))

    def test_value_and_range_exclusive(self):
        engine = make_engine()
        with pytest.raises(StorageError):
            list(engine.index_scan("parts", "id", value=1, low=0))

    def test_distinct_pages_charged_once(self):
        engine = make_engine(700, placement="sequential")
        # ids 0..69 all live on page 0 under sequential placement.
        list(engine.index_scan("parts", "id", low=0, high=69))
        assert engine.clock.stats.page_reads == 1

    def test_scattered_placement_spreads_pages(self):
        engine = make_engine(700, placement="scattered")
        list(engine.index_scan("parts", "id", low=0, high=69))
        # 70 random objects over 10 pages: virtually certain to touch all.
        assert engine.clock.stats.page_reads >= 9

    def test_clustered_placement_localizes_pages(self):
        engine = make_engine(700, placement="clustered:id")
        list(engine.index_scan("parts", "id", low=0, high=69))
        assert engine.clock.stats.page_reads <= 2


class TestYaoBehaviour:
    """The load-bearing physical property: with scattered placement, the
    pages fetched by an index scan track Yao's expectation."""

    @pytest.mark.parametrize("selectivity", [0.01, 0.05, 0.2, 0.5])
    def test_pages_follow_yao(self, selectivity):
        n, per_page = 7000, 70
        engine = make_engine(n, placement="scattered")
        pages = engine.page_count("parts")
        selected = int(selectivity * n)
        start = engine.clock.stats.page_reads
        list(engine.index_scan("parts", "id", low=0, high=selected - 1))
        fetched = engine.clock.stats.page_reads - start
        expected = yao_exact(n, pages, selected)
        assert fetched == pytest.approx(expected, rel=0.10)

    def test_pages_saturate(self):
        engine = make_engine(7000, placement="scattered")
        pages = engine.page_count("parts")
        list(engine.index_scan("parts", "id", low=0, high=6999))
        assert engine.clock.stats.page_reads == pages


class TestStatisticsExport:
    def test_extent_statistics(self):
        engine = make_engine(700)
        stats = engine.export_statistics("parts")
        assert stats.count_object == 700
        assert stats.total_size == 700 * 56
        assert stats.object_size == 56

    def test_attribute_statistics(self):
        engine = make_engine(700)
        stats = engine.export_statistics("parts")
        id_stats = stats.attribute("id")
        assert id_stats.indexed
        assert id_stats.count_distinct == 700
        assert id_stats.min_value == 0
        assert id_stats.max_value == 699
        group_stats = stats.attribute("group")
        assert not group_stats.indexed
        assert group_stats.count_distinct == 10


class TestObjectDatabase:
    def test_default_device_is_paper_profile(self):
        db = ObjectDatabase()
        assert db.clock.profile is OO7_DEVICE

    def test_create_extent_defaults_scattered(self):
        db = ObjectDatabase()
        db.create_extent(
            "AtomicParts",
            [{"Id": i} for i in range(700)],
            object_size=56,
            indexed_attributes=["Id"],
        )
        _rows, _ms, pages = db.timed_index_scan("AtomicParts", "Id", low=0, high=69)
        assert pages >= 9  # scattered, not clustered

    def test_timed_scans_report_structure(self):
        db = ObjectDatabase()
        db.create_extent(
            "E", [{"Id": i} for i in range(140)], object_size=56,
            indexed_attributes=["Id"],
        )
        rows, elapsed, pages = db.timed_seq_scan("E")
        assert len(rows) == 140
        assert pages == 2
        assert elapsed == pytest.approx(2 * 25.0 + 140 * 9.0)


class TestRelationalDatabase:
    def make(self):
        db = RelationalDatabase()
        db.create_table(
            "emp",
            [{"id": i, "dept": i % 3} for i in range(10)],
            row_size=50,
            indexed_columns=["id"],
        )
        return db

    def test_insert_updates_everything(self):
        db = self.make()
        db.insert("emp", {"id": 10, "dept": 1})
        assert db.row_count("emp") == 11
        assert db.lookup("emp", "id", 10) == [{"id": 10, "dept": 1}]
        assert db.clock.stats.page_writes == 1

    def test_insert_missing_indexed_column_rejected(self):
        db = self.make()
        with pytest.raises(StorageError):
            db.insert("emp", {"dept": 1})

    def test_statistics_track_inserts(self):
        db = self.make()
        before = db.export_statistics("emp").count_object
        db.insert("emp", {"id": 99, "dept": 0})
        after = db.export_statistics("emp").count_object
        assert after == before + 1

    def test_inserts_fill_new_pages(self):
        db = RelationalDatabase()
        db.create_table("t", [], row_size=60, page_size=128, fill_factor=1.0)
        for i in range(5):
            db.insert("t", {"id": i})
        assert db.collection("t").file.page_count == 3  # 2 rows per page
