"""Unit and property tests for the B+tree index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.sources.btree import BPlusTree


def build(keys, order=4):
    tree = BPlusTree(order=order)
    for i, key in enumerate(keys):
        tree.insert(key, (i // 10, i % 10))
    return tree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert tree.search(5) == []
        assert list(tree.range_search()) == []
        assert len(tree) == 0
        assert tree.height() == 1

    def test_insert_and_search(self):
        tree = build([5, 3, 8])
        assert tree.search(3) == [(0, 1)]
        assert tree.search(9) == []

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree()
        tree.insert(7, (0, 0))
        tree.insert(7, (0, 1))
        assert tree.search(7) == [(0, 0), (0, 1)]
        assert tree.key_count == 1
        assert tree.entry_count == 2

    def test_none_key_rejected(self):
        with pytest.raises(IndexError_):
            BPlusTree().insert(None, (0, 0))

    def test_bad_order_rejected(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=2)

    def test_string_keys(self):
        tree = build(["pear", "apple", "mango"])
        assert tree.search("apple") == [(0, 1)]
        keys = [k for k, _ in tree.range_search("b", "z")]
        assert keys == ["mango", "pear"]


class TestSplitsAndHeight:
    def test_leaf_split_grows_height(self):
        tree = build(list(range(20)), order=4)
        assert tree.height() >= 2
        for key in range(20):
            assert tree.search(key), key

    def test_large_tree_correct(self):
        keys = list(range(2000))
        random.Random(42).shuffle(keys)
        tree = build(keys, order=8)
        assert tree.height() >= 3
        for key in (0, 999, 1999, 1234):
            assert len(tree.search(key)) == 1

    def test_visits_match_height(self):
        tree = build(list(range(500)), order=4)
        assert tree.visits_for(250) == tree.height()

    def test_keys_iterates_in_order(self):
        keys = [9, 1, 7, 3, 5]
        tree = build(keys)
        assert list(tree.keys()) == sorted(keys)


class TestRangeSearch:
    def test_inclusive_range(self):
        tree = build(list(range(10)))
        keys = [k for k, _ in tree.range_search(3, 6)]
        assert keys == [3, 4, 5, 6]

    def test_exclusive_bounds(self):
        tree = build(list(range(10)))
        keys = [
            k
            for k, _ in tree.range_search(
                3, 6, low_inclusive=False, high_inclusive=False
            )
        ]
        assert keys == [4, 5]

    def test_open_low(self):
        tree = build(list(range(10)))
        assert [k for k, _ in tree.range_search(None, 2)] == [0, 1, 2]

    def test_open_high(self):
        tree = build(list(range(10)))
        assert [k for k, _ in tree.range_search(7, None)] == [7, 8, 9]

    def test_full_range(self):
        tree = build(list(range(10)))
        assert [k for k, _ in tree.range_search()] == list(range(10))

    def test_empty_range(self):
        tree = build(list(range(10)))
        assert list(tree.range_search(6, 3)) == []

    def test_range_spanning_leaf_boundaries(self):
        tree = build(list(range(100)), order=4)
        keys = [k for k, _ in tree.range_search(10, 90)]
        assert keys == list(range(10, 91))

    def test_bounds_absent_from_tree(self):
        tree = build([0, 10, 20, 30])
        assert [k for k, _ in tree.range_search(5, 25)] == [10, 20]


class TestProperties:
    @given(
        keys=st.lists(st.integers(-1000, 1000), min_size=0, max_size=300),
        order=st.integers(3, 16),
    )
    @settings(max_examples=50)
    def test_property_all_inserted_keys_found(self, keys, order):
        tree = BPlusTree(order=order)
        for i, key in enumerate(keys):
            tree.insert(key, (i, 0))
        for key in keys:
            assert tree.search(key)
        assert list(tree.keys()) == sorted(set(keys))

    @given(
        keys=st.lists(st.integers(0, 500), min_size=1, max_size=200, unique=True),
        low=st.integers(0, 500),
        high=st.integers(0, 500),
    )
    @settings(max_examples=50)
    def test_property_range_matches_filter(self, keys, low, high):
        tree = BPlusTree(order=5)
        for i, key in enumerate(keys):
            tree.insert(key, (i, 0))
        found = [k for k, _ in tree.range_search(low, high)]
        assert found == sorted(k for k in keys if low <= k <= high)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_property_entry_count_tracks_inserts(self, keys):
        tree = BPlusTree(order=4)
        for i, key in enumerate(keys):
            tree.insert(key, (i, 0))
        assert len(tree) == len(keys)
        assert tree.key_count == len(set(keys))

    def test_build_classmethod(self):
        tree = BPlusTree.build([(k, (k, 0)) for k in range(10)], order=4)
        assert len(tree) == 10
