"""Root fixtures shared across the test suite."""

import pytest

from tests.federation_fixtures import (
    build_files_wrapper,
    build_oo7_wrapper,
    build_sales_wrapper,
)
from repro.mediator.mediator import Mediator


@pytest.fixture
def federation():
    """The standard three-source federation (see federation_fixtures)."""
    mediator = Mediator()
    mediator.register(build_oo7_wrapper())
    mediator.register(build_sales_wrapper())
    mediator.register(build_files_wrapper())
    return mediator
