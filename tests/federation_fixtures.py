"""Shared fixtures: a small multi-source federation.

Three wrappers mirror the paper's heterogeneity spectrum:

* ``oo7`` — object store with OO7 data, full Yao cost rules;
* ``sales`` — relational source, statistics only;
* ``files`` — flat file, scan-only, exports nothing.
"""

from repro.mediator.mediator import Mediator  # noqa: F401 (re-exported)
from repro.oo7 import TINY, load_database
from repro.sources.relationaldb import RelationalDatabase
from repro.wrappers import FlatFileWrapper, ObjectStoreWrapper, RelationalWrapper


def build_oo7_wrapper(export_rules=True):
    return ObjectStoreWrapper("oo7", load_database(TINY), export_rules=export_rules)


def build_sales_wrapper():
    db = RelationalDatabase()
    db.create_table(
        "Suppliers",
        [
            {"sid": i, "partType": f"type{i % 10:03d}", "city": f"city{i % 5}"}
            for i in range(50)
        ],
        row_size=40,
        indexed_columns=["sid"],
    )
    db.create_table(
        "Orders",
        [
            {"oid": i, "supplier": i % 50, "qty": (i * 7) % 100}
            for i in range(400)
        ],
        row_size=32,
        indexed_columns=["oid", "supplier"],
    )
    return RelationalWrapper("sales", db)


def build_files_wrapper():
    return FlatFileWrapper(
        "files",
        "AuditLog",
        rows=[{"entry": i, "severity": i % 3} for i in range(120)],
    )

