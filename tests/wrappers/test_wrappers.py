"""Tests for the concrete wrappers and their cost-info exports."""

import pytest

from repro.algebra.builders import scan
from repro.algebra.expressions import Comparison, attr, lit
from repro.algebra.logical import Scan, Select
from repro.cdl import compile_source
from repro.errors import CapabilityError, StorageError
from repro.sources.objectdb import ObjectDatabase
from repro.sources.relationaldb import RelationalDatabase
from repro.wrappers import (
    FlatFileWrapper,
    ObjectStoreWrapper,
    RelationalWrapper,
    WebSourceWrapper,
    parse_delimited,
)


def make_objectstore(n=700, clustering="scattered"):
    db = ObjectDatabase()
    db.create_extent(
        "AtomicParts",
        [{"Id": i, "buildDate": i % 100} for i in range(n)],
        object_size=56,
        indexed_attributes=["Id"],
        clustering=clustering,
    )
    return ObjectStoreWrapper("oo7", db)


class TestObjectStoreWrapper:
    def test_exports_statistics(self):
        wrapper = make_objectstore()
        info = wrapper.export_cost_info()
        stats = info.statistics[0]
        assert stats.name == "AtomicParts"
        assert stats.count_object == 700
        assert stats.attribute("Id").indexed

    def test_exported_cdl_compiles(self):
        wrapper = make_objectstore()
        info = wrapper.export_cost_info()
        assert info.cdl_source is not None
        compiled = compile_source(
            info.cdl_source, known_collections={"AtomicParts"},
            known_attributes={"Id"},
        )
        # scan + (1 equality + 4 range) rules for the indexed attribute
        assert len(compiled.rules) == 6
        assert compiled.variables["IO"] == 25.0
        assert compiled.variables["Output"] == 9.0

    def test_compiled_info_merges_cdl_and_statistics(self):
        wrapper = make_objectstore()
        compiled = wrapper.export_cost_info().compiled()
        assert [s.name for s in compiled.statistics] == ["AtomicParts"]
        assert len(compiled.rules) == 6

    def test_rules_are_collection_bound(self):
        wrapper = make_objectstore()
        compiled = wrapper.export_cost_info().compiled()
        select_rules = [
            r for r in compiled.rules if r.head.operator == "select"
        ]
        node = Select(
            Scan("AtomicParts"), Comparison("<=", attr("Id"), lit(100))
        )
        assert any(r.match(node) is not None for r in select_rules)

    def test_no_rules_when_disabled(self):
        db = ObjectDatabase()
        db.create_extent("E", [{"Id": 1}], object_size=56)
        wrapper = ObjectStoreWrapper("oo7", db, export_rules=False)
        assert wrapper.export_cost_info().cdl_source is None

    def test_clustered_rules_differ_from_scattered(self):
        scattered = make_objectstore(clustering="scattered")
        clustered = make_objectstore(clustering="clustered:Id")
        s_cdl = scattered.export_cost_info().cdl_source
        c_cdl = clustered.export_cost_info().cdl_source
        assert "exp(" in s_cdl  # Yao formula
        assert "ceil(" in c_cdl  # consecutive pages

    def test_execute_select_measures_time(self):
        wrapper = make_objectstore()
        plan = Select(Scan("AtomicParts"), Comparison("<=", attr("Id"), lit(69)))
        result = wrapper.execute(plan)
        assert result.count == 70
        assert result.total_time_ms > 0
        assert 0 < result.time_first_ms <= result.total_time_ms

    def test_collection_names(self):
        assert make_objectstore().collection_names() == ["AtomicParts"]


class TestRelationalWrapper:
    def make(self, export_rules=False):
        db = RelationalDatabase()
        db.create_table(
            "orders",
            [{"oid": i, "cust": i % 50} for i in range(500)],
            row_size=64,
            indexed_columns=["oid"],
        )
        return RelationalWrapper("rdb", db, export_rules=export_rules)

    def test_stats_only_by_default(self):
        info = self.make().export_cost_info()
        assert info.cdl_source is None
        assert info.statistics[0].count_object == 500

    def test_rules_on_request_compile(self):
        info = self.make(export_rules=True).export_cost_info()
        compiled = compile_source(
            info.cdl_source, known_collections={"orders"},
            known_attributes={"oid"},
        )
        assert len(compiled.rules) == 2  # scan + oid lookup

    def test_execute_join_capability(self):
        wrapper = self.make()
        db = wrapper.database
        db.create_table("cust", [{"cid": c} for c in range(50)], row_size=32)
        plan = scan("orders").join(scan("cust"), "cust", "cid").build()
        result = wrapper.execute(plan)
        assert result.count == 500


class TestFlatFileWrapper:
    def test_parse_delimited_types(self):
        rows = parse_delimited("1,2.5,abc\n# comment\n2,3.5,def", ["a", "b", "c"])
        assert rows == [
            {"a": 1, "b": 2.5, "c": "abc"},
            {"a": 2, "b": 3.5, "c": "def"},
        ]

    def test_parse_bad_arity(self):
        with pytest.raises(StorageError):
            parse_delimited("1,2", ["a"])

    def test_exports_nothing_by_default(self):
        wrapper = FlatFileWrapper(
            "files", "log", rows=[{"a": 1}, {"a": 2}]
        )
        info = wrapper.export_cost_info()
        assert info.statistics == []
        assert info.collection_names() == ["log"]

    def test_exports_sampled_statistics_on_request(self):
        wrapper = FlatFileWrapper(
            "files", "log", rows=[{"a": 1}, {"a": 2}], export_statistics=True
        )
        info = wrapper.export_cost_info()
        assert info.statistics[0].count_object == 2

    def test_join_rejected_by_capabilities(self):
        wrapper = FlatFileWrapper("files", "log", rows=[{"a": 1}])
        plan = scan("log").join(scan("log"), "a", "a").build()
        with pytest.raises(CapabilityError):
            wrapper.execute(plan)

    def test_scan_and_select_work(self):
        wrapper = FlatFileWrapper(
            "files", "log", rows=[{"a": i} for i in range(10)]
        )
        result = wrapper.execute(scan("log").where_eq("a", 3).build())
        assert result.rows == [{"a": 3}]

    def test_path_loading(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1,x\n2,y\n")
        wrapper = FlatFileWrapper(
            "files", "rows", path=path, columns=["n", "s"]
        )
        assert wrapper.execute(scan("rows").build()).count == 2

    def test_requires_exactly_one_source(self):
        with pytest.raises(StorageError):
            FlatFileWrapper("f", "c")
        with pytest.raises(StorageError):
            FlatFileWrapper("f", "c", rows=[], path="x")


class TestWebSourceWrapper:
    def make(self):
        wrapper = WebSourceWrapper("api", latency_ms=500.0)
        wrapper.add_collection(
            "tickets", [{"tid": i, "sev": i % 4} for i in range(100)]
        )
        return wrapper

    def test_latency_dominates_small_queries(self):
        wrapper = self.make()
        result = wrapper.execute(scan("tickets").where_eq("tid", 3).build())
        assert result.count == 1
        assert result.total_time_ms >= 2 * 500.0

    def test_time_first_includes_latency(self):
        wrapper = self.make()
        result = wrapper.execute(scan("tickets").build())
        assert result.time_first_ms >= 500.0

    def test_exports_latency_rules(self):
        wrapper = self.make()
        info = wrapper.export_cost_info()
        compiled = compile_source(info.cdl_source)
        assert compiled.variables["Latency"] == 500.0
        assert len(compiled.rules) == 2
