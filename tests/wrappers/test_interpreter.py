"""Tests for the wrapper-side plan interpreter."""

import pytest

from repro.algebra.builders import count_star, scan
from repro.algebra.expressions import And, Comparison, attr, between, eq, lit
from repro.algebra.logical import AggregateSpec, Scan, Select, Submit
from repro.errors import CapabilityError
from repro.sources.clock import CostProfile, SimClock
from repro.sources.storage_engine import StorageEngine
from repro.wrappers.interpreter import EngineExecutor


@pytest.fixture
def executor():
    engine = StorageEngine(SimClock(CostProfile(io_ms=10.0, cpu_ms_per_object=1.0)))
    engine.create_collection(
        "emp",
        [
            {"id": i, "dept": i % 3, "salary": 1000 + 10 * i}
            for i in range(30)
        ],
        object_size=60,
        indexed_attributes=["id"],
        placement="sequential",
        page_size=512,  # ~8 rows/page so access paths differ measurably
    )
    engine.create_collection(
        "dept",
        [{"dept_id": d, "dname": f"d{d}"} for d in range(3)],
        object_size=40,
    )
    return EngineExecutor(engine)


class TestScanSelectProject:
    def test_scan_all(self, executor):
        rows = executor.execute(scan("emp").build())
        assert len(rows) == 30

    def test_select_filters(self, executor):
        plan = scan("emp").where_eq("dept", 1).build()
        rows = executor.execute(plan)
        assert len(rows) == 10
        assert all(r["dept"] == 1 for r in rows)

    def test_project_keeps_attributes(self, executor):
        plan = scan("emp").keep("id").build()
        rows = executor.execute(plan)
        assert all(set(r) == {"id"} for r in rows)

    def test_select_uses_index_when_available(self, executor):
        clock = executor.clock
        before = clock.stats.page_reads
        executor.execute(scan("emp").where_eq("id", 7).build())
        index_reads = clock.stats.page_reads - before
        before = clock.stats.page_reads
        executor.execute(scan("emp").where_eq("dept", 1).build())
        seq_reads = clock.stats.page_reads - before
        assert index_reads < seq_reads

    def test_range_predicate_through_index(self, executor):
        plan = Select(Scan("emp"), Comparison("<", attr("id"), lit(5)))
        rows = executor.execute(plan)
        assert sorted(r["id"] for r in rows) == [0, 1, 2, 3, 4]

    def test_conjunction_with_residual(self, executor):
        plan = Select(Scan("emp"), And(eq("id", 7), eq("dept", 1)))
        rows = executor.execute(plan)
        assert rows == [{"id": 7, "dept": 1, "salary": 1070}]

    def test_between_uses_residual_correctly(self, executor):
        plan = Select(Scan("emp"), between("id", 3, 6))
        rows = executor.execute(plan)
        assert sorted(r["id"] for r in rows) == [3, 4, 5, 6]

    def test_not_equal_cannot_use_index(self, executor):
        plan = Select(Scan("emp"), Comparison("!=", attr("id"), lit(0)))
        rows = executor.execute(plan)
        assert len(rows) == 29


class TestSortDistinctAggregate:
    def test_sort_ascending_descending(self, executor):
        rows = executor.execute(scan("emp").order_by("salary").build())
        salaries = [r["salary"] for r in rows]
        assert salaries == sorted(salaries)
        rows = executor.execute(
            scan("emp").order_by("salary", descending=True).build()
        )
        assert [r["salary"] for r in rows] == sorted(salaries, reverse=True)

    def test_distinct(self, executor):
        plan = scan("emp").keep("dept").distinct().build()
        rows = executor.execute(plan)
        assert sorted(r["dept"] for r in rows) == [0, 1, 2]

    def test_aggregate_count_by_group(self, executor):
        plan = scan("emp").aggregate(["dept"], [count_star("n")]).build()
        rows = executor.execute(plan)
        assert sorted((r["dept"], r["n"]) for r in rows) == [(0, 10), (1, 10), (2, 10)]

    def test_aggregate_functions(self, executor):
        specs = [
            AggregateSpec("sum", "salary", "total"),
            AggregateSpec("avg", "salary", "mean"),
            AggregateSpec("min", "salary", "low"),
            AggregateSpec("max", "salary", "high"),
        ]
        plan = scan("emp").aggregate([], specs).build()
        row = executor.execute(plan)[0]
        salaries = [1000 + 10 * i for i in range(30)]
        assert row["total"] == sum(salaries)
        assert row["mean"] == pytest.approx(sum(salaries) / 30)
        assert (row["low"], row["high"]) == (1000, 1290)

    def test_aggregate_empty_input_global(self, executor):
        plan = (
            scan("emp")
            .where_eq("dept", 99)
            .aggregate([], [count_star("n")])
            .build()
        )
        assert executor.execute(plan) == [{"n": 0}]


class TestJoinUnion:
    def test_join_matches(self, executor):
        plan = (
            scan("emp")
            .join(scan("dept"), "dept", "dept_id", "emp", "dept")
            .build()
        )
        rows = executor.execute(plan)
        assert len(rows) == 30
        assert all(r["dept"] == r["dept_id"] for r in rows)
        assert all("dname" in r for r in rows)

    def test_union_concatenates(self, executor):
        plan = scan("dept").union(scan("dept")).build()
        assert len(executor.execute(plan)) == 6

    def test_join_collision_qualifies_names(self, executor):
        engine = executor.engine
        engine.create_collection(
            "other", [{"id": 1, "x": 9}], object_size=20
        )
        plan = scan("emp").join(scan("other"), "id", "id", "emp", "other").build()
        rows = executor.execute(plan)
        assert len(rows) == 1
        # id matches on both sides with equal value; no qualification needed
        assert rows[0]["x"] == 9


class TestErrors:
    def test_submit_rejected(self, executor):
        plan = Submit(Scan("emp"), "w")
        with pytest.raises(CapabilityError):
            executor.execute(plan)
