"""Tests for the deterministic fault injector."""

import pytest

from repro.algebra.builders import scan
from repro.errors import SourceUnavailableError, TransientSourceError
from repro.wrappers.faults import FaultInjector, FaultProfile
from tests.federation_fixtures import build_sales_wrapper

PLAN = scan("Suppliers").build()


def build_injector(**profile_kwargs):
    return FaultInjector(build_sales_wrapper(), FaultProfile(**profile_kwargs))


class TestProfileValidation:
    def test_error_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultProfile(error_probability=1.5)
        with pytest.raises(ValueError):
            FaultProfile(error_probability=-0.1)

    def test_latency_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultProfile(latency_probability=2.0)

    def test_latency_multiplier_nonnegative(self):
        with pytest.raises(ValueError):
            FaultProfile(latency_multiplier=-1.0)

    def test_benign_default(self):
        assert FaultProfile().benign
        assert not FaultProfile(unavailable=True).benign
        assert not FaultProfile(error_probability=0.1).benign
        assert not FaultProfile(trickle=True).benign


class TestDelegation:
    def test_name_and_capabilities_mirror_inner(self):
        inner = build_sales_wrapper()
        injector = FaultInjector(inner)
        assert injector.name == inner.name
        assert injector.capabilities == inner.capabilities

    def test_cost_info_delegates(self):
        inner = build_sales_wrapper()
        injector = FaultInjector(inner)
        assert injector.export_cost_info().collection_names() == (
            inner.export_cost_info().collection_names()
        )

    def test_unwrap_reaches_inner(self):
        inner = build_sales_wrapper()
        injector = FaultInjector(inner)
        assert injector.unwrap() is inner
        # Stacked decorators unwrap all the way down.
        assert FaultInjector(injector).unwrap() is inner


class TestBenignTransparency:
    def test_benign_profile_is_transparent(self):
        """Default profile: identical rows and timings to the raw wrapper."""
        raw = build_sales_wrapper().execute(PLAN)
        injected = build_injector().execute(PLAN)
        assert injected.rows == raw.rows
        assert injected.total_time_ms == raw.total_time_ms
        assert injected.time_first_ms == raw.time_first_ms
        assert injected.device_stats == raw.device_stats

    def test_benign_profile_draws_no_randomness(self):
        injector = build_injector()
        state_before = injector._rng.getstate()
        injector.execute(PLAN)
        assert injector._rng.getstate() == state_before


class TestFaultKinds:
    def test_unavailable_raises_with_latency(self):
        injector = build_injector(unavailable=True, unavailable_latency_ms=250.0)
        with pytest.raises(SourceUnavailableError) as exc:
            injector.execute(PLAN)
        assert exc.value.elapsed_ms == 250.0
        assert injector.log.unavailable == 1

    def test_transient_error_probability_one(self):
        injector = build_injector(error_probability=1.0, error_latency_ms=30.0)
        with pytest.raises(TransientSourceError) as exc:
            injector.execute(PLAN)
        assert exc.value.elapsed_ms == 30.0
        assert injector.log.transient_errors == 1

    def test_latency_spike_scales_times(self):
        raw = build_sales_wrapper().execute(PLAN)
        injector = build_injector(latency_multiplier=3.0)
        result = injector.execute(PLAN)
        assert result.total_time_ms == pytest.approx(3.0 * raw.total_time_ms)
        assert result.time_first_ms == pytest.approx(3.0 * raw.time_first_ms)
        assert result.rows == raw.rows
        assert injector.log.latency_spikes == 1

    def test_trickle_moves_time_first_to_total(self):
        injector = build_injector(trickle=True)
        result = injector.execute(PLAN)
        assert result.time_first_ms == result.total_time_ms
        assert injector.log.trickles == 1

    def test_fail_after_rows_charges_full_wait_and_discards(self):
        raw = build_sales_wrapper().execute(PLAN)
        assert len(raw.rows) > 5
        injector = build_injector(fail_after_rows=5)
        with pytest.raises(TransientSourceError) as exc:
            injector.execute(PLAN)
        # The mediator waited for the whole doomed execution.
        assert exc.value.elapsed_ms == pytest.approx(raw.total_time_ms)
        assert injector.log.mid_answer_failures == 1


class TestDeterminism:
    def test_same_seed_same_fault_train(self):
        def fault_train(seed):
            injector = build_injector(error_probability=0.5, seed=seed)
            train = []
            for _ in range(20):
                try:
                    injector.execute(PLAN)
                    train.append("ok")
                except TransientSourceError:
                    train.append("fail")
            return train

        assert fault_train(42) == fault_train(42)

    def test_different_seeds_diverge(self):
        def outcomes(seed):
            injector = build_injector(error_probability=0.5, seed=seed)
            out = []
            for _ in range(20):
                try:
                    injector.execute(PLAN)
                    out.append(True)
                except TransientSourceError:
                    out.append(False)
            return out

        assert outcomes(1) != outcomes(2)

    def test_set_profile_reseeds(self):
        injector = build_injector(error_probability=0.5, seed=9)
        first = []
        for _ in range(10):
            try:
                injector.execute(PLAN)
                first.append(True)
            except TransientSourceError:
                first.append(False)
        injector.set_profile(FaultProfile(error_probability=0.5, seed=9))
        second = []
        for _ in range(10):
            try:
                injector.execute(PLAN)
                second.append(True)
            except TransientSourceError:
                second.append(False)
        assert first == second

    def test_set_profile_revives_downed_source(self):
        injector = build_injector(unavailable=True)
        with pytest.raises(SourceUnavailableError):
            injector.execute(PLAN)
        injector.set_profile(FaultProfile())
        assert injector.execute(PLAN).count > 0

    def test_log_counts_injected(self):
        injector = build_injector(unavailable=True)
        with pytest.raises(SourceUnavailableError):
            injector.execute(PLAN)
        assert injector.log.executions == 1
        assert injector.log.injected == 1
