"""Unit tests for the CDL tokenizer."""

import pytest

from repro.cdl.lexer import tokenize
from repro.errors import CdlSyntaxError


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_empty_source(self):
        assert kinds("") == ["eof"]

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("interface Employee costrule foo")
        assert [t.kind for t in tokens[:-1]] == ["keyword", "ident", "keyword", "ident"]

    def test_numbers(self):
        assert texts("42 2.5 1e3 2.5e-1") == ["42", "2.5", "1e3", "2.5e-1"]

    def test_strings_both_quotes(self):
        tokens = tokenize("'abc' \"def\"")
        assert [t.text for t in tokens[:-1]] == ["abc", "def"]
        assert all(t.kind == "string" for t in tokens[:-1])

    def test_punctuation(self):
        assert kinds("{ } ( ) , ; = . + - * /")[:-1] == list("{}(),;=.+-*/")

    def test_multichar_comparisons(self):
        assert kinds("<= >= != < >")[:-1] == ["<=", ">=", "!=", "<", ">"]

    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(CdlSyntaxError):
            tokenize("'abc")

    def test_newline_in_string(self):
        with pytest.raises(CdlSyntaxError):
            tokenize("'ab\nc'")

    def test_unterminated_block_comment(self):
        with pytest.raises(CdlSyntaxError):
            tokenize("/* never ends")

    def test_unexpected_character(self):
        with pytest.raises(CdlSyntaxError) as exc_info:
            tokenize("a @ b")
        assert exc_info.value.line == 1
