"""Unit tests for the CDL parser."""

import pytest

from repro.cdl import parse_document
from repro.errors import CdlSyntaxError

EMPLOYEE_SOURCE = """
// The Figure 3/4 Employee interface with declarative cardinality.
interface Employee {
    attribute Long salary;
    attribute String Name;
    short age();

    cardinality extent(CountObject = 10000, TotalSize = 1200000, ObjectSize = 120);
    cardinality attribute(salary, Indexed = true, CountDistinct = 10000,
                          Min = 1000, Max = 30000);
    cardinality attribute(Name, Indexed = true, CountDistinct = 10000,
                          Min = 'Adiba', Max = 'Valduriez');
}
"""


class TestInterfaces:
    def test_attributes_parsed(self):
        doc = parse_document(EMPLOYEE_SOURCE)
        interface = doc.interface("Employee")
        assert interface is not None
        assert interface.attribute_names() == ["salary", "Name"]
        assert interface.attributes[0].type_name == "Long"

    def test_operations_parsed(self):
        doc = parse_document(EMPLOYEE_SOURCE)
        ops = doc.interface("Employee").operations
        assert [op.name for op in ops] == ["age"]
        assert ops[0].return_type == "short"

    def test_operation_with_parameters(self):
        doc = parse_document(
            "interface E { long f(in String name, out Long result); }"
        )
        op = doc.interface("E").operations[0]
        assert op.parameters == (("in", "String", "name"), ("out", "Long", "result"))

    def test_extent_statistics(self):
        doc = parse_document(EMPLOYEE_SOURCE)
        extent = doc.interface("Employee").extent
        assert extent.count_object == 10000
        assert extent.total_size == 1200000
        assert extent.object_size == 120

    def test_attribute_statistics(self):
        doc = parse_document(EMPLOYEE_SOURCE)
        stats = doc.interface("Employee").attribute_stats
        assert stats[0].attribute == "salary"
        assert stats[0].indexed is True
        assert stats[0].min_value == 1000
        assert stats[1].min_value == "Adiba"
        assert stats[1].max_value == "Valduriez"

    def test_extent_requires_count_object(self):
        with pytest.raises(CdlSyntaxError, match="CountObject"):
            parse_document("interface E { cardinality extent(TotalSize = 5); }")

    def test_unknown_attribute_statistic(self):
        with pytest.raises(CdlSyntaxError, match="Median"):
            parse_document(
                "interface E { cardinality attribute(x, Median = 5); }"
            )

    def test_multiple_interfaces(self):
        doc = parse_document("interface A {} interface B {}")
        assert doc.collection_names() == {"A", "B"}


class TestVariablesAndFunctions:
    def test_var_declaration(self):
        doc = parse_document("var PageSize = 4000;")
        assert doc.variables[0].name == "PageSize"
        assert doc.variables[0].value == 4000

    def test_negative_var(self):
        doc = parse_document("var Bias = -2.5;")
        assert doc.variables[0].value == -2.5

    def test_string_var(self):
        doc = parse_document("var Label = 'x';")
        assert doc.variables[0].value == "x"

    def test_function_definition(self):
        doc = parse_document("function double_it(x) = x * 2;")
        fn = doc.functions[0]
        assert fn.name == "double_it"
        assert fn.parameters == ["x"]
        assert "x * 2" in fn.body

    def test_function_no_parameters(self):
        doc = parse_document("function answer() = 42;")
        assert doc.functions[0].parameters == []


class TestCostRules:
    def test_scan_rule(self):
        doc = parse_document(
            "costrule scan(employee) { TotalTime = 120 + employee.TotalSize * 12; }"
        )
        rule_def = doc.rules[0]
        assert rule_def.operator == "scan"
        assert rule_def.collections[0].value == "employee"
        assert rule_def.predicate is None
        assert rule_def.formulas == ["TotalTime = 120 + employee.TotalSize * 12"]

    def test_select_rule_with_predicate(self):
        doc = parse_document(
            "costrule select(C, A = V) { CountObject = C.CountObject * selectivity(A, V); }"
        )
        rule_def = doc.rules[0]
        pred = rule_def.predicate
        assert pred.left.value == "A"
        assert pred.op == "="
        assert pred.right.value == "V"

    def test_select_rule_with_bound_value(self):
        doc = parse_document("costrule select(C, salary = 77) { TotalTime = 1; }")
        assert doc.rules[0].predicate.right.value == 77

    def test_range_predicate(self):
        doc = parse_document("costrule select(C, Id < V) { TotalTime = 1; }")
        assert doc.rules[0].predicate.op == "<"

    def test_join_rule_with_dotted_attributes(self):
        doc = parse_document(
            "costrule join(Employee, Book, x1.id = x2.author_id) { TotalTime = 1; }"
        )
        rule_def = doc.rules[0]
        assert [c.value for c in rule_def.collections] == ["Employee", "Book"]
        assert rule_def.predicate.left.value == "id"
        assert rule_def.predicate.right.value == "author_id"

    def test_multiple_formulas_preserved_in_order(self):
        doc = parse_document(
            """
            costrule select(C, A = V) {
                CountObject = C.CountObject * selectivity(A, V);
                TotalSize = CountObject * C.ObjectSize;
                TotalTime = C.TotalTime + C.TotalSize * 25;
            }
            """
        )
        targets = [f.split(" =")[0] for f in doc.rules[0].formulas]
        assert targets == ["CountObject", "TotalSize", "TotalTime"]

    def test_string_literal_in_formula_requoted(self):
        doc = parse_document("costrule scan(C) { TotalTime = width('abc'); }")
        assert "'abc'" in doc.rules[0].formulas[0]

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(CdlSyntaxError):
            parse_document("costrule scan(C) { TotalTime = (1 + 2)); }")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(CdlSyntaxError):
            parse_document("costrule scan(C) { TotalTime = 1 }")

    def test_error_carries_position(self):
        with pytest.raises(CdlSyntaxError) as exc_info:
            parse_document("interface E {\n  attribute;\n}")
        assert exc_info.value.line == 2


class TestFigure13RuleText:
    """The paper's Figure 13 rule must parse as written (modulo ASCII)."""

    SOURCE = """
    var PageSize = 4096;
    var IO = 25;
    var Output = 9;

    costrule select(Collection, Id = value) {
        // compute the page count to be used in yao formula:
        CountPage = Collection.TotalSize / PageSize;
        // compute the costs:
        CountObject = Collection.CountObject * (value - Collection.Id.Min)
                      / (Collection.Id.Max - Collection.Id.Min);
        TotalSize = CountObject * Collection.ObjectSize;
        TotalTime = IO * (Collection.TotalSize / PageSize)
                       * (1 - exp(-1 * (CountObject / CountPage)))
                    + CountObject * Output;
    }
    """

    def test_parses(self):
        doc = parse_document(self.SOURCE)
        assert len(doc.rules) == 1
        assert len(doc.variables) == 3
        rule_def = doc.rules[0]
        assert rule_def.operator == "select"
        assert [f.split(" =")[0] for f in rule_def.formulas] == [
            "CountPage",
            "CountObject",
            "TotalSize",
            "TotalTime",
        ]


class TestDocumentStructure:
    def test_mixed_declarations(self):
        doc = parse_document(
            EMPLOYEE_SOURCE + "var X = 1; costrule scan(Employee) { TotalTime = 1; }"
        )
        assert len(doc.interfaces) == 1
        assert len(doc.variables) == 1
        assert len(doc.rules) == 1

    def test_garbage_top_level(self):
        with pytest.raises(CdlSyntaxError):
            parse_document("banana;")
