"""Tests for compiling CDL documents into cost-model objects."""

import math

import pytest

from repro.algebra.builders import scan
from repro.cdl import compile_source
from repro.core.rules import Var
from repro.core.scopes import Scope, classify_wrapper_rule
from repro.errors import CdlCompileError, CdlSyntaxError, FormulaError

EMPLOYEE = """
interface Employee {
    attribute Long salary;
    attribute String Name;
    cardinality extent(CountObject = 10000, ObjectSize = 120);
    cardinality attribute(salary, Indexed = true, CountDistinct = 1000,
                          Min = 1000, Max = 30000);
}
"""


class TestStatistics:
    def test_total_size_derived_from_object_size(self):
        info = compile_source(EMPLOYEE)
        stats = info.statistics[0]
        assert stats.total_size == 10000 * 120

    def test_object_size_derived_from_total_size(self):
        info = compile_source(
            "interface E { cardinality extent(CountObject = 10, TotalSize = 1000); }"
        )
        assert info.statistics[0].object_size == 100

    def test_missing_sizes_rejected(self):
        with pytest.raises(CdlCompileError):
            compile_source("interface E { cardinality extent(CountObject = 10); }")

    def test_attribute_stats_compiled(self):
        info = compile_source(EMPLOYEE)
        salary = info.statistics[0].attribute("salary")
        assert salary.indexed
        assert salary.count_distinct == 1000
        assert salary.min_value == 1000

    def test_declared_attributes_without_stats_present(self):
        info = compile_source(EMPLOYEE)
        assert "Name" in info.statistics[0].attributes

    def test_interface_without_extent_yields_no_stats(self):
        info = compile_source("interface E { attribute Long x; }")
        assert info.statistics == []
        assert "E" in info.schema


class TestBindingResolution:
    def test_declared_collection_is_bound(self):
        info = compile_source(EMPLOYEE + "costrule scan(Employee) { TotalTime = 1; }")
        head = info.rules[0].head
        assert head.collections == ("Employee",)

    def test_unknown_collection_is_variable(self):
        info = compile_source("costrule scan(C) { TotalTime = 1; }")
        assert isinstance(info.rules[0].head.collections[0], Var)

    def test_declared_attribute_is_bound(self):
        info = compile_source(
            EMPLOYEE + "costrule select(Employee, salary = V) { TotalTime = 1; }"
        )
        pred = info.rules[0].head.predicate
        assert pred.attribute == "salary"
        assert isinstance(pred.value, Var)

    def test_unknown_attribute_is_variable(self):
        info = compile_source(
            EMPLOYEE + "costrule select(Employee, A = V) { TotalTime = 1; }"
        )
        assert isinstance(info.rules[0].head.predicate.attribute, Var)

    def test_literal_value_is_bound(self):
        info = compile_source(
            EMPLOYEE + "costrule select(Employee, salary = 77) { TotalTime = 1; }"
        )
        assert info.rules[0].head.predicate.value == 77

    def test_known_collections_parameter(self):
        info = compile_source(
            "costrule scan(AtomicParts) { TotalTime = 1; }",
            known_collections={"AtomicParts"},
        )
        assert info.rules[0].head.collections == ("AtomicParts",)

    def test_scopes_derive_correctly(self):
        info = compile_source(
            EMPLOYEE
            + """
            costrule select(C, P2) { TotalTime = 1; }
            costrule select(Employee) { TotalTime = 1; }
            costrule select(Employee, salary = V) { TotalTime = 1; }
            """
        )
        scopes = [classify_wrapper_rule(r) for r in info.rules]
        assert scopes == [Scope.WRAPPER, Scope.COLLECTION, Scope.PREDICATE]


class TestRules:
    def test_select_without_predicate_matches_any(self):
        info = compile_source(EMPLOYEE + "costrule select(Employee) { TotalTime = 5; }")
        node = scan("Employee").where_eq("salary", 1).build()
        assert info.rules[0].match(node) is not None

    def test_join_rule(self):
        info = compile_source(
            "costrule join(C1, C2, a = b) { TotalTime = 1; }",
            known_attributes={"a", "b"},
        )
        head = info.rules[0].head
        assert head.predicate.left_attribute == "a"

    def test_join_requires_equality(self):
        with pytest.raises(CdlCompileError):
            compile_source("costrule join(C1, C2, a < b) { TotalTime = 1; }")

    def test_unknown_operator_rejected(self):
        with pytest.raises(CdlCompileError, match="frobnicate"):
            compile_source("costrule frobnicate(C) { TotalTime = 1; }")

    def test_bad_formula_rejected_at_compile_time(self):
        with pytest.raises(CdlCompileError):
            compile_source("costrule scan(C) { TotalTime = 1 + ; }")

    def test_predicate_on_scan_rejected(self):
        with pytest.raises((CdlCompileError, CdlSyntaxError)):
            compile_source("costrule scan(C, a = 1) { TotalTime = 1; }")

    def test_rule_order_preserved(self):
        info = compile_source(
            "costrule scan(C) { TotalTime = 1; } costrule scan(D) { TotalTime = 2; }"
        )
        assert [r.order for r in info.rules] == [0, 1]


class TestVariablesAndFunctions:
    def test_variables_exported(self):
        info = compile_source("var PageSize = 4000; var Fudge = 1.5;")
        assert info.variables == {"PageSize": 4000, "Fudge": 1.5}

    def test_function_evaluates(self):
        info = compile_source("function twice(x) = x * 2;")
        assert info.functions["twice"](21.0) == 42.0

    def test_function_sees_document_variables(self):
        info = compile_source("var Base = 10; function plus_base(x) = x + Base;")
        assert info.functions["plus_base"](5.0) == 15.0

    def test_function_uses_builtins(self):
        info = compile_source("function decay(x) = exp(-1 * x);")
        assert info.functions["decay"](0.0) == 1.0

    def test_function_composition(self):
        info = compile_source(
            "function twice(x) = x * 2; function quad(x) = twice(twice(x));"
        )
        assert info.functions["quad"](3.0) == 12.0

    def test_wrong_arity_raises(self):
        info = compile_source("function twice(x) = x * 2;")
        with pytest.raises(FormulaError):
            info.functions["twice"](1.0, 2.0)

    def test_bad_function_body_rejected(self):
        with pytest.raises(CdlCompileError):
            compile_source("function broken(x) = x +;")


class TestFigure13EndToEnd:
    """Compile the Figure 13 Yao rule and check its estimate against the
    closed-form Yao cost on the paper's OO7 numbers."""

    SOURCE = """
    interface AtomicParts {
        attribute Long Id;
        cardinality extent(CountObject = 70000, TotalSize = 4096000, ObjectSize = 56);
        cardinality attribute(Id, Indexed = true, CountDistinct = 70000,
                              Min = 0, Max = 70000);
    }
    var PageSize = 4096;
    var IO = 25;
    var Output = 9;

    costrule select(Collection, Id <= value) {
        CountPage = Collection.TotalSize / PageSize;
        CountObject = Collection.CountObject
            * (value - Collection.Id.Min) / (Collection.Id.Max - Collection.Id.Min);
        TotalSize = CountObject * Collection.ObjectSize;
        TotalTime = IO * CountPage * (1 - exp(-1 * (CountObject / CountPage)))
                    + CountObject * Output;
    }
    """

    def test_rule_estimates_yao_cost(self):
        from repro.core.estimator import CostEstimator
        from repro.core.estimator import SourceEnvironment
        from repro.core.generic import CoefficientSet, standard_repository
        from repro.core.selectivity import index_scan_cost_yao
        from repro.core.statistics import StatisticsCatalog
        from repro.algebra.expressions import Comparison, attr, lit
        from repro.algebra.logical import Scan, Select

        info = compile_source(self.SOURCE)
        catalog = StatisticsCatalog()
        for stats in info.statistics:
            catalog.put(stats)
        repository = standard_repository()
        repository.add_wrapper_rules("oo7", info.rules)
        estimator = CostEstimator(
            repository, catalog, coefficients=CoefficientSet()
        )
        estimator.register_environment(
            SourceEnvironment(
                name="oo7", variables=dict(info.variables), functions=dict(info.functions)
            )
        )
        selectivity = 0.5
        plan = Select(
            Scan("AtomicParts"),
            Comparison("<=", attr("Id"), lit(int(70000 * selectivity))),
        )
        result = estimator.estimate(plan, default_source="oo7")
        expected = index_scan_cost_yao(selectivity, 70000, 1000)
        assert result.total_time == pytest.approx(expected, rel=0.01)
        assert result.root.count_object == pytest.approx(35000.0, rel=0.01)
