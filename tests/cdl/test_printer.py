"""Round-trip tests for the CDL pretty-printer: parse → print → parse."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdl import parse_document
from repro.cdl.printer import print_document

EXAMPLES = [
    # The Figure 3/4 interface.
    """
    interface Employee {
        attribute Long salary;
        attribute String Name;
        short age();
        cardinality extent(CountObject = 10000, TotalSize = 1200000,
                           ObjectSize = 120);
        cardinality attribute(salary, Indexed = true, CountDistinct = 10000,
                              Min = 1000, Max = 30000);
        cardinality attribute(Name, Indexed = true, CountDistinct = 10000,
                              Min = 'Adiba', Max = 'Valduriez');
    }
    """,
    # The Figure 13 rule.
    """
    var PageSize = 4096;
    var IO = 25;
    var Output = 9;
    costrule select(Collection, Id = value) {
        CountPage = Collection.TotalSize / PageSize;
        CountObject = Collection.CountObject * (value - Collection.Id.Min)
                      / (Collection.Id.Max - Collection.Id.Min);
        TotalSize = CountObject * Collection.ObjectSize;
        TotalTime = IO * CountPage * (1 - exp(-1 * (CountObject / CountPage)))
                    + CountObject * Output;
    }
    """,
    # Functions, joins, operations with parameters.
    """
    function twice(x) = x * 2;
    function decay(x, rate) = exp(-1 * (x * rate));
    interface E {
        long f(in String name, out Long result);
        cardinality extent(CountObject = 5, ObjectSize = 10);
    }
    costrule join(E, Other, a = b) { TotalTime = twice(E.CountObject); }
    costrule scan(C) { TimeFirst = 1; TotalTime = 2; }
    """,
]


def canonical(document):
    """Structural fingerprint of a document, ignoring formatting."""
    return (
        [
            (
                i.name,
                tuple((a.name, a.type_name) for a in i.attributes),
                tuple((o.name, o.return_type, o.parameters) for o in i.operations),
                (
                    None
                    if i.extent is None
                    else (i.extent.count_object, i.extent.total_size, i.extent.object_size)
                ),
                tuple(
                    (
                        s.attribute,
                        s.indexed,
                        s.count_distinct,
                        s.min_value,
                        s.max_value,
                    )
                    for s in i.attribute_stats
                ),
            )
            for i in document.interfaces
        ],
        [(v.name, v.value) for v in document.variables],
        [(f.name, tuple(f.parameters)) for f in document.functions],
        [
            (
                r.operator,
                tuple((a.kind, a.value) for a in r.collections),
                None
                if r.predicate is None
                else (
                    (r.predicate.left.kind, r.predicate.left.value),
                    r.predicate.op,
                    (r.predicate.right.kind, r.predicate.right.value),
                ),
                len(r.formulas),
            )
            for r in document.rules
        ],
    )


@pytest.mark.parametrize("source", EXAMPLES)
def test_roundtrip_examples(source):
    original = parse_document(source)
    printed = print_document(original)
    reparsed = parse_document(printed)
    assert canonical(reparsed) == canonical(original)


def test_roundtrip_formulas_stay_semantically_equal():
    """The formulas of a reprinted Figure 13 rule evaluate identically."""
    from repro.cdl import compile_source

    source = EXAMPLES[1]
    printed = print_document(parse_document(source))
    original = compile_source(source)
    reparsed = compile_source(printed)
    # Same rule structure and the same formula targets in order.
    assert [
        [f.target for f in rule.formulas] for rule in original.rules
    ] == [[f.target for f in rule.formulas] for rule in reparsed.rules]


def test_empty_document():
    assert print_document(parse_document("")) == ""


_ident = st.text(alphabet="abcdefgXYZ_", min_size=1, max_size=6).filter(
    lambda s: s not in {"var", "function", "interface", "costrule", "in",
                        "out", "true", "false", "cardinality", "extent",
                        "attribute"}
)


@given(
    names=st.lists(_ident, min_size=1, max_size=4, unique=True),
    values=st.lists(st.integers(-1000, 1000), min_size=4, max_size=4),
)
@settings(max_examples=40)
def test_property_var_declarations_roundtrip(names, values):
    source = "\n".join(
        f"var {name} = {value};" for name, value in zip(names, values)
    )
    document = parse_document(source)
    reparsed = parse_document(print_document(document))
    assert [(v.name, v.value) for v in reparsed.variables] == [
        (v.name, v.value) for v in document.variables
    ]


@given(
    collection=_ident,
    attribute=_ident,
    value=st.integers(0, 10**6),
    op=st.sampled_from(["=", "<", "<=", ">", ">="]),
    constant=st.integers(1, 1000),
)
@settings(max_examples=40)
def test_property_select_rules_roundtrip(collection, attribute, value, op, constant):
    source = (
        f"costrule select({collection}, {attribute} {op} {value}) "
        f"{{ TotalTime = {constant}; }}"
    )
    document = parse_document(source)
    reparsed = parse_document(print_document(document))
    rule_def = reparsed.rules[0]
    assert rule_def.operator == "select"
    assert rule_def.predicate.op == op
    assert rule_def.predicate.right.value == value
    assert rule_def.formulas == [f"TotalTime = {constant}"]
