"""The replication layer's no-replica guarantee.

With no replica sets registered, every executor path must stay
byte-identical to the seed: ``catalog.has_replicas()`` gates the
optimizer's binding pass, the scheduler's failover loop, and the hedging
hook, so a replica-free federation pays nothing and changes nothing —
answers, submit logs, simulated latencies, and estimates all match,
across the sequential executor, the concurrent-wave executor, a fully
armed (never-firing) resilience configuration, and a hedge-armed policy
with nobody to hedge to.  A replica set on an *untouched* wrapper must
likewise leave queries against other sources unchanged.  Mirrors
``tests/service/test_sharding_equivalence.py`` (whose workload and
transcript helpers it reuses — every query there reads the ``sales``
wrapper only).
"""

from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import (
    BreakerPolicy,
    HedgePolicy,
    ResilienceOptions,
    RetryPolicy,
)
from repro.oo7 import TINY, load_database
from repro.wrappers import ObjectStoreWrapper
from repro.wrappers.faults import FaultInjector, FaultProfile
from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper
from tests.service.test_sharding_equivalence import run_workload

ARMED = ResilienceOptions(
    retry=RetryPolicy(
        max_attempts=5,
        backoff_base_ms=100.0,
        jitter_ratio=0.3,
        deadline_ms=1e9,
    ),
    breaker=BreakerPolicy(failure_threshold=1, cooldown_ms=10.0),
    mode="partial",
)

#: The same armed options plus a hair-trigger hedge policy.  Without a
#: replica set there is no backup member, so the hedge hook must never
#: launch anything or touch the clock.
HEDGED = ResilienceOptions(
    retry=ARMED.retry,
    breaker=ARMED.breaker,
    mode="partial",
    hedge=HedgePolicy(delay_ms=0.001),
)


def build_mediator(
    resilience=None, inject=False, parallel=False, idle_replica=False
):
    mediator = Mediator(
        executor_options=ExecutorOptions(
            resilience=resilience, parallel_submits=parallel
        )
    )
    for wrapper in (build_oo7_wrapper(), build_sales_wrapper()):
        if inject:
            wrapper = FaultInjector(wrapper, FaultProfile(error_probability=0.0))
        mediator.register(wrapper)
    if idle_replica:
        # A replica of the OO7 wrapper: the workload only queries the
        # sales wrapper, so this set must never influence its dispatch —
        # but its presence flips ``has_replicas()`` on, arming every
        # replica code path for the whole federation.
        mediator.register_replica(
            ObjectStoreWrapper("oo7_b", load_database(TINY)), of="oo7"
        )
    return mediator


class TestNoReplicasIsByteIdentical:
    def test_sequential_executor(self):
        assert run_workload(build_mediator(idle_replica=True)) == run_workload(
            build_mediator()
        )

    def test_parallel_wave_executor(self):
        assert run_workload(
            build_mediator(idle_replica=True, parallel=True)
        ) == run_workload(build_mediator(parallel=True))

    def test_armed_resilience_executor(self):
        assert run_workload(
            build_mediator(
                idle_replica=True, resilience=ARMED, inject=True, parallel=True
            )
        ) == run_workload(
            build_mediator(resilience=ARMED, inject=True, parallel=True)
        )

    def test_hedge_armed_without_replicas_never_fires(self):
        hedged = build_mediator(resilience=HEDGED, inject=True, parallel=True)
        plain = build_mediator(resilience=ARMED, inject=True, parallel=True)
        assert run_workload(hedged) == run_workload(plain)
        assert hedged.executor.scheduler.replica_stats.empty

    def test_answers_are_complete(self):
        # Sanity: "byte-identical" must not mean "identically empty".
        transcript = run_workload(build_mediator(idle_replica=True))
        assert all(len(entry["rows"]) > 0 for entry in transcript[:-1])
        assert all(entry["partial"] is None for entry in transcript[:-1])
