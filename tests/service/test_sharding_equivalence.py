"""The sharding layer's degenerate-case guarantee.

A 1-shard partition scheme whose single shard is the *same* physical
collection on the *same* wrapper (the "overlay" layout) must be a
no-op: the scatter has one branch, the fan-out overhead multiplier is
exactly 1, the wave dispatch charges the clock like a single dispatch —
so running a workload against the partitioned federation produces
byte-identical answers, submit logs, simulated latencies, and estimates
to the unsharded seed path, across the sequential executor, the
concurrent-wave executor, and a fully armed (never-firing) resilience
configuration.  Mirrors ``tests/service/test_equivalence.py``.
"""

from repro.algebra.logical import Submit
from repro.mediator.catalog import PartitionScheme, Shard
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import (
    BreakerPolicy,
    ResilienceOptions,
    RetryPolicy,
)
from repro.wrappers.faults import FaultInjector, FaultProfile
from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper

ARMED = ResilienceOptions(
    retry=RetryPolicy(
        max_attempts=5,
        backoff_base_ms=100.0,
        jitter_ratio=0.3,
        deadline_ms=1e9,
    ),
    breaker=BreakerPolicy(failure_threshold=1, cooldown_ms=10.0),
    mode="partial",
)

#: Scan+filter, shard-key point lookup, cross-wrapper join, aggregate —
#: every access shape the optimizer can route through the scatter.
WORKLOAD = (
    ("scan-filter", "SELECT * FROM Orders WHERE qty > 90"),
    ("point-lookup", "SELECT * FROM Orders WHERE oid = 123"),
    (
        "join",
        "SELECT * FROM Suppliers, Orders "
        "WHERE Orders.supplier = Suppliers.sid AND Suppliers.city = 'city1'",
    ),
    (
        "aggregate",
        "SELECT supplier, COUNT(*) AS n FROM Orders GROUP BY supplier",
    ),
)


def build_mediator(sharded, resilience=None, inject=False, parallel=False):
    mediator = Mediator(
        executor_options=ExecutorOptions(
            resilience=resilience, parallel_submits=parallel
        )
    )
    for wrapper in (build_oo7_wrapper(), build_sales_wrapper()):
        if inject:
            wrapper = FaultInjector(wrapper, FaultProfile(error_probability=0.0))
        mediator.register(wrapper)
    if sharded:
        # The overlay layout: one shard pointing at the very collection
        # the seed path reads — partitioned in name only.
        mediator.register_partitioned(
            PartitionScheme(
                collection="Orders",
                shard_key="oid",
                shards=(Shard(collection="Orders", wrapper="sales"),),
            )
        )
    return mediator


def submit_log(result):
    """The dispatched subqueries: each Submit's full pushed subtree."""
    return [
        [inner.describe() for inner in node.walk()]
        for node in result.plan.walk()
        if isinstance(node, Submit)
    ]


def transcript_entry(label, result):
    return {
        "label": label,
        "rows": result.rows,
        "elapsed_ms": result.elapsed_ms,
        "time_first_ms": result.time_first_ms,
        "estimated_ms": result.estimated_ms,
        "submits": submit_log(result),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "parallel_saved_ms": result.parallel_saved_ms,
        "partial": result.partial,
    }


def clock_totals(mediator):
    clock = mediator.executor.clock
    return {
        "clock_total": clock.now_ms,
        "wait_ms": clock.stats.wait_ms,
        "messages": clock.stats.messages,
        "bytes": clock.stats.bytes_shipped,
    }


def run_workload(mediator):
    transcript = [
        transcript_entry(label, mediator.query(sql))
        for label, sql in WORKLOAD
    ]
    transcript.append(clock_totals(mediator))
    return transcript


class TestOneShardOverlayIsByteIdentical:
    def test_sequential_executor(self):
        assert run_workload(build_mediator(sharded=True)) == run_workload(
            build_mediator(sharded=False)
        )

    def test_parallel_wave_executor(self):
        assert run_workload(
            build_mediator(sharded=True, parallel=True)
        ) == run_workload(build_mediator(sharded=False, parallel=True))

    def test_armed_resilience_executor(self):
        assert run_workload(
            build_mediator(
                sharded=True, resilience=ARMED, inject=True, parallel=True
            )
        ) == run_workload(
            build_mediator(
                sharded=False, resilience=ARMED, inject=True, parallel=True
            )
        )

    def test_overlay_answers_are_complete(self):
        # Sanity: the workload actually returns rows and no answer is
        # degraded — "byte-identical" must not mean "identically empty".
        transcript = run_workload(build_mediator(sharded=True))
        row_counts = [entry["rows"] for entry in transcript[:-1]]
        assert all(len(rows) > 0 for rows in row_counts)
        assert all(entry["partial"] is None for entry in transcript[:-1])
