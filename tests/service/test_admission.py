"""Cost-based admission control: decisions, budgets, and backpressure."""

import pytest

from repro.errors import (
    AdmissionError,
    AdmissionRejectedError,
    QueueOverflowError,
    ServiceDegradedError,
)
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import BreakerPolicy, ResilienceOptions, RetryPolicy
from repro.service import (
    AdmissionController,
    FederationService,
    ServiceOptions,
    TenantPolicy,
)
from repro.wrappers.faults import FaultInjector, FaultProfile
from tests.federation_fixtures import build_sales_wrapper

SQL = "SELECT sid FROM Suppliers WHERE city = 'city1'"


class TestTenantPolicy:
    def test_quota_must_be_positive(self):
        with pytest.raises(ValueError):
            TenantPolicy(quota=0.0)

    def test_defaults_unbounded(self):
        policy = TenantPolicy()
        assert policy.max_concurrent is None
        assert policy.max_outstanding_ms is None
        assert policy.max_queue_depth is None


class TestDecisions:
    def test_admit_with_headroom(self):
        controller = AdmissionController(max_concurrent_queries=2)
        decision = controller.decide("t", TenantPolicy(), 100.0)
        assert decision.admitted

    def test_queue_when_global_slots_full(self):
        controller = AdmissionController(max_concurrent_queries=1)
        controller.on_start("t", 100.0)
        decision = controller.decide("t", TenantPolicy(), 100.0)
        assert decision.queued

    def test_queue_when_tenant_slots_full(self):
        controller = AdmissionController()
        policy = TenantPolicy(max_concurrent=1)
        controller.on_start("t", 100.0)
        assert controller.decide("t", policy, 100.0).queued
        # A different tenant is unaffected.
        assert controller.decide("u", TenantPolicy(), 100.0).admitted

    def test_queue_when_outstanding_budget_consumed(self):
        controller = AdmissionController(max_outstanding_ms=1000.0)
        controller.on_start("t", 800.0)
        assert controller.decide("t", TenantPolicy(), 300.0).queued
        assert controller.decide("t", TenantPolicy(), 200.0).admitted

    def test_reject_infeasible_estimate(self):
        controller = AdmissionController()
        policy = TenantPolicy(max_outstanding_ms=500.0)
        decision = controller.decide("t", policy, 900.0)
        assert decision.rejected
        assert decision.reason.startswith("estimate_exceeds_budget")

    def test_reject_queue_overflow(self):
        controller = AdmissionController(max_concurrent_queries=1)
        policy = TenantPolicy(max_queue_depth=1)
        controller.on_start("t", 100.0)
        controller.on_queue("t")
        decision = controller.decide("t", policy, 100.0)
        assert decision.rejected
        assert decision.reason.startswith("queue_full")

    def test_finish_releases_budget(self):
        controller = AdmissionController(max_concurrent_queries=1)
        controller.on_start("t", 100.0)
        controller.on_finish("t", 100.0)
        assert controller.decide("t", TenantPolicy(), 100.0).admitted
        assert controller.global_usage.running == 0
        assert controller.global_usage.outstanding_ms == 0.0


def build_service(options=None, resilience=None, fault_profile=None):
    executor_options = (
        ExecutorOptions(resilience=resilience) if resilience is not None else None
    )
    mediator = Mediator(executor_options=executor_options)
    wrapper = build_sales_wrapper()
    if fault_profile is not None:
        wrapper = FaultInjector(wrapper, fault_profile)
    mediator.register(wrapper)
    return FederationService(mediator, options)


class TestServiceBackpressure:
    def test_rejected_submit_raises_and_records_ticket(self):
        service = build_service()
        service.set_policy("t", TenantPolicy(max_outstanding_ms=1.0))
        session = service.open_session("t")
        with pytest.raises(AdmissionRejectedError) as excinfo:
            service.submit(session, SQL)
        assert excinfo.value.tenant == "t"
        (ticket,) = service.tickets
        assert ticket.status == "rejected"
        assert ticket.rejection_reason.startswith("estimate_exceeds_budget")

    def test_queue_overflow_error_type(self):
        service = build_service(ServiceOptions(max_concurrent_queries=1))
        service.set_policy("t", TenantPolicy(max_queue_depth=1))
        session = service.open_session("t")
        service.submit(session, SQL)  # running
        service.submit(session, SQL)  # queued
        with pytest.raises(QueueOverflowError):
            service.submit(session, SQL)
        service.run()
        statuses = sorted(t.status for t in service.tickets)
        assert statuses == ["done", "done", "rejected"]

    def test_errors_are_admission_errors(self):
        service = build_service(ServiceOptions(max_concurrent_queries=1))
        service.set_policy("t", TenantPolicy(max_queue_depth=0))
        session = service.open_session("t")
        service.submit(session, SQL)
        with pytest.raises(AdmissionError):
            service.submit(session, SQL)
        service.run()

    def test_fast_reject_when_all_plan_wrappers_broken(self):
        resilience = ResilienceOptions(
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerPolicy(failure_threshold=1, cooldown_ms=1e9),
        )
        service = build_service(
            resilience=resilience,
            fault_profile=FaultProfile(error_probability=1.0, seed=3),
        )
        session = service.open_session("t")
        # First query trips the breaker (every attempt faults).
        try:
            service.query(session, SQL)
        except Exception:
            pass
        assert service.mediator.executor.scheduler.open_breaker_wrappers()
        with pytest.raises(ServiceDegradedError):
            service.submit(session, SQL)
        reject = service.tickets[-1]
        assert reject.rejection_reason.startswith("degraded")

    def test_fast_reject_can_be_disabled(self):
        resilience = ResilienceOptions(
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerPolicy(failure_threshold=1, cooldown_ms=1e9),
            mode="partial",
        )
        service = build_service(
            ServiceOptions(fast_reject_on_open_breakers=False),
            resilience=resilience,
            fault_profile=FaultProfile(error_probability=1.0, seed=3),
        )
        session = service.open_session("t")
        service.query(session, SQL)  # partial mode: degraded empty answer
        assert service.mediator.executor.scheduler.open_breaker_wrappers()
        ticket = service.submit(session, SQL)
        service.run()
        assert ticket.status == "done"  # admitted despite the open breaker
