"""The serving layer's equivalence guarantee.

At concurrency 1 with default (unbounded) tenant quotas, the service is
a pass-through: every dispatch request of the single running task is
forwarded 1:1 to the shared ``SubmitScheduler``, preserving the
one-vs-wave distinction.  So running a workload through
``FederationService.query`` must produce byte-identical answers,
latencies, and *simulated clock totals* to calling ``Mediator.query``
directly — for the sequential executor, the concurrent-wave executor,
and a fully armed (but never-firing) resilience configuration.
"""

from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import (
    BreakerPolicy,
    ResilienceOptions,
    RetryPolicy,
)
from repro.oo7 import TINY
from repro.oo7.workload import build_workload
from repro.service import FederationService, ServiceOptions
from repro.wrappers.faults import FaultInjector, FaultProfile
from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper

SEED = 7

ARMED = ResilienceOptions(
    retry=RetryPolicy(
        max_attempts=5,
        backoff_base_ms=100.0,
        jitter_ratio=0.3,
        deadline_ms=1e9,
    ),
    breaker=BreakerPolicy(failure_threshold=1, cooldown_ms=10.0),
    mode="partial",
)


def build_mediator(resilience=None, inject=False, parallel=False):
    mediator = Mediator(
        executor_options=ExecutorOptions(
            resilience=resilience, parallel_submits=parallel
        )
    )
    for wrapper in (build_oo7_wrapper(), build_sales_wrapper()):
        if inject:
            wrapper = FaultInjector(wrapper, FaultProfile(error_probability=0.0))
        mediator.register(wrapper)
    return mediator


def transcript_entry(label, result):
    return {
        "label": label,
        "rows": result.rows,
        "elapsed_ms": result.elapsed_ms,
        "time_first_ms": result.time_first_ms,
        "plan": result.plan.describe(),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "parallel_saved_ms": result.parallel_saved_ms,
    }


def clock_totals(mediator):
    clock = mediator.executor.clock
    return {
        "clock_total": clock.now_ms,
        "wait_ms": clock.stats.wait_ms,
        "messages": clock.stats.messages,
        "bytes": clock.stats.bytes_shipped,
    }


def run_direct(mediator):
    transcript = [
        transcript_entry(q.label, mediator.query(q.sql))
        for q in build_workload(TINY, SEED)
    ]
    transcript.append(clock_totals(mediator))
    return transcript


def run_through_service(mediator, plan_cache=False):
    service = FederationService(
        mediator,
        ServiceOptions(max_concurrent_queries=1, plan_cache=plan_cache),
    )
    session = service.open_session("tenant")
    transcript = [
        transcript_entry(q.label, service.query(session, q.sql))
        for q in build_workload(TINY, SEED)
    ]
    transcript.append(clock_totals(mediator))
    return transcript


class TestByteIdenticalAtConcurrencyOne:
    def test_sequential_executor(self):
        assert run_through_service(build_mediator()) == run_direct(
            build_mediator()
        )

    def test_parallel_wave_executor(self):
        assert run_through_service(
            build_mediator(parallel=True)
        ) == run_direct(build_mediator(parallel=True))

    def test_armed_resilience_executor(self):
        assert run_through_service(
            build_mediator(resilience=ARMED, inject=True, parallel=True)
        ) == run_direct(
            build_mediator(resilience=ARMED, inject=True, parallel=True)
        )

    def test_plan_cache_does_not_change_execution(self):
        # The cache skips parse + optimize, never execution: the repeated
        # workload (each TINY query appears once, but labels repeat the
        # mix) still produces an identical transcript.
        assert run_through_service(
            build_mediator(), plan_cache=True
        ) == run_direct(build_mediator())


class TestServiceBookkeepingAtConcurrencyOne:
    def test_tickets_record_execution_window(self):
        mediator = build_mediator()
        service = FederationService(
            mediator, ServiceOptions(max_concurrent_queries=1, plan_cache=False)
        )
        session = service.open_session("tenant")
        result = service.query(
            session, "SELECT * FROM Suppliers WHERE city = 'city0'"
        )
        (ticket,) = service.tickets
        assert ticket.status == "done"
        assert ticket.queue_wait_ms == 0.0
        assert ticket.latency_ms == result.elapsed_ms
        assert ticket.result is result

    def test_history_feeds_like_direct_path(self):
        def with_history():
            mediator = Mediator(record_history=True)
            mediator.register(build_sales_wrapper())
            return mediator

        direct = with_history()
        direct.query("SELECT * FROM Suppliers WHERE city = 'city0'")
        via_service = with_history()
        service = FederationService(
            via_service,
            ServiceOptions(max_concurrent_queries=1, plan_cache=False),
        )
        service.query(
            service.open_session("tenant"),
            "SELECT * FROM Suppliers WHERE city = 'city0'",
        )
        assert len(via_service.history) == len(direct.history)
        assert len(via_service.history) > 0
