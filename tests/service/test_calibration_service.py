"""The in-service calibration loop: cadence, windows, metrics, cache.

Drives a real :class:`FederationService` over the sales federation with
a deliberately skewed fault profile, so the drift window has something
to fit, and asserts the manager's operational contract: fits run
exactly on cadence, the window resets after every fit attempt, applied
overlays bump the catalog version and evict version-guarded plan-cache
entries, and every ``repro_calibration_*`` series lands in the metrics
exposition.
"""

import pytest

from repro.mediator.calibration import CalibrationPolicy
from repro.mediator.mediator import Mediator
from repro.service.calibration import CalibrationManager, CalibrationOptions
from repro.service.service import FederationService, ServiceOptions
from repro.wrappers.faults import FaultInjector, FaultProfile
from tests.federation_fixtures import build_sales_wrapper

SQL = "SELECT * FROM Orders WHERE qty > 70"


def build_service(
    cadence=4,
    min_samples=1,
    per_tenant=False,
    latency_multiplier=5.0,
    **policy_kwargs,
):
    mediator = Mediator()
    # A deterministic ×k latency fault makes every estimate wrong by a
    # known factor — guaranteed drift for the fitter to chew on.
    mediator.register(
        FaultInjector(
            build_sales_wrapper(),
            FaultProfile(
                latency_multiplier=latency_multiplier, latency_probability=1.0
            ),
        )
    )
    options = ServiceOptions(
        calibration=CalibrationOptions(
            cadence_queries=cadence,
            policy=CalibrationPolicy(min_samples=min_samples, **policy_kwargs),
            per_tenant=per_tenant,
        )
    )
    return mediator, FederationService(mediator, options)


def run_queries(service, count, tenant="t0"):
    session = service.open_session(tenant)
    for _ in range(count):
        service.query(session, SQL)


class TestCadence:
    def test_fit_runs_exactly_every_cadence_queries(self):
        _, service = build_service(cadence=4)
        manager = service.calibration
        run_queries(service, 3)
        assert manager.fits_attempted == 0
        assert manager.window_queries == 3
        run_queries(service, 1)
        assert manager.fits_attempted == 1
        run_queries(service, 8)
        assert manager.fits_attempted == 3

    def test_window_resets_after_every_fit_attempt(self):
        _, service = build_service(cadence=3, min_samples=10**6)
        manager = service.calibration
        run_queries(service, 3)
        # Fit attempted (and skipped everything) — window still resets.
        assert manager.fits_attempted == 1
        assert manager.overlays_applied == 0
        assert manager.window_queries == 0
        assert all(
            row["count"] == 0 for row in manager.window.snapshot()["rules"]
        )

    def test_record_returns_fit_only_on_cadence(self):
        mediator, service = build_service(cadence=2)
        manager = service.calibration
        session = service.open_session("t0")
        service.query(session, SQL)
        assert manager.last_fit is None
        service.query(session, SQL)
        assert manager.last_fit is not None

    def test_options_validated(self):
        with pytest.raises(ValueError):
            CalibrationOptions(cadence_queries=0)


class TestOverlayLifecycle:
    def test_overlay_applied_and_estimates_corrected(self):
        mediator, service = build_service(cadence=4)
        before = mediator.catalog.version
        run_queries(service, 4)
        manager = service.calibration
        assert manager.overlays_applied >= 1
        assert mediator.catalog.calibration.active_version >= 1
        assert mediator.catalog.version > before
        # Direction check against a no-fault control: the generic model
        # statically over-estimates this wrapper, so both arms fit a
        # multiplier below identity — but the ×5-slower arm must land
        # strictly higher than the unfaulted one.
        multiplier = mediator.catalog.calibration.multiplier_for(
            "sales", None, "TotalTime"
        )
        assert multiplier != 1.0
        control_mediator, control = build_service(
            cadence=4, latency_multiplier=1.0
        )
        run_queries(control, 4)
        control_multiplier = (
            control_mediator.catalog.calibration.multiplier_for(
                "sales", None, "TotalTime"
            )
        )
        assert multiplier > control_multiplier

    def test_applied_overlay_evicts_plan_cache_entries(self):
        mediator, service = build_service(cadence=4)
        assert service.plan_cache is not None
        run_queries(service, 4)  # query 4 triggers the fit + version bump
        invalidations_before = service.plan_cache.stats.invalidations
        run_queries(service, 1)  # stale entry detected on next lookup
        assert service.plan_cache.stats.invalidations > invalidations_before

    def test_forced_fit_uses_operator_note(self):
        mediator, service = build_service(cadence=10**6)
        run_queries(service, 3)
        fit = service.calibration.run_fit(note="operator forced")
        assert fit.changed
        assert mediator.catalog.calibration.active.note == "operator forced"


class TestMetrics:
    def test_all_series_exported(self):
        _, service = build_service(cadence=4, per_tenant=True)
        run_queries(service, 4, tenant="acme")
        text = service.metrics.expose_text()
        assert "repro_calibration_fits_total 1" in text
        assert 'repro_calibration_updates_total{wrapper="sales"}' in text
        assert "repro_calibration_qerror " in text
        assert "repro_calibration_active_version 1" in text
        assert 'repro_calibration_tenant_qerror{tenant="acme"}' in text

    def test_per_tenant_windows_are_diagnostic_only(self):
        mediator, service = build_service(cadence=4, per_tenant=True)
        run_queries(service, 2, tenant="a")
        run_queries(service, 2, tenant="b")
        manager = service.calibration
        assert manager.fits_attempted == 1
        # Applied coefficients come from the single global window; the
        # tenant windows only feed the gauge.
        assert set(manager._tenant_windows) == {"a", "b"}
        text = service.metrics.expose_text()
        assert 'repro_calibration_tenant_qerror{tenant="a"}' in text
        assert 'repro_calibration_tenant_qerror{tenant="b"}' in text


class TestConvergence:
    def test_repeated_fits_shrink_window_qerror(self):
        # Stationary ×5 drift: each fit walks the multiplier toward
        # truth, so the fit-window mean q must be (weakly) improving
        # between the first and the last window.
        _, service = build_service(cadence=4)
        manager = service.calibration
        qs = []
        session = service.open_session("t0")
        for _ in range(6):
            for _ in range(4):
                service.query(session, SQL)
            qs.append(manager.last_fit.window_mean_q)
        assert qs[-1] < qs[0]
        assert qs[-1] == pytest.approx(1.0, abs=0.35)


class TestManagerDirect:
    def test_manager_window_expects_all_wrappers(self):
        mediator, service = build_service()
        manager = service.calibration
        assert isinstance(manager, CalibrationManager)
        rows = manager.window.snapshot()["rules"]
        # Zero-sample placeholder rows exist before any query ran.
        assert rows and all(row["count"] == 0 for row in rows)
        assert {row["wrapper"] for row in rows} == {"sales"}
