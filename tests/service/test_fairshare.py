"""Deficit round-robin fairness and cross-query wave packing."""

from repro.bench.harness import build_federation
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.service import FederationService, ServiceOptions, TenantPolicy
from tests.federation_fixtures import build_sales_wrapper

SQL = "SELECT sid FROM Suppliers WHERE city = 'city1'"
UNION = (
    "SELECT oid, qty FROM OrdersEast "
    "UNION ALL SELECT oid, qty FROM OrdersWest "
    "UNION ALL SELECT oid, qty FROM OrdersNorth"
)


def build_simple_service(**option_kwargs):
    mediator = Mediator()
    mediator.register(build_sales_wrapper())
    return FederationService(mediator, ServiceOptions(**option_kwargs))


def start_order(service):
    started = [t for t in service.tickets if t.started_ms is not None]
    started.sort(key=lambda t: (t.started_ms, t.ticket_id))
    return [t.tenant for t in started]


def submit_batch(service, tenant, count):
    session = service.open_session(tenant)
    for _ in range(count):
        service.submit(session, SQL)


class TestDeficitRoundRobin:
    def test_equal_quotas_alternate(self):
        service = build_simple_service(max_concurrent_queries=1)
        submit_batch(service, "a", 4)
        submit_batch(service, "b", 4)
        service.run()
        order = start_order(service)
        # The first query starts on submit; after that, equal quotas and
        # equal costs alternate strictly.
        assert order == ["a", "a", "b", "a", "b", "a", "b", "b"]

    def test_quota_three_to_one(self):
        service = build_simple_service(max_concurrent_queries=1)
        service.set_policy("a", TenantPolicy(quota=3.0))
        service.set_policy("b", TenantPolicy(quota=1.0))
        submit_batch(service, "a", 9)
        submit_batch(service, "b", 3)
        service.run()
        order = start_order(service)
        assert all(t.status == "done" for t in service.tickets)
        # Quota 3 earns three starts per quota-1 start; in every prefix
        # the weighted shares stay close (the DRR fairness bound).
        for prefix in range(4, len(order) + 1):
            a_starts = order[:prefix].count("a")
            b_starts = order[:prefix].count("b")
            assert a_starts / 3 - b_starts / 1 <= 2.01
        assert order.count("a") == 9
        assert order[:4].count("a") == 3  # A A B A cycle

    def test_no_starvation_under_extreme_quota(self):
        service = build_simple_service(max_concurrent_queries=1)
        service.set_policy("whale", TenantPolicy(quota=1000.0))
        service.set_policy("minnow", TenantPolicy(quota=1.0))
        submit_batch(service, "whale", 6)
        submit_batch(service, "minnow", 2)
        service.run()
        assert all(t.status == "done" for t in service.tickets)
        minnow = [t for t in service.tickets if t.tenant == "minnow"]
        assert all(t.latency_ms is not None for t in minnow)

    def test_idle_lane_does_not_bank_credit(self):
        service = build_simple_service(max_concurrent_queries=1)
        # Tenant a's lane drains completely, then refills: its deficit
        # must reset in between (no burst from banked credit).
        submit_batch(service, "a", 2)
        service.run()
        scheduler = service.scheduler
        assert all(lane.deficit == 0.0 for lane in scheduler._lanes.values())

    def test_credit_passes_counted(self):
        service = build_simple_service(max_concurrent_queries=1)
        submit_batch(service, "a", 3)
        service.run()
        assert service.scheduler.stats.deficit_credit_passes > 0


class TestWavePacking:
    def build_parallel_service(self, **option_kwargs):
        mediator = build_federation(ExecutorOptions(parallel_submits=True))
        return FederationService(mediator, ServiceOptions(**option_kwargs))

    def test_cross_query_waves_overlap(self):
        service = self.build_parallel_service(max_concurrent_queries=4)
        for tenant in ("a", "b"):
            session = service.open_session(tenant)
            service.submit(session, UNION)
        service.run()
        stats = service.scheduler.stats
        assert stats.max_in_flight == 2
        assert stats.cross_query_waves >= 1
        first, second = service.tickets
        assert first.result.rows == second.result.rows

    def test_concurrent_matches_sequential_rows(self):
        solo = self.build_parallel_service(max_concurrent_queries=1)
        session = solo.open_session("a")
        expected = solo.query(session, UNION).rows

        service = self.build_parallel_service(max_concurrent_queries=4)
        for tenant in ("a", "b", "c"):
            service.submit(service.open_session(tenant), UNION)
        service.run()
        for ticket in service.tickets:
            assert ticket.status == "done"
            assert ticket.result.rows == expected

    def test_wrapper_wave_cap_splits_waves(self):
        uncapped = self.build_parallel_service(max_concurrent_queries=4)
        capped = self.build_parallel_service(
            max_concurrent_queries=4, wrapper_wave_cap=1
        )
        for service in (uncapped, capped):
            for tenant in ("a", "b"):
                service.submit(service.open_session(tenant), UNION)
            service.run()
        assert (
            capped.scheduler.stats.waves_dispatched
            > uncapped.scheduler.stats.waves_dispatched
        )
        # Capping changes the wave shape, never the answers.
        assert [t.result.rows for t in capped.tickets] == [
            t.result.rows for t in uncapped.tickets
        ]

    def test_single_task_rounds_never_count_cross_query(self):
        service = self.build_parallel_service(max_concurrent_queries=1)
        for tenant in ("a", "b"):
            service.submit(service.open_session(tenant), UNION)
        service.run()
        assert service.scheduler.stats.cross_query_waves == 0
        assert service.scheduler.stats.max_in_flight == 1
