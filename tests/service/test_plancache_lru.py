"""Regression: the plan cache evicts LRU, not FIFO, and never leaves
dangling SQL-text entries.

Seed behavior evicted ``next(iter(self._plans))`` — insertion order — so
a hot plan re-used on every query was the victim as soon as it was the
oldest insertion.  ``lookup`` now refreshes recency in both maps, and
evicting a plan (capacity or stale version) drops the SQL texts that
resolve to it (a dangling fingerprint guaranteed a double miss: the
parse was skipped only to miss the plan map).
Calibration rides on the same version guard: applying or rolling back a
calibration overlay bumps the catalog version, so every cached plan —
costed under the previous coefficient set — is stale on its next lookup.
The :class:`TestCalibrationVersioning` battery pins that contract
end-to-end through a real mediator.
"""

from repro.mediator.calibration import CoefficientKey
from repro.mediator.mediator import Mediator
from repro.service.plancache import PlanCache
from repro.service.service import FederationService, ServiceOptions
from tests.federation_fixtures import build_sales_wrapper

V = 1


def plan(tag: str) -> object:
    return ("optimized", tag)


class TestLruEviction:
    def test_hot_entry_survives_capacity_eviction(self):
        cache = PlanCache(max_entries=2)
        cache.store("hot", V, plan("hot"))
        cache.store("cold", V, plan("cold"))
        # Touch the older entry: it becomes most recently used.
        assert cache.lookup("hot", V) == plan("hot")
        cache.store("new", V, plan("new"))
        assert cache.lookup("hot", V) == plan("hot")
        assert cache.lookup("cold", V) is None  # the true LRU was evicted

    def test_seed_fifo_behavior_would_evict_the_hot_plan(self):
        # The exact scenario from the issue: a plan re-used every query
        # must never be the victim, however old its insertion.
        cache = PlanCache(max_entries=3)
        cache.store("hot", V, plan("hot"))
        for generation in range(10):
            fingerprint = f"cold{generation}"
            cache.store(fingerprint, V, plan(fingerprint))
            assert cache.lookup("hot", V) == plan("hot")

    def test_sql_map_hits_refresh_recency(self):
        cache = PlanCache(max_entries=2)
        cache.remember_sql("SELECT 1", "f1", V)
        cache.remember_sql("SELECT 2", "f2", V)
        assert cache.fingerprint_for_sql("SELECT 1", V) == "f1"
        cache.remember_sql("SELECT 3", "f3", V)
        assert cache.fingerprint_for_sql("SELECT 1", V) == "f1"
        assert cache.fingerprint_for_sql("SELECT 2", V) is None


class TestDanglingSqlEntries:
    def test_capacity_eviction_drops_sql_texts_of_the_victim(self):
        cache = PlanCache(max_entries=1)
        cache.store("f1", V, plan("one"))
        cache.remember_sql("SELECT 1", "f1", V)
        cache.remember_sql("SELECT 1 -- same spec", "f1", V)
        cache.store("f2", V, plan("two"))  # evicts f1
        # Both texts resolving to the evicted fingerprint are gone: the
        # next query re-parses and re-stores instead of double-missing.
        assert cache.fingerprint_for_sql("SELECT 1", V) is None
        assert cache.fingerprint_for_sql("SELECT 1 -- same spec", V) is None
        assert cache.lookup("f2", V) == plan("two")

    def test_stale_version_eviction_drops_sql_texts_too(self):
        cache = PlanCache(max_entries=8)
        cache.store("f1", V, plan("one"))
        cache.remember_sql("SELECT 1", "f1", V)
        assert cache.lookup("f1", V + 1) is None  # catalog changed
        assert cache.stats.invalidations == 1
        dangling = cache.fingerprint_for_sql("SELECT 1", V)
        assert dangling is None

    def test_unrelated_sql_entries_survive_eviction(self):
        cache = PlanCache(max_entries=1)
        cache.store("f1", V, plan("one"))
        cache.remember_sql("SELECT 1", "f1", V)
        cache.store("f2", V, plan("two"))
        cache.remember_sql("SELECT 2", "f2", V)
        assert cache.fingerprint_for_sql("SELECT 2", V) == "f2"
        assert cache.lookup("f2", V) == plan("two")


KEY = CoefficientKey("sales", None, "TotalTime")
SQL = "SELECT * FROM Orders WHERE qty > 70"


class TestCalibrationVersioning:
    """Overlay apply/rollback × catalog version × plan-cache eviction."""

    def build(self):
        mediator = Mediator()
        mediator.register(build_sales_wrapper())
        return mediator, FederationService(mediator, ServiceOptions())

    def test_unit_version_bump_invalidates_cached_plan(self):
        cache = PlanCache(max_entries=8)
        cache.store("f1", V, plan("one"))
        assert cache.lookup("f1", V) == plan("one")
        # What apply_calibration does to the catalog, seen by the cache.
        assert cache.lookup("f1", V + 1) is None
        assert cache.stats.invalidations == 1

    def test_rollback_restores_exact_coefficients_and_bumps_version(self):
        mediator, _ = self.build()
        state = mediator.catalog.calibration
        mediator.apply_calibration({KEY: 2.0}, note="v1")
        mediator.apply_calibration({KEY: 3.0}, note="v2")
        mediator.apply_calibration(
            {CoefficientKey("sales", None, "CountObject"): 0.5}, note="v3"
        )
        version_before = mediator.catalog.version
        snapshot_v2 = dict(state.versions[2].multipliers)
        mediator.rollback_calibration(2)
        assert state.active_version == 2
        assert dict(state.active.multipliers) == snapshot_v2
        assert mediator.catalog.version == version_before + 1
        assert len(state) == 4  # history intact: rollback deletes nothing

    def test_overlay_churn_evicts_dependent_cache_entries(self):
        mediator, service = self.build()
        session = service.open_session("t0")
        service.query(session, SQL)  # populates the plan cache
        hits_before = service.plan_cache.stats.hits
        service.query(session, SQL)
        assert service.plan_cache.stats.hits == hits_before + 1

        for version_note, multiplier in (("v1", 2.0), ("v2", 3.0)):
            mediator.apply_calibration({KEY: multiplier}, note=version_note)
        invalidations = service.plan_cache.stats.invalidations
        service.query(session, SQL)  # stale under the new version
        assert service.plan_cache.stats.invalidations == invalidations + 1

        mediator.rollback_calibration(0)
        invalidations = service.plan_cache.stats.invalidations
        service.query(session, SQL)  # stale again after rollback
        assert service.plan_cache.stats.invalidations == invalidations + 1

    def test_rollback_to_identity_restores_seed_estimates(self):
        mediator, service = self.build()
        session = service.open_session("t0")
        seed = service.query(session, SQL).estimated_ms
        mediator.apply_calibration({KEY: 4.0})
        scaled = service.query(session, SQL).estimated_ms
        assert scaled > seed
        mediator.rollback_calibration(0)
        assert service.query(session, SQL).estimated_ms == seed
