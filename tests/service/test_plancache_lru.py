"""Regression: the plan cache evicts LRU, not FIFO, and never leaves
dangling SQL-text entries.

Seed behavior evicted ``next(iter(self._plans))`` — insertion order — so
a hot plan re-used on every query was the victim as soon as it was the
oldest insertion.  ``lookup`` now refreshes recency in both maps, and
evicting a plan (capacity or stale version) drops the SQL texts that
resolve to it (a dangling fingerprint guaranteed a double miss: the
parse was skipped only to miss the plan map).
"""

from repro.service.plancache import PlanCache

V = 1


def plan(tag: str) -> object:
    return ("optimized", tag)


class TestLruEviction:
    def test_hot_entry_survives_capacity_eviction(self):
        cache = PlanCache(max_entries=2)
        cache.store("hot", V, plan("hot"))
        cache.store("cold", V, plan("cold"))
        # Touch the older entry: it becomes most recently used.
        assert cache.lookup("hot", V) == plan("hot")
        cache.store("new", V, plan("new"))
        assert cache.lookup("hot", V) == plan("hot")
        assert cache.lookup("cold", V) is None  # the true LRU was evicted

    def test_seed_fifo_behavior_would_evict_the_hot_plan(self):
        # The exact scenario from the issue: a plan re-used every query
        # must never be the victim, however old its insertion.
        cache = PlanCache(max_entries=3)
        cache.store("hot", V, plan("hot"))
        for generation in range(10):
            fingerprint = f"cold{generation}"
            cache.store(fingerprint, V, plan(fingerprint))
            assert cache.lookup("hot", V) == plan("hot")

    def test_sql_map_hits_refresh_recency(self):
        cache = PlanCache(max_entries=2)
        cache.remember_sql("SELECT 1", "f1", V)
        cache.remember_sql("SELECT 2", "f2", V)
        assert cache.fingerprint_for_sql("SELECT 1", V) == "f1"
        cache.remember_sql("SELECT 3", "f3", V)
        assert cache.fingerprint_for_sql("SELECT 1", V) == "f1"
        assert cache.fingerprint_for_sql("SELECT 2", V) is None


class TestDanglingSqlEntries:
    def test_capacity_eviction_drops_sql_texts_of_the_victim(self):
        cache = PlanCache(max_entries=1)
        cache.store("f1", V, plan("one"))
        cache.remember_sql("SELECT 1", "f1", V)
        cache.remember_sql("SELECT 1 -- same spec", "f1", V)
        cache.store("f2", V, plan("two"))  # evicts f1
        # Both texts resolving to the evicted fingerprint are gone: the
        # next query re-parses and re-stores instead of double-missing.
        assert cache.fingerprint_for_sql("SELECT 1", V) is None
        assert cache.fingerprint_for_sql("SELECT 1 -- same spec", V) is None
        assert cache.lookup("f2", V) == plan("two")

    def test_stale_version_eviction_drops_sql_texts_too(self):
        cache = PlanCache(max_entries=8)
        cache.store("f1", V, plan("one"))
        cache.remember_sql("SELECT 1", "f1", V)
        assert cache.lookup("f1", V + 1) is None  # catalog changed
        assert cache.stats.invalidations == 1
        dangling = cache.fingerprint_for_sql("SELECT 1", V)
        assert dangling is None

    def test_unrelated_sql_entries_survive_eviction(self):
        cache = PlanCache(max_entries=1)
        cache.store("f1", V, plan("one"))
        cache.remember_sql("SELECT 1", "f1", V)
        cache.store("f2", V, plan("two"))
        cache.remember_sql("SELECT 2", "f2", V)
        assert cache.fingerprint_for_sql("SELECT 2", V) == "f2"
        assert cache.lookup("f2", V) == plan("two")
