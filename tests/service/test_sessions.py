"""Sessions, prepared statements, and plan resolution through the cache."""

import pytest

from repro.errors import SessionError, UnknownPreparedStatementError
from repro.mediator.mediator import Mediator
from repro.service import FederationService, PlanCache, SessionManager
from repro.service.session import PreparedStatement
from tests.federation_fixtures import build_oo7_wrapper, build_sales_wrapper

SQL = "SELECT sid FROM Suppliers WHERE city = 'city1'"


@pytest.fixture
def mediator():
    mediator = Mediator()
    mediator.register(build_sales_wrapper())
    mediator.register(build_oo7_wrapper())
    return mediator


@pytest.fixture
def manager(mediator):
    return SessionManager(mediator, PlanCache())


class TestSessions:
    def test_open_and_close(self, manager):
        session = manager.open_session("alice")
        assert session.tenant == "alice"
        assert not session.closed
        manager.close_session(session)
        assert session.closed
        with pytest.raises(SessionError):
            session.resolve(SQL)

    def test_session_ids_unique_per_manager(self, manager):
        first = manager.open_session("alice")
        second = manager.open_session("alice")
        assert first.session_id != second.session_id

    def test_explicit_duplicate_id_rejected(self, manager):
        manager.open_session("alice", session_id="s1")
        with pytest.raises(SessionError):
            manager.open_session("bob", session_id="s1")

    def test_closed_id_can_be_reused(self, manager):
        session = manager.open_session("alice", session_id="s1")
        manager.close_session(session)
        reopened = manager.open_session("alice", session_id="s1")
        assert reopened is not session


class TestPreparedStatements:
    def test_prepare_parses_once_and_names(self, manager):
        session = manager.open_session("alice")
        statement = session.prepare(SQL)
        assert isinstance(statement, PreparedStatement)
        assert statement.sql == SQL
        assert statement.fingerprint
        assert session.statement(statement.handle) is statement

    def test_unknown_handle_raises(self, manager):
        session = manager.open_session("alice")
        with pytest.raises(UnknownPreparedStatementError):
            session.statement("nope")

    def test_execute_via_service(self, mediator):
        service = FederationService(mediator)
        session = service.open_session("alice")
        statement = session.prepare(SQL)
        direct = service.query(session, SQL)
        prepared = service.query(session, statement)
        assert prepared.rows == direct.rows
        assert statement.executions == 1

    def test_reparse_after_catalog_change(self, manager, mediator):
        session = manager.open_session("alice")
        statement = session.prepare(SQL)
        version_at_prepare = statement.catalog_version
        mediator.register(build_sales_wrapper())  # bumps catalog.version
        session.resolve(statement)
        assert statement.catalog_version == mediator.catalog.version
        assert statement.catalog_version != version_at_prepare


class TestPlanResolution:
    def test_same_sql_hits_plan_cache(self, manager):
        session = manager.open_session("alice")
        first = session.resolve(SQL)
        second = session.resolve(SQL)
        assert not first.plan_cached
        assert second.plan_cached
        assert second.optimized is first.optimized
        # Byte-identical SQL also skipped the parser the second time.
        assert manager.plan_cache.stats.sql_hits == 1

    def test_cache_shared_across_sessions_and_tenants(self, manager):
        alice = manager.open_session("alice")
        bob = manager.open_session("bob")
        alice.resolve(SQL)
        assert bob.resolve(SQL).plan_cached

    def test_equivalent_specs_share_one_entry(self, manager):
        session = manager.open_session("alice")
        base = (
            "SELECT * FROM Suppliers, Orders "
            "WHERE Orders.supplier = Suppliers.sid"
        )
        flipped = (
            "SELECT * FROM Orders, Suppliers "
            "WHERE Suppliers.sid = Orders.supplier"
        )
        session.resolve(base)
        assert session.resolve(flipped).plan_cached

    def test_no_cache_means_fresh_plans(self, mediator):
        manager = SessionManager(mediator, plan_cache=None)
        session = manager.open_session("alice")
        first = session.resolve(SQL)
        second = session.resolve(SQL)
        assert not second.plan_cached
        assert second.optimized is not first.optimized

    def test_spec_input_resolves_too(self, manager, mediator):
        spec = mediator.parse(SQL)
        session = manager.open_session("alice")
        first = session.resolve(spec)
        second = session.resolve(SQL)
        assert not first.plan_cached
        assert second.plan_cached  # the SQL normalizes to the same spec
