"""Tests for the OO7 schema configurations and generator."""

import pytest

from repro.oo7 import schema
from repro.oo7.generator import EXTENT_LAYOUT, generate, load_database


class TestConfigs:
    def test_paper_config_matches_section5(self):
        """70 000 AtomicParts of 56 bytes on 1000 pages at 96 % fill."""
        config = schema.PAPER
        assert config.num_atomic_parts == 70000
        assert schema.ATOMIC_PART_BYTES == 56

    def test_small_config_matches_oo7_spec(self):
        config = schema.SMALL
        assert config.num_atomic_parts == 10000
        assert config.num_base_assemblies == 3**6
        assert config.num_complex_assemblies == sum(3**i for i in range(6))

    def test_connection_counts(self):
        assert schema.TINY.num_connections == (
            schema.TINY.num_atomic_parts * 3
        )


class TestGenerator:
    @pytest.fixture(scope="class")
    def data(self):
        return generate(schema.TINY, seed=7)

    def test_cardinalities_match_config(self, data):
        config = schema.TINY
        assert len(data.atomic_parts) == config.num_atomic_parts
        assert len(data.composite_parts) == config.num_composite_parts
        assert len(data.documents) == config.num_composite_parts
        assert len(data.connections) == config.num_connections
        assert len(data.base_assemblies) == config.num_base_assemblies
        assert len(data.complex_assemblies) == config.num_complex_assemblies
        assert len(data.modules) == config.num_modules

    def test_atomic_ids_unique_and_uniform(self, data):
        ids = [p["Id"] for p in data.atomic_parts]
        assert ids == list(range(len(ids)))

    def test_foreign_keys_valid(self, data):
        comp_ids = {c["Id"] for c in data.composite_parts}
        assert all(p["partOf"] in comp_ids for p in data.atomic_parts)
        atomic_ids = {p["Id"] for p in data.atomic_parts}
        assert all(c["fromId"] in atomic_ids for c in data.connections)
        assert all(c["toId"] in atomic_ids for c in data.connections)
        assert all(b["componentId"] in comp_ids for b in data.base_assemblies)

    def test_connections_stay_within_composite(self, data):
        part_of = {p["Id"]: p["partOf"] for p in data.atomic_parts}
        for connection in data.connections:
            assert part_of[connection["fromId"]] == part_of[connection["toId"]]

    def test_build_dates_in_range(self, data):
        for part in data.atomic_parts:
            assert schema.MIN_BUILD_DATE <= part["buildDate"] <= schema.MAX_BUILD_DATE

    def test_deterministic(self):
        first = generate(schema.TINY, seed=3)
        second = generate(schema.TINY, seed=3)
        assert first.atomic_parts == second.atomic_parts
        assert first.connections == second.connections

    def test_seed_changes_data(self):
        first = generate(schema.TINY, seed=1)
        second = generate(schema.TINY, seed=2)
        assert first.atomic_parts != second.atomic_parts

    def test_assembly_tree_structure(self, data):
        config = schema.TINY
        by_id = {a["Id"]: a for a in data.complex_assemblies}
        roots = [a for a in data.complex_assemblies if a["parent"] == -1]
        assert len(roots) == config.num_modules
        for assembly in data.complex_assemblies:
            if assembly["parent"] != -1:
                assert by_id[assembly["parent"]]["level"] == assembly["level"] - 1


class TestLoading:
    def test_load_all_extents(self):
        db = load_database(schema.TINY)
        assert set(db.collection_names()) == set(EXTENT_LAYOUT)

    def test_load_subset(self):
        db = load_database(schema.TINY, extents=("AtomicParts",))
        assert db.collection_names() == ["AtomicParts"]

    def test_paper_layout_produces_1000_pages(self):
        db = load_database(schema.PAPER, extents=("AtomicParts",))
        assert db.page_count("AtomicParts") == 1000
        stats = db.export_statistics("AtomicParts")
        assert stats.count_object == 70000
        assert stats.object_size == 56
        assert stats.attribute("Id").indexed

    def test_indexes_built_per_layout(self):
        db = load_database(schema.TINY)
        assert db.has_index("AtomicParts", "buildDate")
        assert db.has_index("Connections", "fromId")
        assert not db.has_index("Connections", "toId")
