"""The federation serving layer: ``FederationService``.

``Mediator`` answers one query at a time for one anonymous caller.  The
service wraps it with the multi-tenant machinery a shared deployment
needs — sessions, plan caching, cost-based admission control, and a
fair-share scheduler that interleaves the submit waves of concurrent
queries on the shared simulated clock:

* :meth:`FederationService.open_session` — per-tenant sessions with
  prepared statements (:mod:`repro.service.session`);
* :meth:`FederationService.submit` — resolve (through the plan cache),
  estimate, and run the query through admission: admitted queries start,
  queued ones wait in their tenant's lane, rejected ones raise a
  backpressure error from :mod:`repro.errors`;
* :meth:`FederationService.run` — drive every in-flight and queued query
  to completion under the fair-share scheduler;
* :meth:`FederationService.query` — the one-call convenience (submit +
  drain + return the result), used by tests and simple clients.

Everything is deterministic: time is the mediator's simulated clock,
admission charges *estimated* cost, and the scheduler's thread handoff
is strict.  Metrics go to the mediator's registry when observability is
on (so ``expose_text`` shows serving and engine metrics side by side)
and to a private registry otherwise.

Attribution caveat: per-query ``cache_hits`` / ``parallel_saved_ms``
deltas are exact when queries run alone but approximate under
interleaving — the executor snapshots shared counters around its own
execution window, which overlaps other queries' activity.  Service-level
metrics (latency, queue wait, admission counters) are always exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    AdmissionRejectedError,
    QueueOverflowError,
    ServiceDegradedError,
    SessionError,
)
from repro.mediator.executor import MediatorExecutor
from repro.mediator.mediator import Mediator, QueryResult
from repro.mediator.optimizer import OptimizationResult
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.service.admission import AdmissionController, TenantPolicy
from repro.service.calibration import CalibrationManager, CalibrationOptions
from repro.service.plancache import PlanCache
from repro.service.scheduler import FairShareScheduler, QueryTask, TaskDispatchProxy
from repro.service.session import PlanResolution, Session, SessionManager

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
REJECTED = "rejected"


@dataclass
class ServiceOptions:
    """Knobs of the serving layer (see ``docs/serving.md``)."""

    #: Global cap on concurrently running queries (None = unbounded).
    max_concurrent_queries: int | None = 8
    #: Global cap on summed estimated TotalTime of running queries.
    max_outstanding_ms: float | None = None
    #: Memoize optimized plans by normalized-query fingerprint.
    plan_cache: bool = True
    plan_cache_entries: int = 256
    #: Max submits per wrapper in one cross-query combined wave.
    wrapper_wave_cap: int | None = None
    #: Deficit round-robin credit per scheduling round (ms of estimated
    #: work), multiplied by each tenant's quota.
    drr_quantum_ms: float = 1000.0
    #: Reject queries whose plans only touch open-breaker wrappers.
    fast_reject_on_open_breakers: bool = True
    #: Policy for tenants without an explicit ``set_policy`` entry.
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    #: Online cost recalibration on a query-count cadence (§4.3 feedback
    #: loop; see ``docs/calibration.md``).  None = off, the seed path.
    calibration: CalibrationOptions | None = None

    def __post_init__(self) -> None:
        if (
            self.max_concurrent_queries is not None
            and self.max_concurrent_queries < 1
        ):
            raise ValueError(
                "max_concurrent_queries must be >= 1 or None, got "
                f"{self.max_concurrent_queries}"
            )


@dataclass
class Ticket:
    """One submitted query's lifecycle record."""

    ticket_id: str
    tenant: str
    session_id: str
    status: str
    estimated_ms: float
    #: Simulated-clock timestamps (ms).
    submitted_ms: float
    started_ms: float | None = None
    finished_ms: float | None = None
    plan_cached: bool = False
    rejection_reason: str = ""
    result: QueryResult | None = None
    error: BaseException | None = None
    #: Admission/lifecycle events (submit, queue, reject, start, finish)
    #: on the simulated clock; copied into ``QueryResult.profile
    #: .timeline`` when profiling is on.
    events: list[dict] = field(default_factory=list)

    def record_event(self, event: str, at_ms: float, **details) -> None:
        self.events.append(
            {"event": event, "at_ms": at_ms, "tenant": self.tenant, **details}
        )

    @property
    def queue_wait_ms(self) -> float | None:
        """Simulated ms between submit and start (None until started)."""
        if self.started_ms is None:
            return None
        return self.started_ms - self.submitted_ms

    @property
    def latency_ms(self) -> float | None:
        """End-to-end simulated ms: submit to finish (includes queueing)."""
        if self.finished_ms is None:
            return None
        return self.finished_ms - self.submitted_ms


class FederationService:
    """Multi-tenant serving layer over one :class:`Mediator`."""

    def __init__(
        self, mediator: Mediator, options: ServiceOptions | None = None
    ) -> None:
        self.mediator = mediator
        self.options = options if options is not None else ServiceOptions()
        self.clock = mediator.executor.clock
        self.plan_cache: PlanCache | None = (
            PlanCache(max_entries=self.options.plan_cache_entries)
            if self.options.plan_cache
            else None
        )
        self.sessions = SessionManager(mediator, self.plan_cache)
        self.admission = AdmissionController(
            max_concurrent_queries=self.options.max_concurrent_queries,
            max_outstanding_ms=self.options.max_outstanding_ms,
            fast_reject_on_open_breakers=(
                self.options.fast_reject_on_open_breakers
            ),
        )
        self.scheduler = FairShareScheduler(
            mediator.executor.scheduler,
            self.admission,
            drr_quantum_ms=self.options.drr_quantum_ms,
            wrapper_wave_cap=self.options.wrapper_wave_cap,
            on_start=self._on_task_start,
            on_complete=self._on_task_complete,
        )
        self.policies: dict[str, TenantPolicy] = {}
        self.tickets: list[Ticket] = []
        self._ticket_counter = 0
        self._completion_callbacks: dict[str, object] = {}
        # Serving metrics join the mediator's registry when observability
        # is on; otherwise they live in a private registry, so the
        # serving counters always exist.
        telemetry = mediator.telemetry
        self.metrics: MetricsRegistry = (
            telemetry.metrics
            if telemetry is not None and telemetry.metrics is not None
            else MetricsRegistry()
        )
        self._tracer = telemetry.tracer if telemetry is not None else NULL_TRACER
        self._trace_tasks = (
            mediator.observability.enabled and mediator.observability.trace
        )
        #: Online recalibration loop; None when the option is off.
        self.calibration: CalibrationManager | None = (
            CalibrationManager(mediator, self.options.calibration, self.metrics)
            if self.options.calibration is not None
            else None
        )

    # -- sessions --------------------------------------------------------------

    def open_session(self, tenant: str, session_id: str | None = None) -> Session:
        session = self.sessions.open_session(tenant, session_id)
        if self._tracer.enabled:
            self._tracer.event(
                "session.open",
                kind="session",
                tenant=tenant,
                session=session.session_id,
            )
        return session

    def close_session(self, session: Session) -> None:
        self.sessions.close_session(session)
        if self._tracer.enabled:
            self._tracer.event(
                "session.close",
                kind="session",
                tenant=session.tenant,
                session=session.session_id,
            )

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        self.policies[tenant] = policy

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.policies.get(tenant, self.options.default_policy)

    # -- submission ------------------------------------------------------------

    def submit(self, session: Session, query, on_complete=None) -> Ticket:
        """Resolve, estimate, and admit one query.

        Returns the ticket (``running`` or ``queued``); raises an
        :class:`~repro.errors.AdmissionError` subclass when admission
        bounces the query (the rejected ticket is still recorded in
        :attr:`tickets` for inspection).
        """
        if session.manager is not self.sessions:
            raise SessionError(
                f"session {session.session_id!r} belongs to another service"
            )
        resolution = session.resolve(query)
        estimated = resolution.optimized.estimate.total_time
        tenant = session.tenant
        policy = self.policy_for(tenant)
        ticket = self._new_ticket(session, resolution, estimated)
        ticket.record_event(
            "submit",
            ticket.submitted_ms,
            estimated_ms=estimated,
            plan_cached=resolution.plan_cached,
        )
        self._count("repro_service_submitted_total", tenant)
        if resolution.plan_cached:
            self._count("repro_service_plan_cache_hits_total", tenant)
        else:
            self._count("repro_service_plan_cache_misses_total", tenant)
        decision = self.admission.decide(
            tenant,
            policy,
            estimated,
            plan=resolution.optimized.plan,
            scheduler=self.mediator.executor.scheduler,
        )
        if self._tracer.enabled:
            self._tracer.event(
                "admit",
                kind="admit",
                tenant=tenant,
                ticket=ticket.ticket_id,
                decision=decision.status,
                reason=decision.reason,
                estimated_ms=estimated,
            )
        if decision.rejected:
            return self._reject(ticket, decision.reason)
        task = self._build_task(ticket, resolution)
        if on_complete is not None:
            self._completion_callbacks[ticket.ticket_id] = on_complete
        if decision.admitted:
            self.scheduler.start_now(task, policy)
        else:
            ticket.status = QUEUED
            ticket.record_event(
                "queue",
                self.clock.now_ms,
                depth=self.admission.usage(tenant).queued + 1,
            )
            self._count("repro_service_queued_total", tenant)
            if self._tracer.enabled:
                self._tracer.event(
                    "queue",
                    kind="queue",
                    tenant=tenant,
                    ticket=ticket.ticket_id,
                    depth=self.admission.usage(tenant).queued + 1,
                )
            self.scheduler.enqueue(task, policy)
        return ticket

    def run(self) -> None:
        """Drive every in-flight and queued query to completion."""
        self.scheduler.run()

    def query(self, session: Session, query) -> QueryResult:
        """Submit one query, drain the service, and return its answer."""
        ticket = self.submit(session, query)
        self.run()
        if ticket.error is not None:
            raise ticket.error
        assert ticket.result is not None
        return ticket.result

    # -- internals -------------------------------------------------------------

    def _new_ticket(
        self, session: Session, resolution: PlanResolution, estimated: float
    ) -> Ticket:
        self._ticket_counter += 1
        ticket = Ticket(
            ticket_id=f"t{self._ticket_counter}",
            tenant=session.tenant,
            session_id=session.session_id,
            status=RUNNING,
            estimated_ms=estimated,
            submitted_ms=self.clock.now_ms,
            plan_cached=resolution.plan_cached,
        )
        self.tickets.append(ticket)
        return ticket

    def _reject(self, ticket: Ticket, reason: str) -> Ticket:
        ticket.status = REJECTED
        ticket.rejection_reason = reason
        ticket.record_event("reject", self.clock.now_ms, reason=reason)
        kind = reason.split(":", 1)[0]
        counter = self.metrics.counter(
            "repro_service_rejected_total",
            "Queries bounced by admission control",
            ("tenant", "reason"),
        )
        counter.inc(tenant=ticket.tenant, reason=kind)
        message = (
            f"query of tenant {ticket.tenant!r} rejected: {reason} "
            f"(estimated {ticket.estimated_ms:.0f} ms)"
        )
        if kind == "degraded":
            error = ServiceDegradedError(message, tenant=ticket.tenant, reason=reason)
        elif kind == "queue_full":
            error = QueueOverflowError(message, tenant=ticket.tenant, reason=reason)
        else:
            error = AdmissionRejectedError(
                message, tenant=ticket.tenant, reason=reason
            )
        ticket.error = error
        raise error

    def _build_task(
        self, ticket: Ticket, resolution: PlanResolution
    ) -> QueryTask:
        mediator = self.mediator
        # A private executor per task: own submit log and prefetch state,
        # but the shared clock, subanswer cache, and catalog — so all
        # accounting lands on the one simulated timeline.
        executor = MediatorExecutor(
            mediator.catalog,
            clock=self.clock,
            options=mediator.executor.options,
            cache=mediator.executor.cache,
        )
        tracer = SpanTracer(self.clock) if self._trace_tasks else None
        task = QueryTask(
            ticket=ticket,
            tenant=ticket.tenant,
            estimated_ms=ticket.estimated_ms,
            executor=executor,
            plan=resolution.optimized.plan,
            tracer=tracer,
        )
        task.optimized = resolution.optimized
        task.sql = resolution.sql
        executor.scheduler = TaskDispatchProxy(task, mediator.executor.scheduler)
        if tracer is not None:
            executor.set_tracer(
                tracer, trace_compose=mediator.observability.trace_compose
            )
        return task

    def _on_task_start(self, task: QueryTask) -> None:
        ticket: Ticket = task.ticket
        ticket.status = RUNNING
        ticket.started_ms = self.clock.now_ms
        ticket.record_event(
            "start", ticket.started_ms, queue_wait_ms=ticket.queue_wait_ms or 0.0
        )
        self._count("repro_service_admitted_total", ticket.tenant)
        self.metrics.summary(
            "repro_service_queue_wait_ms",
            "Simulated ms between submit and start",
            ("tenant",),
        ).observe(ticket.queue_wait_ms or 0.0, tenant=ticket.tenant)
        self._set_in_flight()

    def _on_task_complete(self, task: QueryTask) -> None:
        ticket: Ticket = task.ticket
        ticket.finished_ms = self.clock.now_ms
        self._set_in_flight()
        if task.error is not None:
            ticket.status = FAILED
            ticket.error = task.error
            ticket.record_event(
                "fail", ticket.finished_ms, error=type(task.error).__name__
            )
            self._count("repro_service_failed_total", ticket.tenant)
        else:
            ticket.record_event(
                "finish", ticket.finished_ms, latency_ms=ticket.latency_ms or 0.0
            )
            ticket.result = self._finalize(task)
            ticket.status = DONE
            self._count("repro_service_completed_total", ticket.tenant)
            self.metrics.summary(
                "repro_service_latency_ms",
                "End-to-end simulated latency (submit to finish)",
                ("tenant",),
            ).observe(ticket.latency_ms or 0.0, tenant=ticket.tenant)
        callback = self._completion_callbacks.pop(ticket.ticket_id, None)
        if callback is not None:
            callback(ticket)

    def _finalize(self, task: QueryTask) -> QueryResult:
        """Mirror the tail of ``Mediator.query``: feed history and
        telemetry, then assemble the client-facing result."""
        mediator = self.mediator
        optimized: OptimizationResult = task.optimized
        execution = task.execution
        assert execution is not None
        if mediator.history is not None:
            mediator.history.record_plan(
                optimized.plan, execution, mediator.catalog
            )
        trace = None
        if task.tracer is not None and task.tracer.roots:
            trace = task.tracer.roots[0]
        result = QueryResult(
            rows=execution.rows,
            elapsed_ms=execution.total_time_ms,
            time_first_ms=execution.time_first_ms,
            plan=optimized.plan,
            estimate=optimized.estimate,
            optimizer_stats=optimized.stats,
            sql=task.sql,
            cache_hits=execution.cache_hits,
            cache_misses=execution.cache_misses,
            parallel_saved_ms=execution.parallel_saved_ms,
            trace=trace,
            partial=execution.partial,
        )
        if mediator.telemetry is not None:
            mediator.telemetry.record_query(
                result,
                execution,
                breakers=mediator.executor.scheduler.breakers,
            )
            profile = result.profile
            if profile is not None:
                # The ticket's admission lifecycle (submit/queue/start/
                # finish) becomes the profile's timeline — queueing is
                # part of the latency story the flight recorder tells.
                profile.timeline.extend(dict(event) for event in task.ticket.events)
        if self.calibration is not None:
            # Feed the measured query into the calibration window; on
            # cadence this fits and (via the catalog-version bump)
            # invalidates stale plan-cache entries.
            self.calibration.record(task.tenant, result, execution)
        return result

    def _count(self, name: str, tenant: str) -> None:
        help_texts = {
            "repro_service_submitted_total": "Queries submitted to the service",
            "repro_service_admitted_total": "Queries that started executing",
            "repro_service_queued_total": "Queries parked in a tenant lane",
            "repro_service_completed_total": "Queries answered",
            "repro_service_failed_total": "Queries that raised during execution",
            "repro_service_plan_cache_hits_total": "Plan-cache hits at resolve",
            "repro_service_plan_cache_misses_total": "Plan-cache misses at resolve",
        }
        self.metrics.counter(name, help_texts.get(name, ""), ("tenant",)).inc(
            tenant=tenant
        )

    def _set_in_flight(self) -> None:
        self.metrics.gauge(
            "repro_service_in_flight", "Queries currently executing"
        ).set(len(self.scheduler.running))
