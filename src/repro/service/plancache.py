"""The serving layer's plan cache.

``Mediator.query`` re-parses and re-optimizes every call, even for
byte-identical SQL.  The serving layer memoizes
:class:`~repro.mediator.optimizer.OptimizationResult` objects keyed by

* the :func:`~repro.mediator.queryspec.spec_fingerprint` of the
  normalized query (so ``FROM a, b`` and ``FROM b, a`` share one entry),
  and
* the :attr:`~repro.mediator.catalog.MediatorCatalog.version` the plan
  was optimized under — re-registering a wrapper bumps the version, so
  every plan chosen against the old statistics/cost rules is stale and
  is evicted on its next lookup.

A second, cheaper map short-circuits *parsing* too: byte-identical SQL
text resolves straight to its fingerprint without touching the SQL front
end (name resolution depends on the catalog, so this map is also
version-guarded).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.mediator.optimizer import OptimizationResult


@dataclass
class PlanCacheStats:
    """Hit/miss/invalidation counters of one plan cache."""

    hits: int = 0
    misses: int = 0
    #: Lookups that found an entry optimized under a stale catalog
    #: version (counted *in addition to* the miss they become).
    invalidations: int = 0
    #: SQL-text lookups that skipped the parser.
    sql_hits: int = 0

    def __str__(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({self.invalidations} invalidated)"
        )


@dataclass
class _Entry:
    version: int
    optimized: OptimizationResult
    uses: int = 0


@dataclass
class _SqlEntry:
    version: int
    fingerprint: str


@dataclass
class PlanCache:
    """fingerprint → optimized plan, guarded by the catalog version."""

    max_entries: int = 256
    stats: PlanCacheStats = field(default_factory=PlanCacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {self.max_entries}")
        self._plans: dict[str, _Entry] = {}
        self._sql: dict[str, _SqlEntry] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    # -- plans ---------------------------------------------------------------

    def lookup(self, fingerprint: str, version: int) -> OptimizationResult | None:
        """The cached plan for a fingerprint, if optimized under the
        current catalog version; stale entries are evicted on sight.

        A hit refreshes the entry's recency (dicts preserve insertion
        order, so re-inserting moves it to the end), making capacity
        eviction LRU rather than FIFO: a hot plan re-used every query is
        never the eviction victim.
        """
        with self._lock:
            entry = self._plans.get(fingerprint)
            if entry is not None and entry.version != version:
                del self._plans[fingerprint]
                self._drop_sql_for(fingerprint)
                self.stats.invalidations += 1
                entry = None
            if entry is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            entry.uses += 1
            del self._plans[fingerprint]
            self._plans[fingerprint] = entry
            return entry.optimized

    def store(
        self, fingerprint: str, version: int, optimized: OptimizationResult
    ) -> None:
        with self._lock:
            if (
                fingerprint not in self._plans
                and len(self._plans) >= self.max_entries
            ):
                oldest = next(iter(self._plans))
                del self._plans[oldest]
                # Any SQL text still pointing at the evicted fingerprint
                # would resolve to a guaranteed plan miss (a dangling
                # fingerprint skips the parser only to miss the plan map);
                # drop those entries so the SQL falls back to a full
                # parse-and-store.
                self._drop_sql_for(oldest)
            self._plans[fingerprint] = _Entry(version=version, optimized=optimized)

    def _drop_sql_for(self, fingerprint: str) -> None:
        """Remove SQL-text entries resolving to an evicted fingerprint
        (caller holds the lock)."""
        dangling = [
            sql
            for sql, entry in self._sql.items()
            if entry.fingerprint == fingerprint
        ]
        for sql in dangling:
            del self._sql[sql]

    # -- the parse-skipping SQL text map --------------------------------------

    def fingerprint_for_sql(self, sql: str, version: int) -> str | None:
        """The fingerprint of byte-identical, already-seen SQL text.

        Hits refresh recency here too, so the SQL map's capacity
        eviction is LRU in step with the plan map.
        """
        with self._lock:
            entry = self._sql.get(sql)
            if entry is None or entry.version != version:
                return None
            self.stats.sql_hits += 1
            del self._sql[sql]
            self._sql[sql] = entry
            return entry.fingerprint

    def remember_sql(self, sql: str, fingerprint: str, version: int) -> None:
        with self._lock:
            if sql not in self._sql and len(self._sql) >= self.max_entries:
                oldest = next(iter(self._sql))
                del self._sql[oldest]
            self._sql[sql] = _SqlEntry(version=version, fingerprint=fingerprint)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._sql.clear()
