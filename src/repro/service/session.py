"""Per-tenant sessions and prepared statements.

A :class:`Session` is one client's connection to the federation: it
belongs to a tenant (the unit of admission budgets and scheduling
quota), holds that client's prepared statements, and resolves queries to
optimized plans through the shared :class:`~repro.service.plancache.
PlanCache` — so a query any session of any tenant has optimized before
skips parse *and* optimize, as long as the catalog has not changed
underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.errors import SessionError, UnknownPreparedStatementError
from repro.mediator.optimizer import OptimizationResult
from repro.mediator.queryspec import QuerySpec, UnionSpec, spec_fingerprint
from repro.service.plancache import PlanCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mediator.mediator import Mediator


@dataclass
class PreparedStatement:
    """One named, pre-parsed query held by a session."""

    handle: str
    sql: str
    spec: "QuerySpec | UnionSpec"
    fingerprint: str
    #: Catalog version the statement was parsed under; a bumped version
    #: forces a re-parse on next use (name resolution may have changed).
    catalog_version: int
    executions: int = 0


@dataclass
class PlanResolution:
    """What resolving one query cost, and what it produced."""

    optimized: OptimizationResult
    fingerprint: str
    #: True when the optimized plan came from the plan cache (the parse
    #: and optimize phases were skipped).
    plan_cached: bool = False
    sql: str | None = None


class Session:
    """One client session of one tenant."""

    def __init__(
        self, manager: "SessionManager", session_id: str, tenant: str
    ) -> None:
        self.manager = manager
        self.session_id = session_id
        self.tenant = tenant
        self.statements: dict[str, PreparedStatement] = {}
        self.closed = False
        self._handle_counter = 0

    # -- prepared statements ---------------------------------------------------

    def prepare(self, sql: str, name: str | None = None) -> PreparedStatement:
        """Parse once, remember under a handle; returns the statement."""
        self._check_open()
        mediator = self.manager.mediator
        spec = mediator.parse(sql)
        if name is None:
            self._handle_counter += 1
            name = f"stmt{self._handle_counter}"
        statement = PreparedStatement(
            handle=name,
            sql=sql,
            spec=spec,
            fingerprint=spec_fingerprint(spec),
            catalog_version=mediator.catalog.version,
        )
        self.statements[name] = statement
        return statement

    def statement(self, handle: str) -> PreparedStatement:
        try:
            return self.statements[handle]
        except KeyError:
            raise UnknownPreparedStatementError(
                f"session {self.session_id!r} has no prepared statement "
                f"{handle!r} (known: {sorted(self.statements)})"
            ) from None

    # -- plan resolution --------------------------------------------------------

    def resolve(
        self, query: "Union[str, QuerySpec, UnionSpec, PreparedStatement]"
    ) -> PlanResolution:
        """Query → optimized plan, through the shared plan cache."""
        self._check_open()
        return self.manager.resolve(self, query)

    def _check_open(self) -> None:
        if self.closed:
            raise SessionError(f"session {self.session_id!r} is closed")


class SessionManager:
    """All live sessions plus the shared plan cache."""

    def __init__(
        self,
        mediator: "Mediator",
        plan_cache: PlanCache | None = None,
    ) -> None:
        self.mediator = mediator
        #: ``None`` disables plan caching entirely (every resolve parses
        #: and optimizes, exactly like ``Mediator.query``).
        self.plan_cache = plan_cache
        self.sessions: dict[str, Session] = {}
        self._session_counter = 0

    def open_session(self, tenant: str, session_id: str | None = None) -> Session:
        if session_id is None:
            self._session_counter += 1
            session_id = f"{tenant}/s{self._session_counter}"
        if session_id in self.sessions and not self.sessions[session_id].closed:
            raise SessionError(f"session {session_id!r} is already open")
        session = Session(self, session_id, tenant)
        self.sessions[session_id] = session
        return session

    def close_session(self, session: Session) -> None:
        session.closed = True
        self.sessions.pop(session.session_id, None)

    # -- resolution ------------------------------------------------------------

    def resolve(
        self,
        session: Session,
        query: "Union[str, QuerySpec, UnionSpec, PreparedStatement]",
    ) -> PlanResolution:
        mediator = self.mediator
        version = mediator.catalog.version
        cache = self.plan_cache
        sql: str | None = None

        if isinstance(query, PreparedStatement):
            if query.catalog_version != version:
                # The catalog changed since PREPARE: re-parse (resolution
                # of unqualified names may differ) and re-fingerprint.
                query.spec = mediator.parse(query.sql)
                query.fingerprint = spec_fingerprint(query.spec)
                query.catalog_version = version
            query.executions += 1
            sql, spec, fingerprint = query.sql, query.spec, query.fingerprint
        elif isinstance(query, str):
            sql = query
            fingerprint = (
                cache.fingerprint_for_sql(sql, version)
                if cache is not None
                else None
            )
            if fingerprint is not None:
                cached = cache.lookup(fingerprint, version)
                if cached is not None:
                    return PlanResolution(
                        optimized=cached,
                        fingerprint=fingerprint,
                        plan_cached=True,
                        sql=sql,
                    )
                # Fingerprint known but plan evicted: fall through to a
                # parse (we need the spec back to re-optimize).
            spec = mediator.parse(sql)
            fingerprint = spec_fingerprint(spec)
            if cache is not None:
                cache.remember_sql(sql, fingerprint, version)
        else:
            spec = query
            fingerprint = spec_fingerprint(spec)

        if cache is not None:
            cached = cache.lookup(fingerprint, version)
            if cached is not None:
                return PlanResolution(
                    optimized=cached,
                    fingerprint=fingerprint,
                    plan_cached=True,
                    sql=sql,
                )
        optimized = mediator.plan(spec)
        if cache is not None:
            cache.store(fingerprint, version, optimized)
        return PlanResolution(
            optimized=optimized, fingerprint=fingerprint, plan_cached=False, sql=sql
        )
