"""Service-level online calibration: the cadence loop.

:class:`CalibrationManager` closes the §4.3 feedback loop inside a
running :class:`~repro.service.service.FederationService`: every
finalized query's (estimate, measurement) pairs are folded into a
*window* :class:`~repro.obs.accuracy.DriftTracker`, and every
``cadence_queries`` queries the :class:`~repro.mediator.calibration.
Calibrator` fits the window and — when anything actually changed —
installs a new overlay through :meth:`Mediator.apply_calibration`.

The catalog-version bump that apply performs is the whole invalidation
story: the PR 4 plan cache is version-guarded, so stale plans evict on
their next lookup, and the estimator's subplan cache is flushed by the
mediator.  Nothing here needs to reach into the cache.

The fit window **resets after every fit attempt** (applied or not): the
cadence defines the measurement window, so a misbehaving source shows
up with its recent drift, not diluted by hours of healthy history.

Per-tenant tracking (``per_tenant=True``) keeps an additional drift
window per tenant and exports its q-error per fit
(``repro_calibration_tenant_qerror{tenant=...}``) — a noisy-neighbour
diagnostic.  The *applied* coefficients are always fit from the global
window: plans are shared across tenants through the plan cache, so a
per-tenant coefficient set would be unsound without per-tenant plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.mediator.calibration import (
    CalibrationFit,
    CalibrationPolicy,
    Calibrator,
)
from repro.obs.accuracy import DriftTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mediator.mediator import Mediator, QueryResult
    from repro.obs.metrics import MetricsRegistry
    from repro.wrappers.base import ExecutionResult


@dataclass
class CalibrationOptions:
    """Knobs of the in-service calibration loop."""

    #: Fit the window every N finalized queries.
    cadence_queries: int = 32
    #: Guardrails handed to the fitter.
    policy: CalibrationPolicy = field(default_factory=CalibrationPolicy)
    #: Track (and export) drift per tenant in addition to globally.
    per_tenant: bool = False

    def __post_init__(self) -> None:
        if self.cadence_queries < 1:
            raise ValueError("cadence_queries must be >= 1")


class CalibrationManager:
    """Feeds measured queries into windowed drift and fits on cadence."""

    def __init__(
        self,
        mediator: "Mediator",
        options: CalibrationOptions,
        metrics: "MetricsRegistry",
    ) -> None:
        self.mediator = mediator
        self.options = options
        self.metrics = metrics
        self.calibrator = Calibrator(options.policy)
        self.window = self._fresh_window()
        self._tenant_windows: dict[str, DriftTracker] = {}
        #: Queries folded into the current window.
        self.window_queries = 0
        self.fits_attempted = 0
        self.overlays_applied = 0
        self.last_fit: CalibrationFit | None = None

    # -- feeding ---------------------------------------------------------------

    def record(
        self,
        tenant: str,
        result: "QueryResult",
        execution: "ExecutionResult",
    ) -> CalibrationFit | None:
        """Fold one finalized query in; fit when the cadence is due.

        Returns the fit when one ran, else None.
        """
        submit_log = self._clean_submit_log(execution)
        self.window.observe_plan(result.estimate, submit_log)
        if self.options.per_tenant:
            window = self._tenant_windows.get(tenant)
            if window is None:
                window = self._tenant_windows.setdefault(
                    tenant, self._fresh_window()
                )
            window.observe_plan(result.estimate, submit_log)
        self.window_queries += 1
        if self.window_queries >= self.options.cadence_queries:
            return self.run_fit()
        return None

    @staticmethod
    def _clean_submit_log(execution: "ExecutionResult") -> list:
        """The submit log minus fault-tainted measurements.

        A retried, failed-over, or hedged submit's wall time includes
        backoff waits or another replica's service time; fitting the
        cost model on those actuals would fold transient fault handling
        into permanent coefficients.
        """
        return [
            (submit, measured)
            for submit, measured in execution.submit_log
            if not getattr(measured, "fault_tainted", False)
        ]

    # -- fitting ---------------------------------------------------------------

    def run_fit(self, note: str = "") -> CalibrationFit:
        """Fit the current window now (cadence or operator-forced)."""
        self.fits_attempted += 1
        state = self.mediator.catalog.calibration
        fit = self.calibrator.fit(self.window.snapshot(), state)
        if fit.changed:
            self.mediator.apply_calibration(
                fit.updates,
                note=note
                or (
                    f"service fit #{self.fits_attempted} over "
                    f"{self.window_queries} queries"
                ),
                observations=fit.observations,
            )
            self.overlays_applied += 1
        self._export_metrics(fit)
        self.last_fit = fit
        self._reset_windows()
        return fit

    # -- internals -------------------------------------------------------------

    def _fresh_window(self) -> DriftTracker:
        window = DriftTracker()
        for name in self.mediator.catalog.wrapper_names():
            window.expect_wrapper(name)
        return window

    def _reset_windows(self) -> None:
        self.window = self._fresh_window()
        self.window_queries = 0
        if self.options.per_tenant:
            self._tenant_windows = {
                tenant: self._fresh_window() for tenant in self._tenant_windows
            }

    def _export_metrics(self, fit: CalibrationFit) -> None:
        updates = self.metrics.counter(
            "repro_calibration_updates_total",
            "Calibration coefficient updates applied",
            ("wrapper",),
        )
        for update in fit.updates:
            updates.inc(wrapper=update.key.wrapper)
        self.metrics.counter(
            "repro_calibration_fits_total", "Calibration fit passes run"
        ).inc()
        self.metrics.gauge(
            "repro_calibration_qerror",
            "Mean q-error of the last calibration fit window",
        ).set(fit.window_mean_q)
        self.metrics.gauge(
            "repro_calibration_active_version",
            "Active calibration overlay version",
        ).set(float(self.mediator.catalog.calibration.active_version))
        if self.options.per_tenant:
            tenant_gauge = self.metrics.gauge(
                "repro_calibration_tenant_qerror",
                "Per-tenant mean q-error over the last fit window",
                ("tenant",),
            )
            for tenant, window in sorted(self._tenant_windows.items()):
                snapshot = window.snapshot()
                rows = [r for r in snapshot["rules"] if r["count"]]
                total = sum(r["count"] for r in rows)
                mean_q = (
                    sum(r["mean_q_error"] * r["count"] for r in rows) / total
                    if total
                    else 0.0
                )
                tenant_gauge.set(mean_q, tenant=tenant)


__all__ = ["CalibrationManager", "CalibrationOptions"]
