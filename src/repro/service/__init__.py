"""The federation serving layer (see ``docs/serving.md``).

Multi-tenant serving on top of one :class:`~repro.mediator.mediator.
Mediator`: sessions and prepared statements, a normalized-fingerprint
plan cache, cost-based admission control, and a fair-share inter-query
scheduler that interleaves submit waves of concurrent queries on the
shared simulated clock.
"""

from __future__ import annotations

from repro.service.admission import (
    ADMITTED,
    QUEUED,
    REJECTED,
    AdmissionController,
    AdmissionDecision,
    TenantPolicy,
    plan_wrappers,
)
from repro.service.plancache import PlanCache, PlanCacheStats
from repro.service.scheduler import (
    FairShareScheduler,
    QueryTask,
    SchedulerStats,
    TaskDispatchProxy,
)
from repro.service.service import (
    FederationService,
    ServiceOptions,
    Ticket,
)
from repro.service.session import (
    PlanResolution,
    PreparedStatement,
    Session,
    SessionManager,
)

__all__ = [
    "ADMITTED",
    "AdmissionController",
    "AdmissionDecision",
    "FairShareScheduler",
    "FederationService",
    "PlanCache",
    "PlanCacheStats",
    "PlanResolution",
    "PreparedStatement",
    "QUEUED",
    "QueryTask",
    "REJECTED",
    "SchedulerStats",
    "ServiceOptions",
    "Session",
    "SessionManager",
    "TaskDispatchProxy",
    "TenantPolicy",
    "Ticket",
    "plan_wrappers",
]
