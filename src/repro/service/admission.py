"""Cost-based admission control.

The serving layer decides what to do with a query *before* running it,
using the same blended cost model the optimizer already trusts: every
submitted query is optimized (or served from the plan cache) first, and
its estimated TotalTime is weighed against configurable budgets.

Decisions, in the order they are checked:

* **reject: degraded** — every wrapper the chosen plan touches has an
  open circuit breaker; the query can only fail (or, with partial
  answers on, return nothing), so it is bounced immediately instead of
  occupying a slot (``fast_reject_on_open_breakers``);
* **reject: estimate_exceeds_budget** — the estimate alone is larger
  than the tenant's (or the service's) *total* outstanding-work budget,
  so the query could never be admitted no matter how long it queued;
* **admit** — the tenant and the service both have a free concurrency
  slot and enough headroom in their outstanding-estimated-ms budgets;
* **queue** — no headroom now, but the queue is not full;
* **reject: queue_full** — the tenant's queue is at ``max_queue_depth``.

Budgets are *estimate-denominated*: the controller tracks the sum of
estimated TotalTime of running queries ("outstanding ms"), not wall
time, so admission is deterministic and needs no feedback loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.algebra.logical import PlanNode, Submit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mediator.scheduler import SubmitScheduler

ADMITTED = "admitted"
QUEUED = "queued"
REJECTED = "rejected"


@dataclass
class TenantPolicy:
    """Per-tenant admission budgets and scheduling weight."""

    #: Fair-share weight: a tenant with quota 2.0 accumulates scheduling
    #: deficit twice as fast as one with quota 1.0 (see scheduler.py).
    quota: float = 1.0
    #: Max queries of this tenant running at once (None = no cap).
    max_concurrent: int | None = None
    #: Max summed estimated TotalTime (ms) of this tenant's running
    #: queries (None = no cap).
    max_outstanding_ms: float | None = None
    #: Max queries waiting in this tenant's queue (None = unbounded).
    max_queue_depth: int | None = None

    def __post_init__(self) -> None:
        if self.quota <= 0:
            raise ValueError(f"quota must be > 0, got {self.quota}")


@dataclass
class AdmissionDecision:
    """What the controller decided for one query, and why."""

    status: str
    reason: str = ""

    @property
    def admitted(self) -> bool:
        return self.status == ADMITTED

    @property
    def queued(self) -> bool:
        return self.status == QUEUED

    @property
    def rejected(self) -> bool:
        return self.status == REJECTED


def plan_wrappers(plan: PlanNode) -> set[str]:
    """Every wrapper a plan submits to."""
    return {node.wrapper for node in plan.walk() if isinstance(node, Submit)}


@dataclass
class _Usage:
    """Live load the controller charges budgets against."""

    running: int = 0
    outstanding_ms: float = 0.0
    queued: int = 0


class AdmissionController:
    """Estimate-first admission against per-tenant and global budgets.

    The controller is pure bookkeeping: the scheduler calls
    :meth:`decide` at submit time, :meth:`on_start` / :meth:`on_finish`
    as queries enter and leave execution, and :meth:`on_queue` /
    :meth:`on_dequeue` around the wait queue.
    """

    def __init__(
        self,
        *,
        max_concurrent_queries: int | None = None,
        max_outstanding_ms: float | None = None,
        fast_reject_on_open_breakers: bool = True,
    ) -> None:
        self.max_concurrent_queries = max_concurrent_queries
        self.max_outstanding_ms = max_outstanding_ms
        self.fast_reject_on_open_breakers = fast_reject_on_open_breakers
        self.global_usage = _Usage()
        self._tenant_usage: dict[str, _Usage] = {}

    def usage(self, tenant: str) -> _Usage:
        usage = self._tenant_usage.get(tenant)
        if usage is None:
            usage = self._tenant_usage[tenant] = _Usage()
        return usage

    # -- the decision ---------------------------------------------------------

    def decide(
        self,
        tenant: str,
        policy: TenantPolicy,
        estimated_ms: float,
        plan: PlanNode | None = None,
        scheduler: "SubmitScheduler | None" = None,
    ) -> AdmissionDecision:
        degraded = self._degraded_reason(plan, scheduler)
        if degraded is not None:
            return AdmissionDecision(REJECTED, degraded)
        feasibility = self._feasibility_reason(policy, estimated_ms)
        if feasibility is not None:
            return AdmissionDecision(REJECTED, feasibility)
        if self._has_headroom(tenant, policy, estimated_ms):
            return AdmissionDecision(ADMITTED)
        usage = self.usage(tenant)
        if (
            policy.max_queue_depth is not None
            and usage.queued >= policy.max_queue_depth
        ):
            return AdmissionDecision(
                REJECTED,
                f"queue_full: tenant {tenant!r} already has {usage.queued} "
                f"queued queries (max_queue_depth={policy.max_queue_depth})",
            )
        return AdmissionDecision(QUEUED, "no_headroom")

    def _degraded_reason(
        self, plan: PlanNode | None, scheduler: "SubmitScheduler | None"
    ) -> str | None:
        if (
            not self.fast_reject_on_open_breakers
            or plan is None
            or scheduler is None
        ):
            return None
        open_wrappers = set(scheduler.open_breaker_wrappers())
        if not open_wrappers:
            return None
        needed = plan_wrappers(plan)
        if not needed:
            return None
        catalog = getattr(scheduler, "catalog", None)

        def source_down(wrapper: str) -> bool:
            # A replicated source is only truly down when EVERY member
            # of its set has an open breaker — the scheduler fails over
            # to healthy siblings, so one open breaker is not fatal.
            if catalog is None:
                return wrapper in open_wrappers
            return all(
                member in open_wrappers
                for member in catalog.replica_members(wrapper)
            )

        if all(source_down(wrapper) for wrapper in needed):
            return (
                "degraded: every wrapper of the plan has an open breaker "
                f"({', '.join(sorted(needed))})"
            )
        return None

    def _feasibility_reason(
        self, policy: TenantPolicy, estimated_ms: float
    ) -> str | None:
        """A query whose estimate alone overflows a *total* budget would
        queue forever; bounce it at submit instead."""
        for scope, budget in (
            ("tenant", policy.max_outstanding_ms),
            ("service", self.max_outstanding_ms),
        ):
            if budget is not None and estimated_ms > budget:
                return (
                    f"estimate_exceeds_budget: estimated {estimated_ms:.0f} ms "
                    f"> {scope} budget {budget:.0f} ms"
                )
        return None

    def _has_headroom(
        self, tenant: str, policy: TenantPolicy, estimated_ms: float
    ) -> bool:
        usage = self.usage(tenant)
        if (
            self.max_concurrent_queries is not None
            and self.global_usage.running >= self.max_concurrent_queries
        ):
            return False
        if (
            policy.max_concurrent is not None
            and usage.running >= policy.max_concurrent
        ):
            return False
        if (
            self.max_outstanding_ms is not None
            and self.global_usage.outstanding_ms + estimated_ms
            > self.max_outstanding_ms
        ):
            return False
        if (
            policy.max_outstanding_ms is not None
            and usage.outstanding_ms + estimated_ms > policy.max_outstanding_ms
        ):
            return False
        return True

    # -- load bookkeeping ------------------------------------------------------

    def on_queue(self, tenant: str) -> None:
        self.usage(tenant).queued += 1

    def on_dequeue(self, tenant: str) -> None:
        self.usage(tenant).queued -= 1

    def on_start(self, tenant: str, estimated_ms: float) -> None:
        usage = self.usage(tenant)
        usage.running += 1
        usage.outstanding_ms += estimated_ms
        self.global_usage.running += 1
        self.global_usage.outstanding_ms += estimated_ms

    def on_finish(self, tenant: str, estimated_ms: float) -> None:
        usage = self.usage(tenant)
        usage.running -= 1
        usage.outstanding_ms -= estimated_ms
        self.global_usage.running -= 1
        self.global_usage.outstanding_ms -= estimated_ms
