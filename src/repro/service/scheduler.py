"""The fair-share inter-query scheduler.

The mediator's executor is a synchronous, single-query engine: it walks
one plan and blocks on its :class:`~repro.mediator.scheduler.
SubmitScheduler` for every dispatch.  The serving layer runs *many*
queries over one shared simulated clock, so each admitted query becomes
a :class:`QueryTask` — a real thread running an unmodified
``MediatorExecutor`` — whose dispatch calls are intercepted by a
:class:`TaskDispatchProxy` and handed to the coordinating
:class:`FairShareScheduler` instead of hitting a wrapper directly.

The handoff is *strict*: exactly one thread (a task or the coordinator)
runs at any instant, SimPy-style, so execution is fully deterministic —
the threads are a coroutine mechanism, not a source of parallelism.  The
coordinator repeatedly

1. **starts** queued queries when admission headroom frees, picking
   tenants by deficit round-robin weighted by their quota;
2. **advances** every runnable task until it blocks on a dispatch
   request (or finishes);
3. **packs** the pending requests of the round into combined submit
   waves — interleaved across tenants, honoring a per-wrapper cap — and
   dispatches them on the shared :class:`SubmitScheduler`, so wrapper
   waits of *different queries* overlap on the
   :class:`~repro.sources.clock.ParallelClock`.

Equivalence guarantee (tested in ``tests/service/test_equivalence.py``):
when exactly one task is in the round, its requests pass through 1:1 —
``dispatch_one`` for single sequential submits, ``dispatch_wave`` for
the executor's own waves — so a service at concurrency 1 produces
byte-identical results, submit logs, and clock totals to calling
``Mediator.query`` directly.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.algebra.logical import Submit
from repro.mediator.scheduler import DispatchOutcome, SubmitScheduler
from repro.service.admission import AdmissionController, TenantPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mediator.executor import MediatorExecutor
    from repro.obs.trace import SpanTracer


@dataclass
class _DispatchRequest:
    """One blocked dispatch call of one task, awaiting the coordinator."""

    submits: list[Submit]
    #: ``"one"`` for a sequential ``dispatch_one`` call, ``"wave"`` for
    #: an executor-issued ``dispatch_wave`` — the distinction matters
    #: only in single-task rounds, where it is preserved exactly.
    mode: str
    outcomes: list[DispatchOutcome | None] = field(default_factory=list)


class TaskDispatchProxy:
    """Stands in for the executor's ``SubmitScheduler`` inside a task.

    Dispatch methods block the task thread and yield to the coordinator;
    everything else forwards to the shared scheduler so the executor's
    bookkeeping (parallel stats, resilience stats, breakers) keeps
    reading the real, shared state.
    """

    def __init__(self, task: "QueryTask", shared: SubmitScheduler) -> None:
        self._task = task
        self._shared = shared
        #: ``MediatorExecutor.set_tracer`` assigns this; the per-task
        #: tracer is used by the executor's compose spans, while submit
        #: and wave spans stay on the shared scheduler's own tracer.
        self.tracer = shared.tracer

    def dispatch_one(self, submit: Submit) -> DispatchOutcome:
        outcomes = self._task.await_dispatch(
            _DispatchRequest(submits=[submit], mode="one")
        )
        return outcomes[0]

    def dispatch_wave(self, submits: "list[Submit]") -> "list[DispatchOutcome]":
        if not submits:
            return []
        return self._task.await_dispatch(
            _DispatchRequest(submits=list(submits), mode="wave")
        )

    # -- passthrough state -----------------------------------------------------

    @property
    def parallel(self):
        return self._shared.parallel

    @property
    def resilience_stats(self):
        return self._shared.resilience_stats

    @property
    def replica_stats(self):
        return self._shared.replica_stats

    @property
    def breakers(self):
        return self._shared.breakers

    def open_breaker_wrappers(self) -> "list[str]":
        return self._shared.open_breaker_wrappers()


class QueryTask:
    """One admitted query running in its own strict-handoff thread."""

    def __init__(
        self,
        ticket: Any,
        tenant: str,
        estimated_ms: float,
        executor: "MediatorExecutor",
        plan,
        tracer: "SpanTracer | None" = None,
    ) -> None:
        self.ticket = ticket
        self.tenant = tenant
        self.estimated_ms = estimated_ms
        self.executor = executor
        self.plan = plan
        self.tracer = tracer
        self.execution = None
        self.error: BaseException | None = None
        self.finished = False
        #: Set by the service: the plan's OptimizationResult and the
        #: original SQL text (for the final QueryResult).
        self.optimized = None
        self.sql: str | None = None
        self.request: _DispatchRequest | None = None
        self._resume = threading.Event()
        self._yielded = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"query-task-{tenant}", daemon=True
        )
        self._started = False

    # -- task-thread side ------------------------------------------------------

    def _run(self) -> None:
        try:
            self._resume.wait()
            self._resume.clear()
            if self.tracer is not None and self.tracer.enabled:
                with self.tracer.span("query", kind="query"):
                    with self.tracer.span("execute", kind="phase"):
                        self.execution = self.executor.execute(self.plan)
            else:
                self.execution = self.executor.execute(self.plan)
        except BaseException as exc:  # noqa: BLE001 - reported via the ticket
            self.error = exc
        finally:
            self.finished = True
            self._yielded.set()

    def await_dispatch(
        self, request: _DispatchRequest
    ) -> "list[DispatchOutcome]":
        """Block the task thread until the coordinator delivers outcomes."""
        self.request = request
        self._yielded.set()
        self._resume.wait()
        self._resume.clear()
        assert all(outcome is not None for outcome in request.outcomes)
        return request.outcomes  # type: ignore[return-value]

    # -- coordinator side ------------------------------------------------------

    def advance(self) -> None:
        """Run the task thread until its next dispatch request or finish."""
        if not self._started:
            self._started = True
            self._thread.start()
        self.request = None
        self._yielded.clear()
        self._resume.set()
        self._yielded.wait()


@dataclass
class SchedulerStats:
    """Coordinator-level accounting, surfaced by the E11 benchmark."""

    started: int = 0
    completed: int = 0
    rounds: int = 0
    waves_dispatched: int = 0
    #: Waves that combined submits of two or more distinct queries — the
    #: direct evidence of cross-query overlap.
    cross_query_waves: int = 0
    submits_dispatched: int = 0
    #: High-water mark of concurrently running queries.
    max_in_flight: int = 0
    #: Credit passes of the deficit round-robin (each pass grants every
    #: backlogged tenant ``quantum * quota`` ms of start credit).
    deficit_credit_passes: int = 0


class _TenantLane:
    """One tenant's wait queue plus its DRR deficit counter."""

    def __init__(self, name: str, policy: TenantPolicy) -> None:
        self.name = name
        self.policy = policy
        self.queue: deque[QueryTask] = deque()
        self.deficit = 0.0


class FairShareScheduler:
    """Deficit round-robin between tenants over one shared clock.

    Each scheduling round credits every backlogged tenant
    ``drr_quantum_ms * quota`` of deficit; a tenant's head query starts
    once admission has headroom for it *and* its estimated TotalTime
    fits the accumulated deficit (which is then debited).  Tenants with
    a larger quota accrue deficit faster and therefore win
    proportionally more starts — without ever starving a quota-1 tenant,
    whose deficit keeps growing until its turn affords its head query.
    """

    def __init__(
        self,
        shared: SubmitScheduler,
        admission: AdmissionController,
        *,
        drr_quantum_ms: float = 1000.0,
        wrapper_wave_cap: int | None = None,
        on_start: Callable[[QueryTask], None] | None = None,
        on_complete: Callable[[QueryTask], None] | None = None,
    ) -> None:
        if drr_quantum_ms <= 0:
            raise ValueError(f"drr_quantum_ms must be > 0, got {drr_quantum_ms}")
        if wrapper_wave_cap is not None and wrapper_wave_cap < 1:
            raise ValueError(
                f"wrapper_wave_cap must be >= 1, got {wrapper_wave_cap}"
            )
        self.shared = shared
        self.admission = admission
        self.drr_quantum_ms = drr_quantum_ms
        self.wrapper_wave_cap = wrapper_wave_cap
        self.on_start = on_start
        self.on_complete = on_complete
        self.stats = SchedulerStats()
        self.running: list[QueryTask] = []
        self._lanes: dict[str, _TenantLane] = {}
        #: Rotating tenant visit order — the "round" of round-robin.
        self._rr_order: list[str] = []

    # -- intake ---------------------------------------------------------------

    def lane(self, tenant: str, policy: TenantPolicy) -> _TenantLane:
        existing = self._lanes.get(tenant)
        if existing is None:
            existing = self._lanes[tenant] = _TenantLane(tenant, policy)
            self._rr_order.append(tenant)
        return existing

    def enqueue(self, task: QueryTask, policy: TenantPolicy) -> None:
        """Park an admission-queued task in its tenant's lane."""
        self.lane(task.tenant, policy).queue.append(task)
        self.admission.on_queue(task.tenant)

    def start_now(self, task: QueryTask, policy: TenantPolicy) -> None:
        """Put a directly-admitted task in the running set."""
        self.lane(task.tenant, policy)  # materialize the lane for DRR order
        self._start(task)

    def queued_count(self) -> int:
        return sum(len(lane.queue) for lane in self._lanes.values())

    # -- the drive loop --------------------------------------------------------

    def run(self) -> None:
        """Drive every running and queued query to completion."""
        while self.running or self.queued_count():
            self.stats.rounds += 1
            self._start_eligible()
            for task in list(self.running):
                task.advance()
                if task.finished:
                    self._complete(task)
            waiting = [task for task in self.running if task.request is not None]
            if waiting:
                self._dispatch_round(waiting)

    # -- starting queries (DRR) ------------------------------------------------

    def _start(self, task: QueryTask) -> None:
        self.admission.on_start(task.tenant, task.estimated_ms)
        self.running.append(task)
        self.stats.started += 1
        self.stats.max_in_flight = max(
            self.stats.max_in_flight, len(self.running)
        )
        if self.on_start is not None:
            self.on_start(task)

    def _complete(self, task: QueryTask) -> None:
        self.running.remove(task)
        self.admission.on_finish(task.tenant, task.estimated_ms)
        self.stats.completed += 1
        if self.on_complete is not None:
            self.on_complete(task)

    def _backlogged(self) -> "list[_TenantLane]":
        return [
            self._lanes[name] for name in self._rr_order if self._lanes[name].queue
        ]

    def _head_has_headroom(self, lane: _TenantLane) -> bool:
        return self.admission._has_headroom(
            lane.name, lane.policy, lane.queue[0].estimated_ms
        )

    def _start_eligible(self) -> None:
        """Fill free admission headroom in weighted DRR order.

        Deficit is only credited when no backlogged tenant can afford
        its head query — one credit pass grants every candidate
        ``quantum * quota`` ms — so, over time, starts are proportional
        to quota: a tenant with quota 3 reaches a given estimated cost
        in a third of the credit passes a quota-1 tenant needs.  Ties
        break in round-robin order (the rotation advances past every
        started tenant).  A low-quota or expensive head can never
        starve: its lane's deficit is never reset while backlogged, so
        enough passes always accumulate.
        """
        while True:
            candidates = [
                lane
                for lane in self._backlogged()
                if self._head_has_headroom(lane)
            ]
            if not candidates:
                break
            affordable = [
                lane
                for lane in candidates
                if lane.deficit >= lane.queue[0].estimated_ms
            ]
            if affordable:
                lane = affordable[0]
                head = lane.queue.popleft()
                lane.deficit -= head.estimated_ms
                self.admission.on_dequeue(lane.name)
                self._start(head)
                self._rr_order.remove(lane.name)
                self._rr_order.append(lane.name)
                continue
            # Nobody affords a start: fast-forward whole credit passes
            # until the closest lane does (equivalent to iterating
            # single-quantum passes, without the iterations).
            passes_needed = min(
                max(
                    1,
                    -int(
                        -(lane.queue[0].estimated_ms - lane.deficit)
                        // (self.drr_quantum_ms * lane.policy.quota)
                    ),
                )
                for lane in candidates
            )
            self.stats.deficit_credit_passes += passes_needed
            for lane in candidates:
                lane.deficit += (
                    passes_needed * self.drr_quantum_ms * lane.policy.quota
                )
        for lane in self._lanes.values():
            if not lane.queue:
                # Standard DRR anti-burst rule: an idle lane must not
                # bank credit for later.
                lane.deficit = 0.0

    # -- dispatching requests --------------------------------------------------

    def _dispatch_round(self, waiting: "list[QueryTask]") -> None:
        if len(waiting) == 1:
            self._dispatch_passthrough(waiting[0])
            return
        self._dispatch_combined(waiting)

    def _dispatch_passthrough(self, task: QueryTask) -> None:
        """Single-task round: forward the request 1:1 to the shared
        scheduler, preserving one-vs-wave mode exactly.  This is the
        code path the byte-identical equivalence guarantee rests on."""
        request = task.request
        assert request is not None
        if request.mode == "one":
            outcomes = [self.shared.dispatch_one(request.submits[0])]
        else:
            outcomes = list(self.shared.dispatch_wave(request.submits))
        self.stats.waves_dispatched += 1
        self.stats.submits_dispatched += len(request.submits)
        request.outcomes = outcomes

    def _dispatch_combined(self, waiting: "list[QueryTask]") -> None:
        """Pack every pending request of the round into shared waves.

        Submits are interleaved across tasks in tenant round-robin order
        (one submit per task per turn), so no single chatty query can
        monopolize the front of a wave; a per-wrapper cap splits the
        round into successive waves when one wrapper would be asked for
        too many concurrent subqueries.
        """
        for task in waiting:
            request = task.request
            assert request is not None
            request.outcomes = [None] * len(request.submits)
        order = [
            task
            for name in self._rr_order
            for task in waiting
            if task.tenant == name
        ]
        # Tasks of tenants not in the rotation (cannot happen via the
        # public API, but keep the packing total regardless).
        order += [task for task in waiting if task not in order]
        cursors = {id(task): 0 for task in order}
        interleaved: list[tuple[_DispatchRequest, int]] = []
        remaining = len(order)
        while remaining:
            remaining = 0
            for task in order:
                request = task.request
                assert request is not None
                cursor = cursors[id(task)]
                if cursor >= len(request.submits):
                    continue
                interleaved.append((request, cursor))
                cursors[id(task)] = cursor + 1
                if cursor + 1 < len(request.submits):
                    remaining += 1
        for chunk in self._chunk_by_wrapper_cap(interleaved):
            sources = {id(request) for request, _ in chunk}
            submits = [request.submits[index] for request, index in chunk]
            outcomes = self.shared.dispatch_wave(submits)
            self.stats.waves_dispatched += 1
            self.stats.submits_dispatched += len(submits)
            if len(sources) > 1:
                self.stats.cross_query_waves += 1
            for (request, index), outcome in zip(chunk, outcomes):
                request.outcomes[index] = outcome

    def _chunk_by_wrapper_cap(
        self, interleaved: "list[tuple[_DispatchRequest, int]]"
    ) -> "list[list[tuple[_DispatchRequest, int]]]":
        cap = self.wrapper_wave_cap
        if cap is None:
            return [interleaved] if interleaved else []
        chunks: list[list[tuple[_DispatchRequest, int]]] = []
        current: list[tuple[_DispatchRequest, int]] = []
        counts: dict[str, int] = {}
        for request, index in interleaved:
            wrapper = request.submits[index].wrapper
            if counts.get(wrapper, 0) >= cap:
                chunks.append(current)
                current, counts = [], {}
            current.append((request, index))
            counts[wrapper] = counts.get(wrapper, 0) + 1
        if current:
            chunks.append(current)
        return chunks
