"""A real relational source: the oo7 dataset in an actual SQLite file.

:func:`load_oo7_sqlite` materializes the generated oo7 extents as SQLite
tables (with real indexes on the attributes the simulated object store
indexes); :class:`SQLiteWrapper` serves pushed-down mediator subplans by
translating them to SQL and exports the §2.1 registration payload —
statistics computed by SQL aggregate queries over the live tables, and
cost rules whose coefficients are **calibrated from timed probes**
against this machine's SQLite, so the estimates are in genuine
wall-clock milliseconds (the E16 benchmark regresses them against
measured time).

Execution is measured, not simulated: ``total_time_ms`` is the wall time
SQLite took to run the translated query and fetch the rows.  Connections
are per-thread (SQLite connections must not cross threads), so the
wrapper is safe under :class:`~repro.rt.backend.RealTimeBackend` waves.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import threading
import time
from typing import Any, Sequence

from repro.algebra.expressions import (
    And,
    AttributeRef,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.algebra.logical import (
    Aggregate,
    Distinct,
    PlanNode,
    Project,
    Scan,
    Select,
    Sort,
    strip_submits,
)
from repro.core.statistics import AttributeStats, CollectionStats
from repro.errors import PlanError
from repro.oo7 import generator, schema
from repro.sources.pages import Row
from repro.wrappers.base import CostInfoExport, ExecutionResult, Wrapper

#: Operators the wrapper pushes down.  Joins and unions stay at the
#: mediator: cross-collection composition is its job in the E16 setup.
SQLITE_OPERATIONS = frozenset(
    {"scan", "select", "project", "sort", "distinct", "aggregate"}
)

_SQL_OPS = {"=": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _quote(identifier: str) -> str:
    if '"' in identifier:
        raise PlanError(f"invalid identifier {identifier!r}")
    return f'"{identifier}"'


def _affinity(value: Any) -> str:
    if isinstance(value, bool) or isinstance(value, int):
        return "INTEGER"
    if isinstance(value, float):
        return "REAL"
    return "TEXT"


def load_oo7_sqlite(
    path: str,
    config: schema.OO7Config = schema.TINY,
    seed: int = 7,
    extents: Sequence[str] | None = None,
) -> list[str]:
    """Generate oo7 data and load it into the SQLite file at ``path``.

    Returns the loaded table names.  Indexes are created on the same
    attributes :data:`~repro.oo7.generator.EXTENT_LAYOUT` marks indexed,
    so the exported statistics describe real access paths.
    """
    data = generator.generate(config, seed)
    loaded: list[str] = []
    connection = sqlite3.connect(path)
    try:
        for name, rows in data.extent_rows().items():
            if extents is not None and name not in extents:
                continue
            if not rows:
                continue
            columns = list(rows[0])
            declarations = ", ".join(
                f"{_quote(column)} {_affinity(rows[0][column])}"
                for column in columns
            )
            connection.execute(f"DROP TABLE IF EXISTS {_quote(name)}")
            connection.execute(f"CREATE TABLE {_quote(name)} ({declarations})")
            placeholders = ", ".join("?" for _ in columns)
            connection.executemany(
                f"INSERT INTO {_quote(name)} VALUES ({placeholders})",
                [tuple(row[column] for column in columns) for row in rows],
            )
            _, indexed = generator.EXTENT_LAYOUT[name]
            for attribute in indexed:
                if attribute in columns:
                    connection.execute(
                        f"CREATE INDEX IF NOT EXISTS "
                        f"{_quote(f'idx_{name}_{attribute}')} "
                        f"ON {_quote(name)} ({_quote(attribute)})"
                    )
            loaded.append(name)
        connection.execute("ANALYZE")
        connection.commit()
    finally:
        connection.close()
    return loaded


class SQLiteWrapper(Wrapper):
    """Wrapper over an oo7 dataset stored in a real SQLite database file."""

    def __init__(
        self,
        name: str,
        path: str | None = None,
        config: schema.OO7Config = schema.TINY,
        seed: int = 7,
        extents: Sequence[str] | None = ("AtomicParts", "Connections"),
        calibration_repeats: int = 3,
    ) -> None:
        super().__init__(name, SQLITE_OPERATIONS)
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro_oo7_", suffix=".db")
            os.close(handle)
            self._owns_path = True
        else:
            self._owns_path = False
        self.path = path
        self.tables = load_oo7_sqlite(path, config, seed, extents)
        self._local = threading.local()
        self._statistics = {
            table: self._compute_statistics(table) for table in self.tables
        }
        #: Per-table ``(fixed_ms, per_row_ms)`` fitted from timed probes.
        self.coefficients = {
            table: self._calibrate(table, max(1, calibration_repeats))
            for table in self.tables
        }

    # -- connection management ----------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = sqlite3.connect(self.path)
            connection.row_factory = sqlite3.Row
            self._local.connection = connection
        return connection

    def close(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None
        if self._owns_path and os.path.exists(self.path):
            os.unlink(self.path)

    # -- registration-time exports -------------------------------------------

    def _compute_statistics(self, table: str) -> CollectionStats:
        connection = self._connection()
        count = connection.execute(
            f"SELECT COUNT(*) FROM {_quote(table)}"
        ).fetchone()[0]
        object_size, indexed = generator.EXTENT_LAYOUT[table]
        columns = [
            row[1]
            for row in connection.execute(f"PRAGMA table_info({_quote(table)})")
        ]
        attributes = []
        for column in columns:
            distinct, low, high = connection.execute(
                f"SELECT COUNT(DISTINCT {_quote(column)}), "
                f"MIN({_quote(column)}), MAX({_quote(column)}) "
                f"FROM {_quote(table)}"
            ).fetchone()
            attributes.append(
                AttributeStats(
                    name=column,
                    indexed=column in indexed,
                    count_distinct=max(1, distinct),
                    min_value=low,
                    max_value=high,
                )
            )
        return CollectionStats.from_extent(
            table, count, object_size, attributes
        )

    def _calibrate(
        self, table: str, repeats: int
    ) -> tuple[float, float]:
        """Fit ``total_ms = fixed + rows * per_row`` on timed probes.

        Probes run the same SQL path :meth:`execute` uses: a full scan
        plus range selects on the table's first indexed numeric
        attribute at a few selectivities.  The per-point minimum over
        ``repeats`` runs suppresses scheduler noise; the fit is plain
        least squares with both coefficients clamped non-negative.
        """
        stats = self._statistics[table]
        points: list[tuple[float, float]] = []
        points.append(self._probe(f"SELECT * FROM {_quote(table)}", (), repeats))
        probe_column = next(
            (
                a
                for a in stats.attributes.values()
                if a.indexed
                and a.min_value is not None
                and a.min_value.is_numeric
                and a.max_value is not None
                and a.max_value.is_numeric
            ),
            None,
        )
        if probe_column is not None:
            low = probe_column.min_value.as_number()  # type: ignore[union-attr]
            high = probe_column.max_value.as_number()  # type: ignore[union-attr]
            for fraction in (0.1, 0.3, 0.6):
                threshold = low + fraction * (high - low)
                points.append(
                    self._probe(
                        f"SELECT * FROM {_quote(table)} "
                        f"WHERE {_quote(probe_column.name)} <= ?",
                        (threshold,),
                        repeats,
                    )
                )
        return _fit_linear(points)

    def _probe(
        self, sql: str, params: tuple, repeats: int
    ) -> tuple[float, float]:
        connection = self._connection()
        best = float("inf")
        rows = 0
        for _ in range(repeats):
            start = time.perf_counter()
            rows = len(connection.execute(sql, params).fetchall())
            best = min(best, (time.perf_counter() - start) * 1000.0)
        return (float(rows), best)

    def cost_rules_cdl(self) -> str:
        parts = [
            f"// Cost rules calibrated against SQLite by wrapper {self.name!r}"
            f" ({sqlite3.sqlite_version})."
        ]
        for table in self.tables:
            fixed, per_row = self.coefficients[table]
            stats = self._statistics[table]
            parts.append(
                f"costrule scan({table}) {{\n"
                f"    TimeFirst = {fixed:.6f};\n"
                f"    TotalTime = {fixed:.6f}"
                f" + {table}.CountObject * {per_row:.6f};\n"
                f"}}"
            )
            for attribute in stats.attributes.values():
                if not attribute.indexed:
                    continue
                column = attribute.name
                parts.append(
                    f"costrule select({table}, {column} = V) {{\n"
                    f"    CountObject = {table}.CountObject"
                    f" / {table}.{column}.CountDistinct;\n"
                    f"    TotalSize = CountObject * {table}.ObjectSize;\n"
                    f"    TotalTime = {fixed:.6f} + CountObject * {per_row:.6f};\n"
                    f"    TimeFirst = {fixed:.6f};\n"
                    f"}}"
                )
                span = f"({table}.{column}.Max - {table}.{column}.Min)"
                for op in ("<", "<=", ">", ">="):
                    if op in ("<", "<="):
                        fraction = f"(V - {table}.{column}.Min) / {span}"
                    else:
                        fraction = f"({table}.{column}.Max - V) / {span}"
                    parts.append(
                        f"costrule select({table}, {column} {op} V) {{\n"
                        f"    CountObject = {table}.CountObject"
                        f" * clamp01({fraction});\n"
                        f"    TotalSize = CountObject * {table}.ObjectSize;\n"
                        f"    TotalTime = {fixed:.6f}"
                        f" + CountObject * {per_row:.6f};\n"
                        f"    TimeFirst = {fixed:.6f};\n"
                        f"}}"
                    )
        return "\n".join(parts)

    def export_cost_info(self) -> CostInfoExport:
        return CostInfoExport(
            statistics=list(self._statistics.values()),
            cdl_source=self.cost_rules_cdl(),
        )

    # -- query-time execution -------------------------------------------------

    def execute(self, plan: PlanNode) -> ExecutionResult:
        plan = strip_submits(plan)
        self.check_capabilities(plan)
        sql, params = self.translate(plan)
        connection = self._connection()
        start = time.perf_counter()
        cursor = connection.execute(sql, params)
        time_first: float | None = None
        rows: list[Row] = []
        for fetched in cursor:
            if time_first is None:
                time_first = (time.perf_counter() - start) * 1000.0
            rows.append(dict(fetched))
        total = (time.perf_counter() - start) * 1000.0
        return ExecutionResult(
            rows=rows,
            total_time_ms=total,
            time_first_ms=time_first if time_first is not None else total,
            device_stats={"sql_rows": len(rows)},
        )

    # -- plan -> SQL translation ----------------------------------------------

    def translate(self, plan: PlanNode) -> tuple[str, list]:
        """The subplan as one (possibly nested) SQL statement."""
        params: list = []
        sql = self._translate(plan, params)
        return sql, params

    def _translate(self, node: PlanNode, params: list) -> str:
        if isinstance(node, Scan):
            if node.collection not in self.tables:
                raise PlanError(
                    f"wrapper {self.name!r} has no table {node.collection!r}"
                )
            return f"SELECT * FROM {_quote(node.collection)}"
        if isinstance(node, Select):
            inner = self._translate(node.child, params)
            condition = self._predicate_sql(node.predicate, params)
            return f"SELECT * FROM ({inner}) WHERE {condition}"
        if isinstance(node, Project):
            inner = self._translate(node.child, params)
            outputs = ", ".join(
                f"{_quote(node.source_of(name))} AS {_quote(name)}"
                for name in node.attributes
            )
            return f"SELECT {outputs} FROM ({inner})"
        if isinstance(node, Sort):
            inner = self._translate(node.child, params)
            direction = " DESC" if node.descending else ""
            keys = ", ".join(f"{_quote(key)}{direction}" for key in node.keys)
            return f"SELECT * FROM ({inner}) ORDER BY {keys}"
        if isinstance(node, Distinct):
            inner = self._translate(node.child, params)
            return f"SELECT DISTINCT * FROM ({inner})"
        if isinstance(node, Aggregate):
            inner = self._translate(node.child, params)
            outputs = [_quote(key) for key in node.group_by]
            for spec in node.aggregates:
                argument = (
                    _quote(spec.attribute) if spec.attribute is not None else "*"
                )
                outputs.append(
                    f"{spec.function.upper()}({argument}) AS {_quote(spec.alias)}"
                )
            sql = f"SELECT {', '.join(outputs)} FROM ({inner})"
            if node.group_by:
                sql += " GROUP BY " + ", ".join(
                    _quote(key) for key in node.group_by
                )
            return sql
        raise PlanError(
            f"wrapper {self.name!r} cannot translate {node.operator_name!r}"
        )

    def _predicate_sql(self, predicate: Predicate, params: list) -> str:
        if isinstance(predicate, TruePredicate):
            return "1 = 1"
        if isinstance(predicate, Comparison):
            left = self._operand_sql(predicate.left, params)
            right = self._operand_sql(predicate.right, params)
            return f"{left} {_SQL_OPS[predicate.op]} {right}"
        if isinstance(predicate, And):
            return (
                f"({self._predicate_sql(predicate.left, params)}"
                f" AND {self._predicate_sql(predicate.right, params)})"
            )
        if isinstance(predicate, Or):
            return (
                f"({self._predicate_sql(predicate.left, params)}"
                f" OR {self._predicate_sql(predicate.right, params)})"
            )
        if isinstance(predicate, Not):
            return f"(NOT {self._predicate_sql(predicate.operand, params)})"
        raise PlanError(f"cannot translate predicate {predicate!r} to SQL")

    @staticmethod
    def _operand_sql(expression: Any, params: list) -> str:
        if isinstance(expression, AttributeRef):
            return _quote(expression.name)
        if isinstance(expression, Literal):
            params.append(expression.value)
            return "?"
        raise PlanError(f"cannot translate expression {expression!r} to SQL")


def _fit_linear(points: "list[tuple[float, float]]") -> tuple[float, float]:
    """Least-squares ``(intercept, slope)`` of (rows, ms), clamped >= 0."""
    if not points:
        return (0.0, 0.0)
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    variance = sum((x - mean_x) ** 2 for x, _ in points)
    if variance == 0.0:
        return (max(0.0, mean_y), 0.0)
    slope = (
        sum((x - mean_x) * (y - mean_y) for x, y in points) / variance
    )
    slope = max(0.0, slope)
    intercept = max(0.0, mean_y - slope * mean_x)
    return (intercept, slope)
