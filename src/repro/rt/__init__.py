"""Real-time execution: wall clocks, thread-pool dispatch, real sources.

``repro.rt`` is the second implementation of the
:class:`~repro.mediator.backend.ExecutionBackend` seam.  Where the
default sim stack charges a deterministic
:class:`~repro.sources.clock.SimClock`, this package measures and
*spends* real time:

* :class:`RealTimeBackend` — submit waves run on a thread pool, retry
  backoffs genuinely sleep, deadlines bound actual waits, and the
  breaker cooldowns tick on the wall clock;
* :class:`SQLiteWrapper` — a relational source backed by an actual
  SQLite database file (the oo7 dataset loaded into tables, pushed-down
  subqueries translated to SQL, cost rules calibrated from timed
  probes);
* :class:`WebLatencyWrapper` — a local "webish" source whose round-trip
  latency is a genuine ``time.sleep``.

See ``docs/backends.md`` for the seam and the E16 validation benchmark
(``repro.bench.realtime``) that regresses these wrappers' predicted
costs against measured wall-clock time.
"""

from repro.rt.backend import RealTimeBackend, WallClock, WallWaveAccounting
from repro.rt.sqlite import SQLiteWrapper, load_oo7_sqlite
from repro.rt.webish import WebLatencyWrapper

__all__ = [
    "RealTimeBackend",
    "SQLiteWrapper",
    "WallClock",
    "WallWaveAccounting",
    "WebLatencyWrapper",
    "load_oo7_sqlite",
]
