"""A local "webish" source whose latency is genuinely spent.

The simulated :class:`~repro.wrappers.webish.WebSourceWrapper` *charges*
round trips on a sim clock; :class:`WebLatencyWrapper` actually sleeps
them: one request latency before any work, one response latency plus a
per-row transfer delay after it.  Rows live in memory and pushed-down
plans are evaluated in plain Python (scan, select, project — the thin
capability set of a web API), so the whole response time is dominated by
the injected latency, exactly the regime the paper's uniform
communication cost models.

The exported cost rules predict wall milliseconds from the same
constants the wrapper sleeps with, which makes it the easy half of the
E16 validation: if the measured time diverges from
``2 * Latency + rows * PerRow``, the backend's measurement path is
broken, not the model.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

from repro.algebra.expressions import AttributeRef
from repro.algebra.logical import PlanNode, Project, Scan, Select, strip_submits
from repro.core.statistics import AttributeStats, CollectionStats
from repro.errors import PlanError
from repro.sources.pages import Row
from repro.wrappers.base import CostInfoExport, ExecutionResult, Wrapper

#: What a typical web API lets a mediator push down.
WEB_OPERATIONS = frozenset({"scan", "select", "project"})


class WebLatencyWrapper(Wrapper):
    """In-memory collections behind real injected latency."""

    def __init__(
        self,
        name: str,
        collections: Mapping[str, Sequence[Row]],
        latency_ms: float = 15.0,
        per_row_ms: float = 0.02,
        object_size: int = 64,
    ) -> None:
        super().__init__(name, WEB_OPERATIONS)
        if latency_ms < 0 or per_row_ms < 0:
            raise ValueError("latencies must be non-negative")
        self.collections = {
            key: [dict(row) for row in rows]
            for key, rows in collections.items()
        }
        self.latency_ms = latency_ms
        self.per_row_ms = per_row_ms
        self.object_size = object_size

    # -- registration-time exports -------------------------------------------

    def _statistics(self, name: str) -> CollectionStats:
        rows = self.collections[name]
        attributes = []
        for column in (rows[0] if rows else {}):
            values = [row[column] for row in rows if row[column] is not None]
            attributes.append(
                AttributeStats(
                    name=column,
                    indexed=False,
                    count_distinct=max(1, len(set(values))),
                    min_value=min(values) if values else None,
                    max_value=max(values) if values else None,
                )
            )
        return CollectionStats.from_extent(
            name, len(rows), self.object_size, attributes
        )

    def cost_rules_cdl(self) -> str:
        parts = [
            f"// Wall-clock cost rules of webish source {self.name!r}: the",
            "// same constants the wrapper genuinely sleeps with.",
            f"var Latency = {self.latency_ms};",
            f"var PerRow = {self.per_row_ms};",
        ]
        for name, rows in self.collections.items():
            parts.append(
                f"costrule scan({name}) {{\n"
                f"    TimeFirst = Latency;\n"
                f"    TotalTime = 2 * Latency + {name}.CountObject * PerRow;\n"
                f"}}"
            )
            for column in (rows[0] if rows else {}):
                if not isinstance(rows[0][column], (int, float)):
                    continue
                parts.append(
                    f"costrule select({name}, {column} = V) {{\n"
                    f"    CountObject = {name}.CountObject"
                    f" / {name}.{column}.CountDistinct;\n"
                    f"    TotalSize = CountObject * {name}.ObjectSize;\n"
                    f"    TotalTime = 2 * Latency + CountObject * PerRow;\n"
                    f"    TimeFirst = Latency;\n"
                    f"}}"
                )
                span = f"({name}.{column}.Max - {name}.{column}.Min)"
                for op in ("<", "<=", ">", ">="):
                    if op in ("<", "<="):
                        fraction = f"(V - {name}.{column}.Min) / {span}"
                    else:
                        fraction = f"({name}.{column}.Max - V) / {span}"
                    parts.append(
                        f"costrule select({name}, {column} {op} V) {{\n"
                        f"    CountObject = {name}.CountObject"
                        f" * clamp01({fraction});\n"
                        f"    TotalSize = CountObject * {name}.ObjectSize;\n"
                        f"    TotalTime = 2 * Latency + CountObject * PerRow;\n"
                        f"    TimeFirst = Latency;\n"
                        f"}}"
                    )
        return "\n".join(parts)

    def export_cost_info(self) -> CostInfoExport:
        return CostInfoExport(
            statistics=[self._statistics(name) for name in self.collections],
            cdl_source=self.cost_rules_cdl(),
        )

    # -- query-time execution -------------------------------------------------

    def execute(self, plan: PlanNode) -> ExecutionResult:
        plan = strip_submits(plan)
        self.check_capabilities(plan)
        start = time.perf_counter()
        self._sleep(self.latency_ms)  # the request travels
        rows = self._evaluate(plan)
        time_first = (time.perf_counter() - start) * 1000.0
        # The response travels back, paying per-row transfer time.
        self._sleep(self.latency_ms + len(rows) * self.per_row_ms)
        total = (time.perf_counter() - start) * 1000.0
        return ExecutionResult(
            rows=rows,
            total_time_ms=total,
            time_first_ms=time_first,
            device_stats={"web_rows": len(rows)},
        )

    @staticmethod
    def _sleep(ms: float) -> None:
        if ms > 0:
            time.sleep(ms / 1000.0)

    def _evaluate(self, node: PlanNode) -> list[Row]:
        if isinstance(node, Scan):
            if node.collection not in self.collections:
                raise PlanError(
                    f"webish source {self.name!r} has no collection "
                    f"{node.collection!r}"
                )
            return [dict(row) for row in self.collections[node.collection]]
        if isinstance(node, Select):
            return [
                row
                for row in self._evaluate(node.child)
                if node.predicate.evaluate(row)
            ]
        if isinstance(node, Project):
            return [
                {
                    name: AttributeRef(node.source_of(name)).evaluate(row)
                    for name in node.attributes
                }
                for row in self._evaluate(node.child)
            ]
        raise PlanError(
            f"webish source {self.name!r} cannot evaluate {node.operator_name!r}"
        )
