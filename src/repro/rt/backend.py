"""The wall-clock execution backend.

:class:`RealTimeBackend` implements the
:class:`~repro.mediator.backend.ExecutionBackend` seam with real time:

* :class:`WallClock` — a :class:`~repro.sources.clock.SimClock` whose
  ``now_ms`` reads ``time.perf_counter``.  ``advance``/``charge_*`` no
  longer move time (wall time passes by itself); they only keep the
  counters, under a lock, so the executor's existing accounting reads
  (messages, bytes, waits) stay meaningful;
* :meth:`RealTimeBackend.run_wave` — wave branches fan out on a shared
  ``ThreadPoolExecutor`` and genuinely overlap; outcomes return in
  input order;
* :meth:`RealTimeBackend.measured_execute` — one wrapper execution
  timed with ``perf_counter``; with a ``budget_ms`` the wait is bounded
  for real (the deadline primitive): an overrunning wrapper is
  abandoned on its worker thread and reported as a wait of at least the
  budget, which makes the scheduler's existing deadline arithmetic
  cancel the attempt exactly as it does in simulation;
* :meth:`RealTimeBackend.sleep` — retry backoff actually sleeps.

Wave accounting (:class:`WallWaveAccounting`) mirrors the sim
:class:`~repro.sources.clock.ParallelClock` interface, but the makespan
is *measured* — wall time from ``begin_wave`` to ``commit_wave`` — not
list-scheduled.  ``saved_ms`` (sequential sum minus measured makespan)
can therefore come out negative on a wave whose dispatch overhead
exceeds its overlap win; that is an honest measurement, not a bug.

Hedged submits are the one resilience feature that stays simulation
only: the sim scheduler models "first response wins" by charging the
winner's timeline, but on a wall clock the primary wait has already
been *spent* by the time its duration is known, so a real hedge needs
true speculative dual dispatch (future work).  Retries, deadlines,
failover and breaker cooldowns all run for real.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import SourceFaultError, SourceUnavailableError
from repro.mediator.backend import ExecutionBackend, MeasuredAttempt
from repro.sources.clock import ClockStats, ParallelStats, SimClock, WaveStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algebra.logical import PlanNode
    from repro.wrappers.base import ExecutionResult, Wrapper

#: Reported on top of the budget when a deadline abandons an attempt, so
#: ``waited + wait > deadline`` is strict even at a zero remaining budget.
_OVERRUN_EPSILON_MS = 1e-3


class WallClock(SimClock):
    """A clock whose time is the wall's.

    ``now_ms`` measures milliseconds since construction (or the last
    :meth:`reset`) via ``perf_counter``; ``advance`` is a validated
    no-op — components may keep charging simulated durations, but real
    time is what elapses.  Counter updates are lock-guarded: on the
    real backend they arrive from pool threads.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()
        self._origin = time.perf_counter()

    @property
    def now_ms(self) -> float:
        return (time.perf_counter() - self._origin) * 1000.0

    def elapsed_since(self, mark_ms: float) -> float:
        return self.now_ms - mark_ms

    def advance(self, ms: float) -> None:
        if ms < 0:
            raise ValueError(f"cannot advance clock by negative time: {ms}")
        # Wall time passes by itself; simulated charges are dropped.

    def charge_wait(self, ms: float) -> None:
        with self._lock:
            self.stats.wait_ms += ms

    def charge_message(self, payload_bytes: int = 0) -> None:
        with self._lock:
            self.stats.messages += 1
            self.stats.bytes_shipped += payload_bytes

    def charge_page_read(self, count: int = 1) -> None:
        with self._lock:
            self.stats.page_reads += count

    def charge_page_write(self, count: int = 1) -> None:
        with self._lock:
            self.stats.page_writes += count

    def charge_objects(self, count: int = 1) -> None:
        with self._lock:
            self.stats.objects_processed += count

    def charge_seek(self) -> None:
        pass

    def sleep(self, ms: float) -> None:
        """A genuine idle wait, counted like a simulated one."""
        if ms <= 0:
            return
        time.sleep(ms / 1000.0)
        self.charge_wait(ms)

    def reset(self) -> None:
        with self._lock:
            self._origin = time.perf_counter()
            self.stats = ClockStats()


class WallWaveAccounting:
    """Wave accounting against the wall: the sequential sum is recorded
    per branch (thread-safely), the makespan is *measured* as the wall
    time between ``begin_wave`` and ``commit_wave``."""

    def __init__(self, clock: WallClock, max_concurrency: int | None) -> None:
        if max_concurrency is not None and max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        self.clock = clock
        self.max_concurrency = max_concurrency
        self.stats = ParallelStats()
        self._lock = threading.Lock()
        self._wave: list[float] | None = None
        self._wave_start_ms = 0.0

    @property
    def in_wave(self) -> bool:
        return self._wave is not None

    def begin_wave(self) -> None:
        if self._wave is not None:
            raise RuntimeError("a wave is already open (waves do not nest)")
        self._wave = []
        self._wave_start_ms = self.clock.now_ms

    def charge_branch(self, duration_ms: float) -> None:
        if self._wave is None:
            raise RuntimeError("charge_branch outside begin_wave/commit_wave")
        if duration_ms < 0:
            raise ValueError(f"negative branch duration: {duration_ms}")
        with self._lock:
            self._wave.append(duration_ms)

    def charge_message(self, payload_bytes: int = 0) -> None:
        self.clock.charge_message(payload_bytes=payload_bytes)

    def commit_wave(self) -> WaveStats:
        if self._wave is None:
            raise RuntimeError("commit_wave without begin_wave")
        durations, self._wave = self._wave, None
        wave = WaveStats(
            branches=len(durations),
            sequential_ms=sum(durations),
            # Measured, not modeled: saved_ms goes negative when the
            # dispatch overhead beats the overlap win.
            makespan_ms=self.clock.now_ms - self._wave_start_ms,
        )
        self.stats.waves += 1
        self.stats.branches += wave.branches
        self.stats.sequential_ms += wave.sequential_ms
        self.stats.makespan_ms += wave.makespan_ms
        return wave


class RealSequentialCharges:
    """Sequential-dispatch charges on the wall: messages and waits are
    counted (time needs no help passing), backoffs genuinely sleep."""

    __slots__ = ("clock",)

    def __init__(self, clock: WallClock) -> None:
        self.clock = clock

    def message(self, payload_bytes: int = 0) -> None:
        self.clock.charge_message(payload_bytes=payload_bytes)

    def wrapper_wait(self, ms: float) -> None:
        pass  # the wait already happened, on the wall

    def idle_wait(self, ms: float) -> None:
        self.clock.sleep(ms)


class RealWaveCharges:
    """Wave-branch charges on the wall: waits accumulate into the branch
    duration (feeding the sequential-sum side of the wave accounting),
    backoffs sleep on the branch's pool thread."""

    __slots__ = ("parallel", "clock", "branch_ms")

    def __init__(self, parallel: WallWaveAccounting, clock: WallClock) -> None:
        self.parallel = parallel
        self.clock = clock
        self.branch_ms = 0.0

    def message(self, payload_bytes: int = 0) -> None:
        self.parallel.charge_message(payload_bytes=payload_bytes)

    def wrapper_wait(self, ms: float) -> None:
        self.branch_ms += ms

    def idle_wait(self, ms: float) -> None:
        self.branch_ms += ms
        self.clock.sleep(ms)


class RealTimeBackend(ExecutionBackend):
    """Wall-clock dispatch on a thread pool.

    One backend owns one pool (created lazily, sized by
    ``max_workers``, shut down by :meth:`close` or context exit) and
    one :class:`WallClock`.  The scheduler's wave of branch thunks runs
    genuinely concurrently; everything else the scheduler does —
    retries, breakers, failover, caching — is unchanged policy running
    against real time.
    """

    name = "real"
    real_time = True

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.clock = WallClock()
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # -- seam hooks ----------------------------------------------------------

    def attach_waves(self, max_concurrency: int | None) -> Any:
        if max_concurrency is not None:
            # The executor's concurrency cap bounds true parallelism too.
            self.max_workers = min(self.max_workers, max_concurrency)
        return WallWaveAccounting(self.clock, max_concurrency)

    def sequential_charges(self) -> RealSequentialCharges:
        return RealSequentialCharges(self.clock)

    def wave_charges(self, parallel: Any) -> RealWaveCharges:
        return RealWaveCharges(parallel, self.clock)

    def measured_execute(
        self,
        wrapper: "Wrapper",
        plan: "PlanNode",
        budget_ms: float | None = None,
    ) -> MeasuredAttempt:
        if budget_ms is None:
            return self._timed_attempt(wrapper, plan)
        return self._budgeted_attempt(wrapper, plan, budget_ms)

    def run_wave(
        self, branches: "Sequence[Callable[[], Any]]"
    ) -> "list[Any]":
        if len(branches) <= 1:
            return [branch() for branch in branches]
        return list(self._ensure_pool().map(lambda branch: branch(), branches))

    def sleep(self, ms: float) -> None:
        self.clock.sleep(ms)

    # -- internals -----------------------------------------------------------

    def _timed_attempt(
        self, wrapper: "Wrapper", plan: "PlanNode"
    ) -> MeasuredAttempt:
        start = time.perf_counter()
        try:
            result: "ExecutionResult" = wrapper.execute(plan)
        except SourceUnavailableError as fault:
            return MeasuredAttempt(
                None, self._elapsed_ms(start), "unavailable", fault
            )
        except SourceFaultError as fault:
            return MeasuredAttempt(
                None, self._elapsed_ms(start), "transient", fault
            )
        except Exception as fault:  # a real source can fail in real ways
            return MeasuredAttempt(
                None, self._elapsed_ms(start), "transient", fault
            )
        return MeasuredAttempt(result, self._elapsed_ms(start))

    def _budgeted_attempt(
        self, wrapper: "Wrapper", plan: "PlanNode", budget_ms: float
    ) -> MeasuredAttempt:
        """One attempt whose wait is bounded by the remaining deadline
        budget.  The worker thread cannot be killed mid-execute, so an
        overrunning attempt is *abandoned*: it finishes (and is
        discarded) on its own daemon thread while the dispatcher moves
        on — mirroring a client that hangs up on a slow source."""
        box: dict[str, Any] = {}

        def target() -> None:
            box["attempt"] = self._timed_attempt(wrapper, plan)

        start = time.perf_counter()
        worker = threading.Thread(target=target, daemon=True)
        worker.start()
        worker.join(timeout=budget_ms / 1000.0)
        if worker.is_alive():
            return MeasuredAttempt(
                None,
                max(self._elapsed_ms(start), budget_ms) + _OVERRUN_EPSILON_MS,
            )
        return box["attempt"]

    @staticmethod
    def _elapsed_ms(start: float) -> float:
        return (time.perf_counter() - start) * 1000.0

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-rt",
                )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "RealTimeBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
