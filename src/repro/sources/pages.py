"""Paged storage for the simulated data sources.

The §5 experiment depends on one physical fact: objects live on fixed-size
disk pages (4096 bytes at 96 % fill in the OO7 setup), so an index scan
fetches the *distinct pages* containing the selected objects — the
quantity Yao's formula predicts.  This module provides that substrate:

* :class:`Page` — a bounded container of records;
* :class:`PagedFile` — a heap of pages with a fill factor and a placement
  policy (``sequential`` appends in insertion order; ``clustered(attr)``
  sorts by an attribute before placement; ``scattered(seed)`` shuffles
  deterministically, decorrelating page order from key order — the
  placement the Yao model assumes);
* :class:`BufferPool` — an LRU page cache that charges the
  :class:`~repro.sources.clock.SimClock` one page read per miss.

Records are ``(rid, row)`` pairs where ``rid = (page_id, slot)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.errors import PageError
from repro.sources.clock import SimClock

Row = dict[str, Any]
Rid = tuple[int, int]

#: The page size of the paper's experiment (§5).
DEFAULT_PAGE_SIZE = 4096

#: The fill factor of the paper's experiment (96 %).
DEFAULT_FILL_FACTOR = 0.96


@dataclass
class Page:
    """One fixed-size page holding whole records."""

    page_id: int
    capacity: int
    records: list[Row] = field(default_factory=list)
    used: int = 0

    def fits(self, size: int) -> bool:
        return self.used + size <= self.capacity

    def append(self, row: Row, size: int) -> int:
        """Store a record; returns its slot number."""
        if size > self.capacity:
            raise PageError(
                f"record of {size} bytes cannot fit a {self.capacity}-byte page"
            )
        if not self.fits(size):
            raise PageError(f"page {self.page_id} is full")
        self.records.append(row)
        self.used += size
        return len(self.records) - 1

    def __len__(self) -> int:
        return len(self.records)


class PagedFile:
    """A heap file: records packed onto pages under a fill factor.

    Build one with :meth:`bulk_load`; the file is immutable afterwards
    (the experiments never update in place), which keeps rids stable for
    indexes.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        fill_factor: float = DEFAULT_FILL_FACTOR,
    ) -> None:
        if not 0 < fill_factor <= 1:
            raise PageError(f"fill factor must be in (0, 1], got {fill_factor}")
        self.page_size = page_size
        self.fill_factor = fill_factor
        self.pages: list[Page] = []
        self.record_count = 0
        self.total_bytes = 0

    @property
    def effective_capacity(self) -> int:
        return int(self.page_size * self.fill_factor)

    @property
    def page_count(self) -> int:
        return len(self.pages)

    # -- loading -----------------------------------------------------------------

    def bulk_load(
        self,
        rows: Iterable[Row],
        record_size: int | Callable[[Row], int],
        placement: "PlacementPolicy | None" = None,
    ) -> list[Rid]:
        """Pack rows onto pages; returns the rid of each input row, in the
        *input* order (so callers can build indexes on logical order even
        when the physical placement shuffles)."""
        if self.pages:
            raise PageError("bulk_load on a non-empty file")
        size_of = record_size if callable(record_size) else (lambda _row: record_size)
        materialized = list(rows)
        order = list(range(len(materialized)))
        if placement is not None:
            order = placement.order(materialized)
        rids: dict[int, Rid] = {}
        current: Page | None = None
        for original_index in order:
            row = materialized[original_index]
            size = size_of(row)
            if current is None or not current.fits(size):
                current = Page(len(self.pages), self.effective_capacity)
                self.pages.append(current)
            slot = current.append(row, size)
            rids[original_index] = (current.page_id, slot)
            self.record_count += 1
            self.total_bytes += size
        return [rids[i] for i in range(len(materialized))]

    # -- access -----------------------------------------------------------------------

    def page(self, page_id: int) -> Page:
        try:
            return self.pages[page_id]
        except IndexError:
            raise PageError(f"no page {page_id} (file has {len(self.pages)})") from None

    def fetch(self, rid: Rid) -> Row:
        page_id, slot = rid
        page = self.page(page_id)
        try:
            return page.records[slot]
        except IndexError:
            raise PageError(f"no slot {slot} on page {page_id}") from None

    def scan_rids(self) -> Iterator[tuple[Rid, Row]]:
        """All records in physical (page) order."""
        for page in self.pages:
            for slot, row in enumerate(page.records):
                yield (page.page_id, slot), row


class PlacementPolicy:
    """Decides the physical order in which records are packed onto pages."""

    def order(self, rows: list[Row]) -> list[int]:
        raise NotImplementedError


class SequentialPlacement(PlacementPolicy):
    """Insertion order — physically correlated with logical order."""

    def order(self, rows: list[Row]) -> list[int]:
        return list(range(len(rows)))


class ClusteredPlacement(PlacementPolicy):
    """Sorted by an attribute — an index scan on that attribute reads
    consecutive pages (the clustering case §7 says calibration cannot
    capture)."""

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute

    def order(self, rows: list[Row]) -> list[int]:
        return sorted(range(len(rows)), key=lambda i: rows[i][self.attribute])


class ScatteredPlacement(PlacementPolicy):
    """Deterministic shuffle — decorrelates physical placement from every
    attribute, the random-placement assumption behind Yao's formula."""

    def __init__(self, seed: int = 0x007) -> None:
        self.seed = seed

    def order(self, rows: list[Row]) -> list[int]:
        order = list(range(len(rows)))
        random.Random(self.seed).shuffle(order)
        return order


class BufferPool:
    """An LRU cache of pages in front of a :class:`PagedFile`.

    Each miss charges one page read on the clock; hits are free.  A
    capacity of 0 disables caching entirely (every access is a miss),
    which is how the Figure 12 experiment models a cold cache.
    """

    def __init__(self, file: PagedFile, clock: SimClock, capacity: int = 0) -> None:
        self.file = file
        self.clock = clock
        self.capacity = capacity
        self._resident: dict[int, None] = {}  # insertion-ordered LRU
        self.hits = 0
        self.misses = 0

    def access(self, page_id: int) -> Page:
        """Read a page through the cache, charging I/O on a miss."""
        page = self.file.page(page_id)  # validate id first
        if self.capacity > 0 and page_id in self._resident:
            self.hits += 1
            self._resident.pop(page_id)
            self._resident[page_id] = None  # move to MRU position
            return page
        self.misses += 1
        self.clock.charge_page_read()
        if self.capacity > 0:
            if len(self._resident) >= self.capacity:
                oldest = next(iter(self._resident))
                self._resident.pop(oldest)
            self._resident[page_id] = None
        return page

    def fetch(self, rid: tuple[int, int]) -> Row:
        page = self.access(rid[0])
        return page.records[rid[1]]

    def clear(self) -> None:
        self._resident.clear()
        self.hits = 0
        self.misses = 0
