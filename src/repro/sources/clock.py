"""Deterministic simulated time for data sources and the mediator.

The paper measures wrapper operations in *milliseconds of response time*
(``TimeFirst``, ``TimeNext``, ``TotalTime``).  The original experiments ran
against a real ObjectStore installation; this reproduction replaces wall
time with a :class:`SimClock` that each simulated component charges
explicitly: page reads charge an I/O cost, per-object processing charges a
CPU cost, and network hops charge a latency.  This keeps the experiments
deterministic and laptop-scale while preserving the cost *structure* the
paper relies on (``IO * pages + Output * objects`` for the Figure 12
experiment).

Times are floats in **milliseconds** throughout, matching §2.3 of the
paper ("The time is measured in milliseconds").
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostProfile:
    """Per-operation simulated charges of a device, in milliseconds.

    The defaults model the disk of the paper's §5 experiment: the paper
    uses ``IO = 0.025 s`` per page and ``Output = 0.009 s`` per object,
    i.e. 25 ms and 9 ms.

    Attributes:
        io_ms: time to read or write one page from storage.
        cpu_ms_per_object: time to produce (fetch/copy) one object.
        cpu_ms_per_eval: time to run one operator step (filter, projection,
            comparison) over one row — charged by plan interpreters above
            the access paths.
        seek_ms: fixed per-operation startup overhead.
        net_ms_per_message: round-trip latency charged per network message.
        net_ms_per_byte: transfer time charged per byte shipped.
    """

    io_ms: float = 25.0
    cpu_ms_per_object: float = 9.0
    cpu_ms_per_eval: float = 0.5
    seek_ms: float = 0.0
    net_ms_per_message: float = 0.0
    net_ms_per_byte: float = 0.0


@dataclass
class ClockStats:
    """Accumulated counters, useful for asserting *why* time was charged."""

    page_reads: int = 0
    page_writes: int = 0
    objects_processed: int = 0
    messages: int = 0
    bytes_shipped: int = 0
    #: Idle waits the mediator charged outside device work: retry
    #: backoff sleeps and cancelled (timed-out) wrapper waits.  Zero on
    #: any component that never dispatches with a retry policy.
    wait_ms: float = 0.0


class SimClock:
    """A monotonically advancing simulated clock.

    Components call the ``charge_*`` methods; tests and the benchmark
    harness read :attr:`now_ms` (or take deltas) as the "measured" response
    time.  The clock also keeps counters so tests can assert on page-read
    counts — the quantity Yao's formula predicts — not just on time.
    """

    def __init__(self, profile: CostProfile | None = None) -> None:
        self.profile = profile if profile is not None else CostProfile()
        self._now_ms = 0.0
        self.stats = ClockStats()

    # -- reading the clock -------------------------------------------------

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds since construction."""
        return self._now_ms

    def elapsed_since(self, mark_ms: float) -> float:
        """Milliseconds elapsed since a previously saved ``now_ms`` mark."""
        return self._now_ms - mark_ms

    # -- charging time ------------------------------------------------------

    def advance(self, ms: float) -> None:
        """Advance the clock by an arbitrary non-negative duration."""
        if ms < 0:
            raise ValueError(f"cannot advance clock by negative time: {ms}")
        self._now_ms += ms

    def charge_page_read(self, count: int = 1) -> None:
        """Charge ``count`` page reads at the profile's I/O cost."""
        self.stats.page_reads += count
        self.advance(self.profile.io_ms * count)

    def charge_page_write(self, count: int = 1) -> None:
        """Charge ``count`` page writes at the profile's I/O cost."""
        self.stats.page_writes += count
        self.advance(self.profile.io_ms * count)

    def charge_objects(self, count: int = 1) -> None:
        """Charge per-object CPU for ``count`` objects."""
        self.stats.objects_processed += count
        self.advance(self.profile.cpu_ms_per_object * count)

    def charge_seek(self) -> None:
        """Charge one fixed startup/seek overhead."""
        self.advance(self.profile.seek_ms)

    def charge_wait(self, ms: float) -> None:
        """Charge an idle wait (retry backoff, a cancelled wrapper wait).

        Advances the clock like :meth:`advance` but also accumulates the
        :attr:`ClockStats.wait_ms` counter, so tests can distinguish
        fault-handling time from device time.
        """
        self.stats.wait_ms += ms
        self.advance(ms)

    def charge_message(self, payload_bytes: int = 0) -> None:
        """Charge one network message carrying ``payload_bytes`` bytes."""
        self.stats.messages += 1
        self.stats.bytes_shipped += payload_bytes
        self.advance(
            self.profile.net_ms_per_message
            + self.profile.net_ms_per_byte * payload_bytes
        )

    # -- scoping -------------------------------------------------------------

    def reset(self) -> None:
        """Zero the clock and all counters."""
        self._now_ms = 0.0
        self.stats = ClockStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now_ms:.3f}ms, {self.stats})"


@dataclass
class WaveStats:
    """Accounting of one committed wave of concurrent branches."""

    branches: int = 0
    #: Sum of the branch durations — what a sequential executor would pay.
    sequential_ms: float = 0.0
    #: List-scheduled completion time actually charged to the clock.
    makespan_ms: float = 0.0

    @property
    def saved_ms(self) -> float:
        """Simulated time the overlap saved versus sequential dispatch."""
        return self.sequential_ms - self.makespan_ms


@dataclass
class ParallelStats:
    """Cumulative counters across all waves of one :class:`ParallelClock`."""

    waves: int = 0
    branches: int = 0
    sequential_ms: float = 0.0
    makespan_ms: float = 0.0

    @property
    def saved_ms(self) -> float:
        return self.sequential_ms - self.makespan_ms


class ParallelClock:
    """Wave accounting over a :class:`SimClock`.

    The sequential execution model advances the clock by the *sum* of the
    wrapper response times it waits for.  A mediator that dispatches
    independent subqueries concurrently only waits for the *slowest* one
    (per concurrency slot).  This class models that: branch durations are
    recorded with :meth:`charge_branch` between :meth:`begin_wave` and
    :meth:`commit_wave`, and the commit advances the underlying clock by
    the wave's list-scheduled makespan instead of the branch-duration sum.

    Everything stays deterministic: branches are *executed* one after
    another by the caller (no threads); only the time accounting treats
    them as overlapping.  Serialized charges (the mediator's single
    network interface shipping request/response messages) keep going
    through the underlying clock directly.
    """

    def __init__(
        self, clock: SimClock, max_concurrency: int | None = None
    ) -> None:
        if max_concurrency is not None and max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        self.clock = clock
        self.max_concurrency = max_concurrency
        self.stats = ParallelStats()
        self._wave: list[float] | None = None

    @staticmethod
    def makespan(
        durations: "list[float]", max_concurrency: int | None = None
    ) -> float:
        """Completion time of ``durations`` under greedy list scheduling.

        Branches are assigned, in order, to the earliest-available of
        ``max_concurrency`` slots (unbounded when ``None``); the makespan
        is the latest slot finish time.  With one slot this degenerates to
        the sequential sum, with unbounded slots to the plain max.
        """
        if not durations:
            return 0.0
        slots_count = (
            len(durations)
            if max_concurrency is None
            else max(1, min(max_concurrency, len(durations)))
        )
        slots = [0.0] * slots_count
        for duration in durations:
            if duration < 0:
                raise ValueError(f"negative branch duration: {duration}")
            earliest = min(range(slots_count), key=lambda i: slots[i])
            slots[earliest] += duration
        return max(slots)

    # -- wave lifecycle -----------------------------------------------------

    @property
    def in_wave(self) -> bool:
        return self._wave is not None

    def begin_wave(self) -> None:
        if self._wave is not None:
            raise RuntimeError("a wave is already open (waves do not nest)")
        self._wave = []

    def charge_branch(self, duration_ms: float) -> None:
        """Record one concurrent branch duration for the open wave."""
        if self._wave is None:
            raise RuntimeError("charge_branch outside begin_wave/commit_wave")
        if duration_ms < 0:
            raise ValueError(f"negative branch duration: {duration_ms}")
        self._wave.append(duration_ms)

    def charge_message(self, payload_bytes: int = 0) -> None:
        """Serialized communication: passes straight through to the clock."""
        self.clock.charge_message(payload_bytes=payload_bytes)

    def commit_wave(self) -> WaveStats:
        """Advance the clock by the wave's makespan; return its accounting."""
        if self._wave is None:
            raise RuntimeError("commit_wave without begin_wave")
        durations, self._wave = self._wave, None
        wave = WaveStats(
            branches=len(durations),
            sequential_ms=sum(durations),
            makespan_ms=self.makespan(durations, self.max_concurrency),
        )
        self.clock.advance(wave.makespan_ms)
        self.stats.waves += 1
        self.stats.branches += wave.branches
        self.stats.sequential_ms += wave.sequential_ms
        self.stats.makespan_ms += wave.makespan_ms
        return wave

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelClock(max_concurrency={self.max_concurrency}, "
            f"{self.stats})"
        )


@dataclass
class Stopwatch:
    """Convenience for measuring a span of simulated time.

    Example:
        >>> clock = SimClock()
        >>> watch = Stopwatch(clock)
        >>> clock.charge_page_read(4)
        >>> watch.elapsed_ms
        100.0
    """

    clock: SimClock
    start_ms: float = field(default=0.0)

    def __post_init__(self) -> None:
        self.start_ms = self.clock.now_ms

    @property
    def elapsed_ms(self) -> float:
        return self.clock.elapsed_since(self.start_ms)

    def restart(self) -> None:
        self.start_ms = self.clock.now_ms
