"""A minimal relational engine over the shared paged substrate.

Used as the "classical relational source" in multi-source experiments and
examples: tables with typed-ish rows, optional B+tree indexes, sequential
and index access paths, and post-load inserts (the object store is
load-once; a relational source keeps growing, so its exported statistics
drift — the situation §2.1 re-registration addresses).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import StorageError
from repro.sources.clock import CostProfile, SimClock
from repro.sources.pages import Page, Row
from repro.sources.storage_engine import StorageEngine

#: A faster device than the object store: a cached relational server.
RELATIONAL_DEVICE = CostProfile(io_ms=8.0, cpu_ms_per_object=0.5)


class RelationalDatabase(StorageEngine):
    """Tables + inserts on top of :class:`StorageEngine`."""

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(clock if clock is not None else SimClock(RELATIONAL_DEVICE))
        self._row_sizes: dict[str, int | Callable[[Row], int]] = {}

    def create_table(
        self,
        name: str,
        rows: Iterable[Row] = (),
        *,
        row_size: int | Callable[[Row], int] = 100,
        indexed_columns: Iterable[str] = (),
        page_size: int = 4096,
        fill_factor: float = 1.0,
    ):
        """Create and bulk-load a table (sequential placement)."""
        table = self.create_collection(
            name,
            rows,
            object_size=row_size,
            indexed_attributes=indexed_columns,
            placement="sequential",
            page_size=page_size,
            fill_factor=fill_factor,
        )
        self._row_sizes[name] = row_size
        return table

    def insert(self, name: str, row: Row) -> None:
        """Append one row, maintaining indexes; charges one page write."""
        table = self.collection(name)
        size_spec = self._row_sizes.get(name, 100)
        size = size_spec(row) if callable(size_spec) else size_spec
        row = dict(row)
        file = table.file
        if file.pages and file.pages[-1].fits(size):
            page = file.pages[-1]
        else:
            page = Page(len(file.pages), file.effective_capacity)
            file.pages.append(page)
        slot = page.append(row, size)
        rid = (page.page_id, slot)
        file.record_count += 1
        file.total_bytes += size
        table.rows.append(row)
        table.rids.append(rid)
        table.object_size = file.total_bytes // max(1, file.record_count)
        for attribute, tree in table.indexes.items():
            if attribute not in row:
                raise StorageError(
                    f"insert into {name}: missing indexed column {attribute!r}"
                )
            tree.insert(row[attribute], rid)
        self.clock.charge_page_write()

    def row_count(self, name: str) -> int:
        return self.collection(name).count

    def lookup(self, name: str, column: str, value: Any) -> list[Row]:
        """Exact-match read through an index (charges like an index scan)."""
        return list(self.index_scan(name, column, value=value))
