"""The shared paged storage engine behind the simulated data sources.

Both the ObjectStore stand-in (:mod:`repro.sources.objectdb`) and the
relational engine (:mod:`repro.sources.relationaldb`) are flavours of the
same substrate: collections of rows packed onto pages (``PagedFile``) with
optional B+tree secondary indexes, accessed through two physical
operators:

* **sequential scan** — reads every page once and touches every object;
* **index scan** — walks the B+tree for the qualifying keys, then fetches
  the *distinct* pages holding the matching objects, in key order.

All physical work charges the owning :class:`~repro.sources.clock.SimClock`,
so "measured" response times are deterministic functions of pages read and
objects produced — the structure the paper's §5 experiment measures on
real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.core.statistics import AttributeStats, CollectionStats
from repro.errors import StorageError
from repro.sources.btree import BPlusTree
from repro.sources.clock import SimClock
from repro.sources.pages import (
    DEFAULT_FILL_FACTOR,
    DEFAULT_PAGE_SIZE,
    BufferPool,
    ClusteredPlacement,
    PagedFile,
    PlacementPolicy,
    Rid,
    Row,
    ScatteredPlacement,
    SequentialPlacement,
)

#: CPU charged per B+tree node visited during an index descent (ms).
INDEX_VISIT_MS = 0.1


def make_placement(spec: str | PlacementPolicy | None) -> PlacementPolicy:
    """Resolve a placement spec: ``None``/'sequential', 'scattered',
    'clustered:<attr>', or an explicit policy object."""
    if spec is None or spec == "sequential":
        return SequentialPlacement()
    if isinstance(spec, PlacementPolicy):
        return spec
    if spec == "scattered":
        return ScatteredPlacement()
    if spec.startswith("clustered:"):
        return ClusteredPlacement(spec.split(":", 1)[1])
    raise StorageError(f"unknown placement spec {spec!r}")


@dataclass
class StoredCollection:
    """One collection: its heap file, indexes, and loading metadata."""

    name: str
    file: PagedFile
    rows: list[Row]
    rids: list[Rid]
    indexes: dict[str, BPlusTree] = field(default_factory=dict)
    object_size: int = 0
    pool: BufferPool | None = None

    @property
    def count(self) -> int:
        return len(self.rows)


class StorageEngine:
    """Paged collections with sequential and index access paths.

    ``buffer_pages`` > 0 puts an LRU buffer pool of that many pages in
    front of every collection: repeated accesses to resident pages stop
    charging I/O, modelling a warm cache.  The default of 0 keeps the
    cold-cache behaviour the §5 experiment measures (every distinct page
    of an operation is charged exactly once).
    """

    def __init__(
        self, clock: SimClock | None = None, buffer_pages: int = 0
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.buffer_pages = buffer_pages
        self._collections: dict[str, StoredCollection] = {}

    # -- DDL / loading -------------------------------------------------------

    def create_collection(
        self,
        name: str,
        rows: Iterable[Row],
        *,
        object_size: int | Callable[[Row], int] = 100,
        indexed_attributes: Iterable[str] = (),
        placement: str | PlacementPolicy | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        fill_factor: float = DEFAULT_FILL_FACTOR,
    ) -> StoredCollection:
        """Load a collection and build its indexes (no time charged —
        loading is out of scope for the experiments)."""
        if name in self._collections:
            raise StorageError(f"collection {name!r} already exists")
        materialized = [dict(row) for row in rows]
        file = PagedFile(page_size=page_size, fill_factor=fill_factor)
        rids = file.bulk_load(materialized, object_size, make_placement(placement))
        average = (
            file.total_bytes // max(1, file.record_count) if materialized else 0
        )
        collection = StoredCollection(
            name=name,
            file=file,
            rows=materialized,
            rids=rids,
            object_size=average,
            pool=(
                BufferPool(file, self.clock, capacity=self.buffer_pages)
                if self.buffer_pages > 0
                else None
            ),
        )
        for attribute in indexed_attributes:
            self._build_index(collection, attribute)
        self._collections[name] = collection
        return collection

    def _build_index(self, collection: StoredCollection, attribute: str) -> None:
        tree = BPlusTree()
        for row, rid in zip(collection.rows, collection.rids):
            if attribute not in row:
                raise StorageError(
                    f"cannot index {collection.name}.{attribute}: missing in a row"
                )
            tree.insert(row[attribute], rid)
        collection.indexes[attribute] = tree

    def drop_collection(self, name: str) -> None:
        self._collections.pop(name, None)

    # -- introspection ----------------------------------------------------------

    def collection(self, name: str) -> StoredCollection:
        try:
            return self._collections[name]
        except KeyError:
            raise StorageError(f"no collection {name!r}") from None

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def has_index(self, name: str, attribute: str) -> bool:
        return attribute in self.collection(name).indexes

    def page_count(self, name: str) -> int:
        return self.collection(name).file.page_count

    # -- physical operators -------------------------------------------------------

    def _read_page(self, collection: StoredCollection, page_id: int) -> None:
        """Charge one page access, through the buffer pool when present."""
        if collection.pool is not None:
            collection.pool.access(page_id)
        else:
            self.clock.charge_page_read()

    def seq_scan(self, name: str) -> Iterator[Row]:
        """Read every page once, touch every object."""
        collection = self.collection(name)
        self.clock.charge_seek()
        for page in collection.file.pages:
            self._read_page(collection, page.page_id)
            for row in page.records:
                self.clock.charge_objects()
                yield row

    def index_scan(
        self,
        name: str,
        attribute: str,
        *,
        value: Any = None,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Row]:
        """Fetch matching objects through the B+tree.

        Pass ``value`` for an exact match, or ``low``/``high`` for a range.
        Pages are charged once per *distinct* page touched — the physical
        behaviour Yao's formula predicts.
        """
        collection = self.collection(name)
        tree = collection.indexes.get(attribute)
        if tree is None:
            raise StorageError(f"no index on {name}.{attribute}")
        if value is not None and (low is not None or high is not None):
            raise StorageError("pass either value or a range, not both")
        if value is not None:
            self.clock.advance(INDEX_VISIT_MS * tree.visits_for(value))
            rid_groups: Iterable[list[Rid]] = [tree.search(value)]
        else:
            probe = low if low is not None else high
            if probe is not None:
                self.clock.advance(INDEX_VISIT_MS * tree.visits_for(probe))
            rid_groups = (
                rids
                for _key, rids in tree.range_search(
                    low,
                    high,
                    low_inclusive=low_inclusive,
                    high_inclusive=high_inclusive,
                )
            )
        seen_pages: set[int] = set()
        for rids in rid_groups:
            for rid in rids:
                page_id = rid[0]
                if page_id not in seen_pages:
                    seen_pages.add(page_id)
                    self._read_page(collection, page_id)
                self.clock.charge_objects()
                yield collection.file.fetch(rid)

    # -- statistics export (§3.2) ----------------------------------------------------

    def export_statistics(self, name: str) -> CollectionStats:
        """Compute the §3.2 statistics triplets from the stored data."""
        collection = self.collection(name)
        stats = CollectionStats(
            name=name,
            count_object=collection.count,
            total_size=collection.file.total_bytes,
            object_size=collection.object_size,
        )
        attributes: set[str] = set()
        for row in collection.rows[:1]:
            attributes.update(row.keys())
        for attribute in sorted(attributes):
            values = [
                row[attribute]
                for row in collection.rows
                if attribute in row and row[attribute] is not None
            ]
            if not values:
                continue
            comparable = all(isinstance(v, (int, float)) for v in values) or all(
                isinstance(v, str) for v in values
            )
            stats.add_attribute(
                AttributeStats(
                    name=attribute,
                    indexed=attribute in collection.indexes,
                    count_distinct=len(set(values)),
                    min_value=min(values) if comparable else None,
                    max_value=max(values) if comparable else None,
                )
            )
        return stats
