"""Simulated data-source substrates: clock, pages, B+tree, engines."""

from repro.sources.btree import BPlusTree
from repro.sources.clock import CostProfile, SimClock, Stopwatch
from repro.sources.objectdb import OO7_DEVICE, ObjectDatabase
from repro.sources.pages import (
    BufferPool,
    ClusteredPlacement,
    Page,
    PagedFile,
    ScatteredPlacement,
    SequentialPlacement,
)
from repro.sources.relationaldb import RelationalDatabase
from repro.sources.storage_engine import StorageEngine, StoredCollection

__all__ = [
    "BPlusTree",
    "BufferPool",
    "ClusteredPlacement",
    "CostProfile",
    "OO7_DEVICE",
    "ObjectDatabase",
    "Page",
    "PagedFile",
    "RelationalDatabase",
    "ScatteredPlacement",
    "SequentialPlacement",
    "SimClock",
    "Stopwatch",
    "StorageEngine",
    "StoredCollection",
]
