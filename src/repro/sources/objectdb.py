"""The ObjectStore stand-in: a paged object database (§5 substitution).

The paper's experiments ran OO7 queries against a real ObjectStore
installation.  :class:`ObjectDatabase` reproduces the physical behaviour
the experiment depends on — objects packed onto 4096-byte pages at a fill
factor, B+tree indexes, and an index scan whose page accesses follow
Yao's law when placement is scattered — on top of the shared
:class:`~repro.sources.storage_engine.StorageEngine`, with a simulated
clock standing in for wall time (see DESIGN.md, substitutions table).

Terminology follows the object world: collections are *extents* and the
loader accepts a clustering spec, the feature §7 singles out ("we
particularly investigate the case of clustering, which can not be easily
captured by a calibrating model").
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.sources.clock import CostProfile, SimClock
from repro.sources.pages import PlacementPolicy, Row
from repro.sources.storage_engine import StorageEngine

#: The device profile of the §5 experiment: IO = 25 ms/page,
#: Output = 9 ms/object.
OO7_DEVICE = CostProfile(io_ms=25.0, cpu_ms_per_object=9.0)


class ObjectDatabase(StorageEngine):
    """A paged object store with extents, indexes, and clustering."""

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(clock if clock is not None else SimClock(OO7_DEVICE))
        #: extent name -> clustering spec used at load time (wrappers read
        #: this to export clustering-aware cost rules).
        self.clustering: dict[str, str] = {}

    def create_extent(
        self,
        name: str,
        objects: Iterable[Row],
        *,
        object_size: int | Callable[[Row], int],
        indexed_attributes: Iterable[str] = (),
        clustering: str | PlacementPolicy | None = "scattered",
        page_size: int = 4096,
        fill_factor: float = 0.96,
    ):
        """Load an extent.

        ``clustering`` defaults to ``"scattered"`` — physical placement
        uncorrelated with any attribute, the assumption behind Yao's
        model; pass ``"clustered:<attr>"`` to sort objects by an attribute
        (an index scan on it then reads nearly-consecutive pages) or
        ``"sequential"`` for insertion order.
        """
        if isinstance(clustering, str) or clustering is None:
            self.clustering[name] = clustering or "sequential"
        else:
            self.clustering[name] = type(clustering).__name__
        return self.create_collection(
            name,
            objects,
            object_size=object_size,
            indexed_attributes=indexed_attributes,
            placement=clustering,
            page_size=page_size,
            fill_factor=fill_factor,
        )

    # -- convenience measurement wrappers -----------------------------------------

    def timed_index_scan(
        self, name: str, attribute: str, **kwargs: Any
    ) -> tuple[list[Row], float, int]:
        """Run an index scan to completion; returns (rows, elapsed_ms,
        pages_read) — the §5 measurement in one call."""
        start_ms = self.clock.now_ms
        start_pages = self.clock.stats.page_reads
        rows = list(self.index_scan(name, attribute, **kwargs))
        return (
            rows,
            self.clock.elapsed_since(start_ms),
            self.clock.stats.page_reads - start_pages,
        )

    def timed_seq_scan(self, name: str) -> tuple[list[Row], float, int]:
        """Run a sequential scan to completion; returns (rows, elapsed_ms,
        pages_read)."""
        start_ms = self.clock.now_ms
        start_pages = self.clock.stats.page_reads
        rows = list(self.seq_scan(name))
        return (
            rows,
            self.clock.elapsed_since(start_ms),
            self.clock.stats.page_reads - start_pages,
        )
