"""An in-memory B+tree used as the secondary-index structure of the
simulated data sources.

Keys are any totally ordered Python values (per index, keys must be
mutually comparable); values are lists of rids, so duplicate keys are
supported.  The tree provides exact lookups and inclusive/exclusive range
scans in key order — what the object store's index scan needs to produce
the rid list whose distinct-page count Yao's formula models.

This is a real B+tree (internal nodes with separators, leaf chaining,
splits on overflow) rather than a sorted list, so index height and node
visits are meaningful quantities the sources may charge time for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import IndexError_

Rid = tuple[int, int]

#: Maximum number of keys per node before a split.
DEFAULT_ORDER = 64


@dataclass
class _Leaf:
    keys: list[Any] = field(default_factory=list)
    values: list[list[Rid]] = field(default_factory=list)
    next: "_Leaf | None" = None

    @property
    def is_leaf(self) -> bool:
        return True


@dataclass
class _Internal:
    keys: list[Any] = field(default_factory=list)  # separator keys
    children: list["_Leaf | _Internal"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return False


def _bisect_right(keys: list[Any], key: Any) -> int:
    low, high = 0, len(keys)
    while low < high:
        mid = (low + high) // 2
        if key < keys[mid]:
            high = mid
        else:
            low = mid + 1
    return low


def _bisect_left(keys: list[Any], key: Any) -> int:
    low, high = 0, len(keys)
    while low < high:
        mid = (low + high) // 2
        if keys[mid] < key:
            low = mid + 1
        else:
            high = mid
    return low


class BPlusTree:
    """B+tree index from keys to rid lists."""

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 3:
            raise IndexError_(f"B+tree order must be >= 3, got {order}")
        self.order = order
        self._root: _Leaf | _Internal = _Leaf()
        self._first_leaf: _Leaf = self._root  # for full scans
        self.key_count = 0  # distinct keys
        self.entry_count = 0  # total rids

    # -- insertion ----------------------------------------------------------------

    def insert(self, key: Any, rid: Rid) -> None:
        """Add one (key, rid) entry; duplicate keys accumulate rids."""
        if key is None:
            raise IndexError_("cannot index a None key")
        split = self._insert(self._root, key, rid)
        if split is not None:
            separator, right = split
            new_root = _Internal(keys=[separator], children=[self._root, right])
            self._root = new_root
        self.entry_count += 1

    def _insert(
        self, node: _Leaf | _Internal, key: Any, rid: Rid
    ) -> tuple[Any, _Leaf | _Internal] | None:
        if node.is_leaf:
            return self._insert_leaf(node, key, rid)  # type: ignore[arg-type]
        assert isinstance(node, _Internal)
        index = _bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, rid)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) <= self.order:
            return None
        return self._split_internal(node)

    def _insert_leaf(
        self, leaf: _Leaf, key: Any, rid: Rid
    ) -> tuple[Any, _Leaf] | None:
        index = _bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index].append(rid)
            return None
        leaf.keys.insert(index, key)
        leaf.values.insert(index, [rid])
        self.key_count += 1
        if len(leaf.keys) <= self.order:
            return None
        return self._split_leaf(leaf)

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Leaf]:
        middle = len(leaf.keys) // 2
        right = _Leaf(
            keys=leaf.keys[middle:],
            values=leaf.values[middle:],
            next=leaf.next,
        )
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Any, _Internal]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal(
            keys=node.keys[middle + 1 :],
            children=node.children[middle + 1 :],
        )
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, right

    # -- lookup ------------------------------------------------------------------------

    def _descend(self, key: Any) -> tuple[_Leaf, int]:
        """The leaf that would hold ``key``, and the node-visit count."""
        node = self._root
        visits = 1
        while not node.is_leaf:
            assert isinstance(node, _Internal)
            node = node.children[_bisect_right(node.keys, key)]
            visits += 1
        return node, visits  # type: ignore[return-value]

    def search(self, key: Any) -> list[Rid]:
        """Rids of all entries with exactly ``key`` (empty when absent)."""
        leaf, _ = self._descend(key)
        index = _bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def range_search(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Any, list[Rid]]]:
        """All (key, rids) with ``low <= key <= high`` in key order.

        Either bound may be ``None`` for an open end.
        """
        if low is None:
            leaf: _Leaf | None = self._first_leaf
            index = 0
        else:
            leaf, _ = self._descend(low)
            index = (
                _bisect_left(leaf.keys, low)
                if low_inclusive
                else _bisect_right(leaf.keys, low)
            )
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if high is not None:
                    if high_inclusive and high < key:
                        return
                    if not high_inclusive and not (key < high):
                        return
                yield key, list(leaf.values[index])
                index += 1
            leaf = leaf.next
            index = 0

    def height(self) -> int:
        """Number of levels from root to leaves (1 for a lone leaf)."""
        node = self._root
        levels = 1
        while not node.is_leaf:
            assert isinstance(node, _Internal)
            node = node.children[0]
            levels += 1
        return levels

    def visits_for(self, key: Any) -> int:
        """Node visits to reach ``key``'s leaf (for index-cost charging)."""
        _, visits = self._descend(key)
        return visits

    def keys(self) -> Iterator[Any]:
        """All distinct keys in order."""
        leaf: _Leaf | None = self._first_leaf
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next

    def __len__(self) -> int:
        return self.entry_count

    @classmethod
    def build(
        cls, entries: Iterator[tuple[Any, Rid]] | list[tuple[Any, Rid]], order: int = DEFAULT_ORDER
    ) -> "BPlusTree":
        """Bulk-construct from (key, rid) pairs."""
        tree = cls(order=order)
        for key, rid in entries:
            tree.insert(key, rid)
        return tree
