"""E12 — sharded federations: scatter-gather vs shard pruning.

Sweeps shard count × shard-key alignment over a hash-partitioned
collection.  *Alignment* is the fraction of the workload whose predicate
is an equality on the shard key — those queries prune to the owning
shard; the rest pay the full scatter.  The experiment verifies the
Snippets 2–3 cost shape end to end: both the estimated and the simulated
TotalTime drop as alignment rises, and the per-query branch count falls
from S toward 1.

Run: ``python -m repro.bench.sharding [--fast] [--out-dir DIR]`` →
``BENCH_E12.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.logical import Submit
from repro.bench.harness import format_table
from repro.mediator.catalog import PartitionScheme, Shard
from repro.mediator.mediator import Mediator
from repro.sources.relationaldb import RelationalDatabase
from repro.wrappers import RelationalWrapper

#: Rows in the logical collection (split across the shards).
ROW_COUNT = 2_000
ROW_COUNT_FAST = 400

SHARD_COUNTS = (1, 2, 4, 8)
SHARD_COUNTS_FAST = (1, 4)

ALIGNMENTS = (0.0, 0.25, 0.5, 0.75, 1.0)
ALIGNMENTS_FAST = (0.0, 0.5, 1.0)

#: Queries per cell; keys are deterministic so every cell sees the same
#: aligned lookups.
QUERIES_PER_CELL = 8


def build_sharded_federation(
    shards: int, rows: int, observability=None
) -> Mediator:
    """One wrapper ("node<i>") per shard of a hash-partitioned Orders.

    Rows are placed exactly where the scheme routes them (``oid % S``),
    so shard pruning is sound by construction.  ``observability`` passes
    through to the mediator — the ops CLI's ``record`` subcommand uses
    this builder with tracing on.
    """
    mediator = Mediator(observability=observability)
    for index in range(shards):
        db = RelationalDatabase()
        db.create_table(
            f"Orders#{index}",
            [
                {"oid": i, "supplier": i % 50, "qty": (i * 7) % 100}
                for i in range(rows)
                if i % shards == index
            ],
            row_size=32,
            indexed_columns=["oid"],
        )
        mediator.register(RelationalWrapper(f"node{index}", db))
    mediator.register_partitioned(
        PartitionScheme(
            collection="Orders",
            shard_key="oid",
            shards=tuple(
                Shard(collection=f"Orders#{i}", wrapper=f"node{i}")
                for i in range(shards)
            ),
        )
    )
    return mediator


def cell_workload(alignment: float, rows: int) -> list[str]:
    """The query mix of one cell: ``alignment`` × aligned key lookups,
    the rest shard-key-oblivious scans (full scatter)."""
    aligned = round(alignment * QUERIES_PER_CELL)
    queries = []
    for index in range(QUERIES_PER_CELL):
        if index < aligned:
            key = (index * 37 + 11) % rows
            queries.append(f"SELECT * FROM Orders WHERE oid = {key}")
        else:
            queries.append(f"SELECT * FROM Orders WHERE qty > {60 + index}")
    return queries


@dataclass
class ShardingCell:
    """One (shard count, alignment) measurement."""

    shards: int
    alignment: float
    queries: int
    mean_estimated_ms: float
    mean_simulated_ms: float
    mean_branches: float

    def to_json_dict(self) -> dict:
        return {
            "shards": self.shards,
            "alignment": self.alignment,
            "queries": self.queries,
            "mean_estimated_ms": round(self.mean_estimated_ms, 3),
            "mean_simulated_ms": round(self.mean_simulated_ms, 3),
            "mean_branches": round(self.mean_branches, 3),
        }


@dataclass
class ShardingExperiment:
    cells: list[ShardingCell]
    row_count: int
    #: For every multi-shard count, estimated AND simulated mean
    #: TotalTime strictly drop as alignment rises.
    pruning_wins: bool

    def table(self) -> str:
        return format_table(
            (
                "shards",
                "alignment",
                "est TotalTime ms",
                "sim TotalTime ms",
                "branches/query",
            ),
            [
                [
                    cell.shards,
                    cell.alignment,
                    round(cell.mean_estimated_ms, 1),
                    round(cell.mean_simulated_ms, 1),
                    round(cell.mean_branches, 2),
                ]
                for cell in self.cells
            ],
            title=(
                f"E12 — scatter-gather vs shard pruning "
                f"({self.row_count} rows; mean over "
                f"{QUERIES_PER_CELL} queries)"
            ),
        )

    def to_json_dict(self) -> dict:
        return {
            "experiment": "E12",
            "row_count": self.row_count,
            "pruning_wins": self.pruning_wins,
            "cells": [cell.to_json_dict() for cell in self.cells],
        }


def _monotone_decreasing(values: list[float]) -> bool:
    return all(later < earlier for earlier, later in zip(values, values[1:]))


def run_sharding_experiment(fast: bool = False) -> ShardingExperiment:
    rows = ROW_COUNT_FAST if fast else ROW_COUNT
    shard_counts = SHARD_COUNTS_FAST if fast else SHARD_COUNTS
    alignments = ALIGNMENTS_FAST if fast else ALIGNMENTS
    cells: list[ShardingCell] = []
    for shards in shard_counts:
        for alignment in alignments:
            mediator = build_sharded_federation(shards, rows)
            estimated: list[float] = []
            simulated: list[float] = []
            branches: list[int] = []
            for sql in cell_workload(alignment, rows):
                result = mediator.query(sql)
                estimated.append(result.estimated_ms)
                simulated.append(result.elapsed_ms)
                branches.append(
                    sum(
                        1
                        for node in result.plan.walk()
                        if isinstance(node, Submit)
                    )
                )
            count = len(estimated)
            cells.append(
                ShardingCell(
                    shards=shards,
                    alignment=alignment,
                    queries=count,
                    mean_estimated_ms=sum(estimated) / count,
                    mean_simulated_ms=sum(simulated) / count,
                    mean_branches=sum(branches) / count,
                )
            )
    pruning_wins = True
    for shards in shard_counts:
        if shards == 1:
            continue
        column = [c for c in cells if c.shards == shards]
        if not _monotone_decreasing([c.mean_estimated_ms for c in column]):
            pruning_wins = False
        if not _monotone_decreasing([c.mean_simulated_ms for c in column]):
            pruning_wins = False
    return ShardingExperiment(
        cells=cells, row_count=rows, pruning_wins=pruning_wins
    )


def main() -> None:  # pragma: no cover - CLI entry
    import sys

    experiment = run_sharding_experiment(fast="--fast" in sys.argv)
    print(experiment.table())
    print(f"\npruning beats full scatter everywhere: {experiment.pruning_wins}")
    from repro.bench.__main__ import parse_out_dir, write_json

    out_dir = parse_out_dir(sys.argv)
    write_json(out_dir, "BENCH_E12.json", experiment.to_json_dict())


if __name__ == "__main__":  # pragma: no cover
    main()
