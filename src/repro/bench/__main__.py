"""Run every experiment and print all tables: ``python -m repro.bench``.

Options:
    --fast            use reduced scales (TINY OO7, fewer repetitions)
    --out-dir DIR     also write machine-readable results (currently
                      ``BENCH_E8.json``, ``BENCH_E9.json``,
                      ``BENCH_E10.json``, ``BENCH_E11.json``,
                      ``BENCH_E12.json``, ``BENCH_E13.json``,
                      ``BENCH_E14.json``, ``BENCH_E15.json`` and
                      ``BENCH_E16.json``) into DIR
"""

from __future__ import annotations

import json
import os
import sys

from repro.bench.accuracy import run_accuracy
from repro.bench.bindjoin_bench import run_bindjoin_experiment
from repro.bench.calibration import run_calibration_experiment
from repro.bench.clustering import run_clustering
from repro.bench.fig12 import run_fig12
from repro.bench.history_bench import run_history
from repro.bench.hotpath import run_hotpath_experiment
from repro.bench.overhead import run_overhead
from repro.bench.parallel import run_parallel_experiment
from repro.bench.plan_quality import run_plan_quality
from repro.bench.realtime import run_realtime
from repro.bench.replication import HEDGE_DELAYS, run_replication_experiment
from repro.bench.resilience import PROBABILITIES, run_fault_experiment
from repro.bench.serving import run_serving_experiment
from repro.bench.sharding import run_sharding_experiment
from repro.bench.telemetry import run_telemetry_experiment
from repro.oo7 import PAPER, SMALL, TINY


def banner(title: str) -> None:
    print()
    print("#" * 72)
    print(f"# {title}")
    print("#" * 72)


def write_json(out_dir: str | None, filename: str, payload: dict) -> None:
    if out_dir is None:
        return
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {path}")


def parse_out_dir(argv: list[str]) -> str | None:
    if "--out-dir" not in argv:
        return None
    index = argv.index("--out-dir")
    if index + 1 >= len(argv):
        raise SystemExit("--out-dir requires a directory argument")
    return argv[index + 1]


def main() -> None:
    fast = "--fast" in sys.argv
    out_dir = parse_out_dir(sys.argv)
    oo7_config = SMALL if fast else PAPER

    banner("Figure 12 (§5) — index scan: experiment / calibration / Yao rule")
    fig12 = run_fig12(config=oo7_config)
    print(fig12.table())
    print()
    print(fig12.error_table())

    banner("E2 — plan quality per cost-model configuration")
    quality = run_plan_quality(config=TINY if fast else SMALL)
    print(quality.table())
    print(
        f"\nblended vs generic total speedup: "
        f"{quality.speedup_blended_vs_generic():.2f}x"
    )

    banner("E3 — estimation accuracy per configuration")
    accuracy = run_accuracy(config=TINY if fast else SMALL)
    print(accuracy.table())
    print()
    print(accuracy.detail_table())

    banner("E4 — rule-machinery overhead and ablations")
    overhead = run_overhead(
        rule_counts=(10, 100) if fast else (10, 50, 200, 1000),
        repetitions=20 if fast else 100,
    )
    print(overhead.dispatch_table())
    print()
    print(overhead.pruning_table())
    print()
    print(overhead.propagation_table())
    print()
    print(overhead.conflict_table())

    banner("E5 — historical costs (§4.3.1)")
    history = run_history(config=TINY)
    print(history.convergence_table())
    print()
    print(history.generalization_table())

    banner("E7 — bind joins (§7 ADT motivation)")
    bindjoin = run_bindjoin_experiment(
        key_counts=(10, 100) if fast else (10, 50, 200, 1000)
    )
    print(bindjoin.table())
    print(
        f"\nmax bind-join speedup: {bindjoin.max_speedup():.0f}x; "
        f"optimizer correct everywhere: {bindjoin.all_choices_correct}"
    )

    banner("E6 — clustering (§7)")
    clustering = run_clustering(count=1400 if fast else 7000)
    print(clustering.table())
    print(
        "\nmean rel err — scattered rule "
        f"{clustering.scattered_rule_error.mean_relative_error:.3f}, "
        f"clustered rule "
        f"{clustering.clustered_rule_error.mean_relative_error:.3f}, "
        f"single calibrated model on clustered "
        f"{clustering.calibration_error_on_clustered.mean_relative_error:.3f}"
    )

    banner("E8 — concurrent submit dispatch + subanswer cache")
    parallel = run_parallel_experiment()
    print(parallel.dispatch_table())
    print()
    print(parallel.cap_table())
    print()
    print(parallel.cache_table())
    write_json(out_dir, "BENCH_E8.json", parallel.to_json_dict())

    banner("E9 — telemetry overhead and payoff")
    telemetry = run_telemetry_experiment(repetitions=5 if fast else 9)
    print(telemetry.overhead_table())
    print()
    print(telemetry.trace_table())
    print(
        f"\nenabled-telemetry overhead: "
        f"{telemetry.overhead_enabled_pct:+.1f}% wall-clock; "
        f"simulated clocks identical: {telemetry.simulated_ms_identical}"
    )
    write_json(out_dir, "BENCH_E9.json", telemetry.to_json_dict())

    banner("E10 — fault matrix: answered-query rate vs fault probability")
    faults = run_fault_experiment(
        probabilities=(0.0, 0.15, 0.5) if fast else PROBABILITIES,
        rounds=2 if fast else 6,
    )
    print(faults.table())
    write_json(out_dir, "BENCH_E10.json", faults.to_json_dict())

    banner("E11 — the serving layer: multi-tenant throughput and fairness")
    serving = run_serving_experiment(fast=fast)
    print(serving.throughput_table())
    print()
    print(serving.fairness_table())
    print()
    print(serving.backpressure_table())
    write_json(out_dir, "BENCH_E11.json", serving.to_json_dict())

    banner("E13 — online recalibration: drift recovery without re-registration")
    calibration = run_calibration_experiment(fast=fast)
    print(calibration.table())
    print(f"\n{calibration.summary()}")
    write_json(out_dir, "BENCH_E13.json", calibration.to_json_dict())

    banner("E12 — sharded federations: scatter-gather vs shard pruning")
    sharding = run_sharding_experiment(fast=fast)
    print(sharding.table())
    print(
        f"\npruning beats full scatter everywhere: {sharding.pruning_wins}"
    )
    write_json(out_dir, "BENCH_E12.json", sharding.to_json_dict())

    banner("E14 — plans costed per second (optimizer hot path, wall clock)")
    hotpath = run_hotpath_experiment(fast=fast)
    print(hotpath.table())
    print(f"\n{hotpath.summary()}")
    write_json(out_dir, "BENCH_E14.json", hotpath.to_json_dict())

    banner("E15 — replicated sources: failover availability and hedged tails")
    replication = run_replication_experiment(
        rounds=20 if fast else 40,
        hedge_delays=(300.0, 1_200.0) if fast else HEDGE_DELAYS,
    )
    print(replication.table())
    write_json(out_dir, "BENCH_E15.json", replication.to_json_dict())

    banner("E16 — real-time backend: predicted cost vs measured wall time")
    realtime = run_realtime(fast=fast)
    print(realtime.table())
    write_json(out_dir, "BENCH_E16.json", realtime.to_json_dict())


if __name__ == "__main__":
    main()
