"""Benchmark/experiment harness: one module per DESIGN.md experiment.

* :mod:`repro.bench.fig12` — the paper's Figure 12 (§5);
* :mod:`repro.bench.plan_quality` — E2, plan quality per cost model;
* :mod:`repro.bench.accuracy` — E3, estimation accuracy per cost model;
* :mod:`repro.bench.overhead` — E4, rule-machinery overhead + ablations;
* :mod:`repro.bench.history_bench` — E5, §4.3.1 historical costs;
* :mod:`repro.bench.serving` — E11, the multi-tenant serving layer.

Each module is runnable (``python -m repro.bench.fig12``) and backs a
pytest-benchmark target under ``benchmarks/``.
"""

from repro.bench.accuracy import AccuracyReport, run_accuracy
from repro.bench.bindjoin_bench import BindJoinResult, run_bindjoin_experiment
from repro.bench.clustering import ClusteringResult, run_clustering
from repro.bench.federation import (
    MODELS,
    WORKLOAD,
    build_engines,
    build_mediator,
    run_federation_experiment,
)
from repro.bench.fig12 import Fig12Result, run_fig12
from repro.bench.harness import ErrorSummary, format_table
from repro.bench.history_bench import HistoryResult, run_history
from repro.bench.overhead import OverheadResult, run_overhead
from repro.bench.plan_quality import PlanQualityReport, run_plan_quality
from repro.bench.serving import ServingExperiment, run_serving_experiment

__all__ = [
    "AccuracyReport",
    "BindJoinResult",
    "run_bindjoin_experiment",
    "ClusteringResult",
    "run_clustering",
    "ErrorSummary",
    "Fig12Result",
    "HistoryResult",
    "MODELS",
    "OverheadResult",
    "PlanQualityReport",
    "ServingExperiment",
    "run_serving_experiment",
    "WORKLOAD",
    "build_engines",
    "build_mediator",
    "format_table",
    "run_accuracy",
    "run_federation_experiment",
    "run_fig12",
    "run_history",
    "run_overhead",
    "run_plan_quality",
]
