"""E16 — cost-model validation against measured wall-clock time.

Every earlier experiment validates the blended cost model against our
own simulator.  E16 closes the loop the paper's Figure 12 opened: the
Fig. 12 query shape (an index-scan selectivity sweep over the oo7
``AtomicParts`` extent) runs on a **real federation** — a SQLite
database file and a webish source with genuine injected latency —
through the :class:`~repro.rt.backend.RealTimeBackend`, and the
wrapper-exported (probe-calibrated) cost rules are regressed against
the *measured wall-clock* response times.

Two quantities are reported per candidate plan, and two in aggregate:

* **q-error** — ``max(est/meas, meas/est)`` per plan: how far the
  predicted milliseconds are from the measured ones;
* **Spearman rank correlation** of the plan ordering: does sorting
  plans by predicted cost reproduce their measured-time order?  This is
  the quantity an optimizer actually needs, and the one CI enforces
  (``--min-spearman``) — a correlation threshold survives noisy
  runners where an absolute-time threshold would not.

Measurements take the **median** over ``repeats`` runs; the subanswer
cache is disabled so every run really executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median

from repro.algebra.expressions import Comparison, attr, lit
from repro.algebra.logical import Scan, Select
from repro.bench.harness import format_table
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.oo7 import schema
from repro.rt import RealTimeBackend, SQLiteWrapper, WebLatencyWrapper

#: The Fig. 12 x axis, reused as the candidate-plan generator.
DEFAULT_SELECTIVITIES = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)
FAST_SELECTIVITIES = (0.05, 0.2, 0.45, 0.7)


@dataclass
class RealtimePoint:
    """One candidate plan: predicted cost vs measured wall time."""

    label: str
    source: str
    selectivity: float
    rows: int
    estimated_ms: float
    measured_ms: float

    @property
    def q_error(self) -> float:
        lo = max(1e-9, min(self.estimated_ms, self.measured_ms))
        hi = max(self.estimated_ms, self.measured_ms)
        return hi / lo


@dataclass
class RealtimeResult:
    """The E16 report."""

    config: str
    repeats: int
    points: list[RealtimePoint] = field(default_factory=list)

    @property
    def spearman(self) -> float:
        return spearman_rank_correlation(
            [p.estimated_ms for p in self.points],
            [p.measured_ms for p in self.points],
        )

    @property
    def median_q_error(self) -> float:
        return median(p.q_error for p in self.points) if self.points else 0.0

    def table(self) -> str:
        rows = [
            [
                p.label,
                p.source,
                p.selectivity,
                p.rows,
                round(p.estimated_ms, 3),
                round(p.measured_ms, 3),
                round(p.q_error, 2),
            ]
            for p in self.points
        ]
        return format_table(
            (
                "plan",
                "source",
                "selectivity",
                "rows",
                "estimated (ms)",
                "measured (ms)",
                "q-error",
            ),
            rows,
            title=(
                f"E16 — predicted cost vs measured wall time "
                f"(oo7 {self.config}, median of {self.repeats}; "
                f"Spearman {self.spearman:.3f}, "
                f"median q-error {self.median_q_error:.2f})"
            ),
        )

    def to_json_dict(self) -> dict:
        return {
            "experiment": "E16-realtime",
            "config": self.config,
            "repeats": self.repeats,
            "spearman": self.spearman,
            "median_q_error": self.median_q_error,
            "points": [
                {
                    "label": p.label,
                    "source": p.source,
                    "selectivity": p.selectivity,
                    "rows": p.rows,
                    "estimated_ms": p.estimated_ms,
                    "measured_ms": p.measured_ms,
                    "q_error": p.q_error,
                }
                for p in self.points
            ],
        }


def _rank(values: "list[float]") -> "list[float]":
    """Fractional ranks (ties averaged), 1-based."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(order):
        tie_end = position
        while (
            tie_end + 1 < len(order)
            and values[order[tie_end + 1]] == values[order[position]]
        ):
            tie_end += 1
        averaged = (position + tie_end) / 2.0 + 1.0
        for index in order[position : tie_end + 1]:
            ranks[index] = averaged
        position = tie_end + 1
    return ranks


def spearman_rank_correlation(
    xs: "list[float]", ys: "list[float]"
) -> float:
    """Pearson correlation of the fractional ranks (no scipy needed)."""
    if len(xs) != len(ys) or len(xs) < 2:
        return 0.0
    rank_x, rank_y = _rank(xs), _rank(ys)
    mean_x = sum(rank_x) / len(rank_x)
    mean_y = sum(rank_y) / len(rank_y)
    covariance = sum(
        (a - mean_x) * (b - mean_y) for a, b in zip(rank_x, rank_y)
    )
    spread_x = sum((a - mean_x) ** 2 for a in rank_x) ** 0.5
    spread_y = sum((b - mean_y) ** 2 for b in rank_y) ** 0.5
    if spread_x == 0.0 or spread_y == 0.0:
        return 0.0
    return covariance / (spread_x * spread_y)


def _web_reviews(rows: int = 400) -> "list[dict]":
    return [
        {"rid": i, "pid": i % 97, "score": float(i % 100)} for i in range(rows)
    ]


def run_realtime(
    fast: bool = False,
    repeats: int | None = None,
    seed: int = 7,
) -> RealtimeResult:
    """Run the E16 federation and collect the regression points."""
    config = schema.TINY if fast else schema.SMALL
    selectivities = FAST_SELECTIVITIES if fast else DEFAULT_SELECTIVITIES
    repeats = repeats if repeats is not None else (3 if fast else 5)
    latency_ms = 4.0 if fast else 10.0

    backend = RealTimeBackend()
    sqlite = SQLiteWrapper(
        "sqlite_oo7", config=config, seed=seed, extents=("AtomicParts",)
    )
    web = WebLatencyWrapper(
        "web",
        {"Reviews": _web_reviews()},
        latency_ms=latency_ms,
        per_row_ms=0.05,
    )
    mediator = Mediator(
        executor_options=ExecutorOptions(
            parallel_submits=True, backend=backend
        )
    )
    mediator.register(sqlite)
    mediator.register(web)
    estimator = mediator.estimator

    result = RealtimeResult(config=config.name, repeats=repeats)
    try:
        atomic = mediator.catalog.statistics.get("AtomicParts")
        id_stats = atomic.attribute("Id")
        low = id_stats.min_value.as_number()  # type: ignore[union-attr]
        high = id_stats.max_value.as_number()  # type: ignore[union-attr]
        for selectivity in selectivities:
            threshold = low + selectivity * (high - low)
            plan = Select(
                Scan("AtomicParts"),
                Comparison("<=", attr("Id"), lit(threshold)),
            )
            estimate = estimator.estimate(
                plan, default_source="sqlite_oo7"
            ).total_time
            sql = f"SELECT * FROM AtomicParts WHERE Id <= {threshold:.0f}"
            rows, measured = _measure(mediator, sql, repeats)
            result.points.append(
                RealtimePoint(
                    label=f"oo7<= {selectivity:.2f}",
                    source="sqlite",
                    selectivity=selectivity,
                    rows=rows,
                    estimated_ms=estimate,
                    measured_ms=measured,
                )
            )
        for selectivity in selectivities:
            threshold = selectivity * 100.0
            plan = Select(
                Scan("Reviews"),
                Comparison("<=", attr("score"), lit(threshold)),
            )
            estimate = estimator.estimate(plan, default_source="web").total_time
            sql = f"SELECT * FROM Reviews WHERE score <= {threshold:.0f}"
            rows, measured = _measure(mediator, sql, repeats)
            result.points.append(
                RealtimePoint(
                    label=f"web<= {selectivity:.2f}",
                    source="web",
                    selectivity=selectivity,
                    rows=rows,
                    estimated_ms=estimate,
                    measured_ms=measured,
                )
            )
    finally:
        sqlite.close()
        backend.close()
    return result


def _measure(
    mediator: Mediator, sql: str, repeats: int
) -> "tuple[int, float]":
    rows = 0
    samples: list[float] = []
    for _ in range(repeats):
        answer = mediator.query(sql)
        rows = len(answer.rows)
        samples.append(answer.elapsed_ms)
    return rows, median(samples)


def main(argv: "list[str] | None" = None) -> None:
    """CLI entry point: ``python -m repro.bench.realtime``."""
    import sys

    from repro.bench.__main__ import parse_out_dir, write_json

    args = list(sys.argv[1:] if argv is None else argv)
    fast = "--fast" in args
    min_spearman: float | None = None
    if "--min-spearman" in args:
        min_spearman = float(args[args.index("--min-spearman") + 1])
    result = run_realtime(fast=fast)
    print(result.table())
    write_json(parse_out_dir(args), "BENCH_E16.json", result.to_json_dict())
    if min_spearman is not None and result.spearman < min_spearman:
        print(
            f"FAIL: Spearman {result.spearman:.3f} below "
            f"threshold {min_spearman}"
        )
        raise SystemExit(1)


if __name__ == "__main__":  # pragma: no cover - CLI
    main()
