"""Experiment E7 — dependent (bind) joins for expensive sources (§7).

The paper's closing motivation: "the problem of cost evaluation is
crucial, for example to avoid processing a large number of images by
first selecting a few images from other data source."  This experiment
builds exactly that situation — an image library whose objects cost
80 ms each to produce, and a small tag catalog — and compares, as the
tag filter's selectivity varies:

* **classic plan** — ship the whole image collection to the mediator and
  hash-join (cost independent of the filter);
* **bind join** — fetch the matching tags first, then probe the image
  library with just those keys.

The crossover is the point the cost model must find: below it the bind
join wins by orders of magnitude, above it probing every key one by one
loses to the bulk scan.  The experiment reports, per selectivity, both
measured times, both estimates, and which plan the optimizer picked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.builders import scan
from repro.algebra.expressions import attr
from repro.algebra.logical import BindJoin, PlanNode
from repro.bench.harness import format_table
from repro.mediator.mediator import Mediator
from repro.sources.clock import CostProfile, SimClock
from repro.sources.storage_engine import StorageEngine
from repro.wrappers.base import StorageWrapper

#: The expensive source: 80 ms to produce one image object.
IMAGE_DEVICE = CostProfile(io_ms=20.0, cpu_ms_per_object=80.0, cpu_ms_per_eval=1.0)

IMAGE_COUNT = 2000
TAG_COUNT = 1000


def build_mediator() -> Mediator:
    """An image library + a tag catalog whose ``weight`` column lets the
    workload dial the number of outer keys from a handful to all."""
    mediator = Mediator()
    images = StorageEngine(SimClock(IMAGE_DEVICE))
    images.create_collection(
        "Images",
        [
            {"img": i, "label": f"type{i % 10:03d}", "bytes": 10_000}
            for i in range(IMAGE_COUNT)
        ],
        object_size=400,
        indexed_attributes=["img"],
        placement="scattered",
    )
    mediator.register(StorageWrapper("media", images))

    tags = StorageEngine(SimClock(CostProfile(io_ms=2.0, cpu_ms_per_object=0.2)))
    tags.create_collection(
        "Tags",
        [
            {"tagged": (i * 97) % IMAGE_COUNT, "weight": i}
            for i in range(TAG_COUNT)
        ],
        object_size=24,
        indexed_attributes=["tagged", "weight"],
    )
    mediator.register(StorageWrapper("meta", tags))

    # Calibrate both sources: without fitted coefficients the generic
    # model underprices the 80 ms/object image scan by an order of
    # magnitude and the classic/bind comparison is meaningless.
    from repro.core.calibration import calibrate_wrapper

    for name in ("media", "meta"):
        wrapper = mediator.catalog.wrapper(name)
        fitted = calibrate_wrapper(wrapper)
        mediator.coefficients.set_source(name, fitted.coefficients)
    return mediator


def classic_plan(weight_below: int) -> PlanNode:
    return (
        scan("Tags")
        .where(_weight_filter(weight_below))
        .submit_to("meta")
        .join(scan("Images").submit_to("media"), "tagged", "img")
        .build()
    )


def _weight_filter(weight_below: int):
    from repro.algebra.expressions import Comparison, lit

    return Comparison("<", attr("weight"), lit(weight_below))


def bind_plan(weight_below: int) -> PlanNode:
    outer = (
        scan("Tags").where(_weight_filter(weight_below)).submit_to("meta").build()
    )
    return BindJoin(
        outer=outer,
        outer_attribute=attr("tagged", "Tags"),
        inner_collection="Images",
        inner_attribute=attr("img", "Images"),
        wrapper="media",
    )


@dataclass
class BindJoinPoint:
    outer_keys: int
    classic_measured_ms: float
    bind_measured_ms: float
    classic_estimated_ms: float
    bind_estimated_ms: float
    optimizer_choice: str
    choice_correct: bool


@dataclass
class BindJoinResult:
    points: list[BindJoinPoint] = field(default_factory=list)

    def table(self) -> str:
        rows = [
            [
                p.outer_keys,
                p.classic_measured_ms,
                p.bind_measured_ms,
                p.classic_estimated_ms,
                p.bind_estimated_ms,
                p.optimizer_choice,
                "yes" if p.choice_correct else "NO",
            ]
            for p in self.points
        ]
        return format_table(
            (
                "outer keys",
                "classic meas",
                "bind meas",
                "classic est",
                "bind est",
                "optimizer picked",
                "correct",
            ),
            rows,
            title="E7 — bind join vs classic join (ms)",
        )

    @property
    def all_choices_correct(self) -> bool:
        return all(p.choice_correct for p in self.points)

    def max_speedup(self) -> float:
        return max(
            p.classic_measured_ms / max(1e-9, p.bind_measured_ms)
            for p in self.points
        )


def run_bindjoin_experiment(
    key_counts: tuple[int, ...] = (10, 50, 200, 1000),
) -> BindJoinResult:
    result = BindJoinResult()
    for keys in key_counts:
        mediator = build_mediator()
        classic = classic_plan(keys)
        bind = bind_plan(keys)
        classic_est = mediator.estimator.estimate(classic).total_time
        bind_est = mediator.estimator.estimate(bind).total_time
        classic_ms = mediator.executor.execute(classic).total_time_ms
        bind_ms = mediator.executor.execute(bind).total_time_ms
        sql = (
            "SELECT * FROM Tags, Images "
            f"WHERE Tags.tagged = Images.img AND Tags.weight < {keys}"
        )
        optimized = mediator.plan(sql)
        chose_bind = any(isinstance(n, BindJoin) for n in optimized.plan.walk())
        better_is_bind = bind_ms < classic_ms
        result.points.append(
            BindJoinPoint(
                outer_keys=keys,
                classic_measured_ms=classic_ms,
                bind_measured_ms=bind_ms,
                classic_estimated_ms=classic_est,
                bind_estimated_ms=bind_est,
                optimizer_choice="bind" if chose_bind else "classic",
                choice_correct=(chose_bind == better_is_bind),
            )
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    result = run_bindjoin_experiment()
    print(result.table())
    print(f"\nmax bind-join speedup: {result.max_speedup():.0f}x; "
          f"optimizer correct everywhere: {result.all_choices_correct}")


if __name__ == "__main__":  # pragma: no cover
    main()
