"""Shared experiment-reporting utilities for the benchmark suite.

Every experiment module produces typed result records; this module turns
them into the aligned text tables the ``benchmarks/`` targets print and
``EXPERIMENTS.md`` records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    Floats print with 1 decimal; everything else via ``str``.
    """
    rendered_rows = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if 0 < abs(value) < 1:
            return f"{value:.3g}"
        return f"{value:.1f}"
    return str(value)


@dataclass
class ErrorSummary:
    """Relative-error statistics of a series of (estimated, actual) pairs."""

    count: int
    mean_relative_error: float
    median_relative_error: float
    max_relative_error: float

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[float, float]]
    ) -> "ErrorSummary":
        errors = sorted(
            abs(estimated - actual) / actual
            for estimated, actual in pairs
            if actual > 0
        )
        if not errors:
            return cls(0, math.nan, math.nan, math.nan)
        middle = len(errors) // 2
        if len(errors) % 2:
            median = errors[middle]
        else:
            median = (errors[middle - 1] + errors[middle]) / 2
        return cls(
            count=len(errors),
            mean_relative_error=sum(errors) / len(errors),
            median_relative_error=median,
            max_relative_error=errors[-1],
        )

    def row(self, label: str) -> list[Any]:
        return [
            label,
            self.count,
            round(self.mean_relative_error, 3),
            round(self.median_relative_error, 3),
            round(self.max_relative_error, 3),
        ]


ERROR_HEADERS = ("model", "queries", "mean rel err", "median rel err", "max rel err")
