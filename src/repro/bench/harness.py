"""Shared experiment utilities for the benchmark suite.

Two halves:

* **reporting** — every experiment module produces typed result records;
  :func:`format_table` turns them into the aligned text tables the
  ``benchmarks/`` targets print and ``EXPERIMENTS.md`` records;
* **workload construction** — the three-branch federation and its query
  mix used by E8 (concurrent dispatch), E10 (fault tolerance), and E11
  (the serving layer), plus the multi-tenant workload builder E11's
  closed-loop driver consumes.  One shared builder keeps the experiments
  comparable: they all measure the same federation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.obs import ObservabilityOptions
from repro.sources.clock import CostProfile, SimClock
from repro.sources.storage_engine import StorageEngine
from repro.wrappers.base import StorageWrapper


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    Floats print with 1 decimal; everything else via ``str``.
    """
    rendered_rows = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if 0 < abs(value) < 1:
            return f"{value:.3g}"
        return f"{value:.1f}"
    return str(value)


@dataclass
class ErrorSummary:
    """Relative-error statistics of a series of (estimated, actual) pairs."""

    count: int
    mean_relative_error: float
    median_relative_error: float
    max_relative_error: float

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[float, float]]
    ) -> "ErrorSummary":
        errors = sorted(
            abs(estimated - actual) / actual
            for estimated, actual in pairs
            if actual > 0
        )
        if not errors:
            return cls(0, math.nan, math.nan, math.nan)
        middle = len(errors) // 2
        if len(errors) % 2:
            median = errors[middle]
        else:
            median = (errors[middle - 1] + errors[middle]) / 2
        return cls(
            count=len(errors),
            mean_relative_error=sum(errors) / len(errors),
            median_relative_error=median,
            max_relative_error=errors[-1],
        )

    def row(self, label: str) -> list[Any]:
        return [
            label,
            self.count,
            round(self.mean_relative_error, 3),
            round(self.median_relative_error, 3),
            round(self.max_relative_error, 3),
        ]


ERROR_HEADERS = ("model", "queries", "mean rel err", "median rel err", "max rel err")


# -- the shared three-branch federation (E8 / E10 / E11) ------------------------

#: Three branch offices with deliberately skewed device speeds: the slow
#: branch dominates a concurrent wave, so overlap saves the other two.
REGIONS: tuple[tuple[str, float], ...] = (
    ("east", 25.0),
    ("west", 10.0),
    ("north", 2.0),
)

#: The single-client workload: a three-wrapper union and a cross-wrapper
#: join (E8's measurement queries).
WORKLOAD: tuple[tuple[str, str], ...] = (
    (
        "three-way union",
        "SELECT oid, qty FROM OrdersEast "
        "UNION ALL SELECT oid, qty FROM OrdersWest "
        "UNION ALL SELECT oid, qty FROM OrdersNorth",
    ),
    (
        "cross-wrapper join",
        "SELECT * FROM Suppliers, OrdersWest "
        "WHERE OrdersWest.supplier = Suppliers.sid "
        "AND Suppliers.city = 'city1'",
    ),
)


def build_federation(
    options: ExecutorOptions | None = None,
    observability: "ObservabilityOptions | None" = None,
    wrap=None,
) -> Mediator:
    """A fresh three-branch federation (fresh engines: comparisons across
    execution modes must not share wrapper-side buffer state).

    ``wrap`` optionally decorates each wrapper before registration —
    the E10 fault experiment injects faults this way.
    """
    mediator = Mediator(executor_options=options, observability=observability)
    for index, (region, io_ms) in enumerate(REGIONS):
        engine = StorageEngine(
            SimClock(CostProfile(io_ms=io_ms, cpu_ms_per_object=0.1 * (index + 1)))
        )
        engine.create_collection(
            f"Orders{region.capitalize()}",
            [
                {"oid": i, "supplier": i % 40, "qty": (i * (7 + index)) % 100}
                for i in range(600 + 200 * index)
            ],
            object_size=32,
            indexed_attributes=["oid"],
        )
        if region == "east":
            engine.create_collection(
                "Suppliers",
                [
                    {"sid": i, "city": f"city{i % 5}"}
                    for i in range(40)
                ],
                object_size=24,
                indexed_attributes=["sid"],
            )
        wrapper = StorageWrapper(region, engine)
        mediator.register(wrap(wrapper) if wrap is not None else wrapper)
    return mediator


# -- multi-tenant workloads (E11) -----------------------------------------------

#: Per-region single-wrapper queries — cheap, frequent "dashboard" reads
#: that a serving layer should interleave under the expensive federated
#: queries of WORKLOAD.
REGION_QUERIES: tuple[tuple[str, str], ...] = (
    ("east scan", "SELECT oid, qty FROM OrdersEast WHERE qty > 60"),
    ("west scan", "SELECT oid, qty FROM OrdersWest WHERE qty > 60"),
    ("north scan", "SELECT oid, qty FROM OrdersNorth WHERE qty > 60"),
)


@dataclass
class TenantWorkload:
    """One tenant's closed-loop client population for E11."""

    tenant: str
    #: Fair-share weight (maps to ``TenantPolicy.quota``).
    quota: float = 1.0
    #: Concurrent closed-loop clients (sessions) of this tenant.
    clients: int = 1
    #: Queries each client submits before stopping.
    queries_per_client: int = 4
    #: The (label, sql) mix; clients cycle through it round-robin, each
    #: client starting at its own offset so the mix stays interleaved.
    queries: "list[tuple[str, str]]" = field(default_factory=list)

    def query_at(self, client: int, index: int) -> "tuple[str, str]":
        return self.queries[(client + index) % len(self.queries)]

    @property
    def total_queries(self) -> int:
        return self.clients * self.queries_per_client


def build_tenant_workloads(
    fast: bool = False,
    quotas: "tuple[float, float] | None" = None,
) -> "list[TenantWorkload]":
    """The standard two-tenant E11 population.

    ``analytics`` runs the expensive federated WORKLOAD queries;
    ``dashboards`` hammers the cheap single-region scans.  ``quotas``
    overrides the (analytics, dashboards) fair-share weights.
    """
    analytics_quota, dashboards_quota = quotas if quotas is not None else (1.0, 1.0)
    per_client = 2 if fast else 4
    return [
        TenantWorkload(
            tenant="analytics",
            quota=analytics_quota,
            clients=1 if fast else 2,
            queries_per_client=per_client,
            queries=list(WORKLOAD),
        ),
        TenantWorkload(
            tenant="dashboards",
            quota=dashboards_quota,
            clients=2 if fast else 3,
            queries_per_client=per_client,
            queries=list(REGION_QUERIES),
        ),
    ]
