"""Experiment E2 — plan quality under the three cost-model configurations.

The paper's motivating claim (§1, "we provide evidence of the benefits of
this new approach"): better cost information lets the mediator pick
better plans.  This experiment runs the federation workload under the
``generic`` / ``calibrated`` / ``blended`` configurations and reports the
*actual* execution time of each chosen plan — the end-to-end quantity the
user experiences.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.federation import (
    MODELS,
    FederationExperiment,
    run_federation_experiment,
)
from repro.bench.harness import format_table


@dataclass
class PlanQualityReport:
    experiment: FederationExperiment

    def table(self) -> str:
        labels = [r.label for r in self.experiment.for_model(MODELS[0])]
        rows = []
        for label in labels:
            row: list[object] = [label]
            for model in MODELS:
                row.append(self.experiment.record_for(model, label).actual_ms)
            rows.append(row)
        total_row: list[object] = ["TOTAL"]
        for model in MODELS:
            total_row.append(self.experiment.total_actual(model))
        rows.append(total_row)
        return format_table(
            ("query", *(f"{m} (ms)" for m in MODELS)),
            rows,
            title="E2 — actual execution time of the chosen plan",
        )

    def speedup_blended_vs_generic(self) -> float:
        return self.experiment.total_actual("generic") / max(
            1e-9, self.experiment.total_actual("blended")
        )


def run_plan_quality(**kwargs) -> PlanQualityReport:
    return PlanQualityReport(run_federation_experiment(**kwargs))


def main() -> None:  # pragma: no cover - CLI entry
    report = run_plan_quality()
    print(report.table())
    print(
        f"\nblended vs generic total speedup: "
        f"{report.speedup_blended_vs_generic():.2f}x"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
