"""E14 — plans costed per second: the optimizer hot path on the wall clock.

Every other experiment measures *simulated* milliseconds — what the cost
model predicts.  E14 measures what producing those predictions costs in
**real** time: the E8/E9 federation workload is parsed once, then
``Mediator.plan`` runs in a timed loop with the wall-clock hot-path
profiler (:mod:`repro.obs.hotpath`) on, yielding

* **plans / second** — the headline optimizer-throughput figure, the
  baseline ROADMAP item 5 ("perf optimisation of the estimator hot
  path") optimizes against;
* **candidates / second** and **estimates / second** — where inside one
  ``plan`` call the time goes (enumeration vs cost evaluation);
* the **phase breakdown** — cumulative ``optimize`` ⊃ ``candidate`` ⊃
  ``estimate`` wall seconds (phases nest, so the outer ones include the
  inner ones by design);
* the **profiler overhead** — the same loop against a default
  (observability-off) mediator, so the cost of measuring is itself
  measured.

Wall-clock numbers vary across machines and runs — the JSON records the
machine-independent invariants (positive throughput, phase nesting) and
the figures themselves for trend tracking in CI artifacts.

Run: ``python -m repro.bench.hotpath [--fast] [--out-dir DIR]`` →
``BENCH_E14.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.harness import WORKLOAD, build_federation, format_table
from repro.obs import ObservabilityOptions

#: Timed repetitions of the whole parsed workload.
ITERATIONS = 60
ITERATIONS_FAST = 8
#: Untimed warmup repetitions (imports, first-touch caches).
WARMUP = 3

#: Hot-path-only observability: the profiler measures the planning wall
#: clock without paying for span trees, metrics folding or drift joins.
HOTPATH_ONLY = ObservabilityOptions(
    enabled=True,
    trace=False,
    trace_compose=False,
    metrics=False,
    drift=False,
    profile=False,
    hotpath=True,
)


@dataclass
class HotpathExperiment:
    """All E14 measurements."""

    iterations: int = 0
    plans: int = 0
    candidates: int = 0
    wall_s: float = 0.0
    baseline_wall_s: float = 0.0
    #: phase -> {calls, wall_s, mean_us} from the hot-path profiler.
    phases: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def plans_per_second(self) -> float:
        return self.plans / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def candidates_per_second(self) -> float:
        return self.candidates / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def baseline_plans_per_second(self) -> float:
        if self.baseline_wall_s <= 0:
            return 0.0
        return self.plans / self.baseline_wall_s

    @property
    def profiler_overhead_pct(self) -> float:
        """Wall-clock cost of measuring, percent of the unprofiled loop."""
        if self.baseline_wall_s <= 0:
            return 0.0
        return (self.wall_s / self.baseline_wall_s - 1.0) * 100.0

    @property
    def phases_nested(self) -> bool:
        """The structural invariant: optimize ⊇ candidate ⊇ estimate."""
        optimize = self.phases.get("optimize", {}).get("wall_s", 0.0)
        candidate = self.phases.get("candidate", {}).get("wall_s", 0.0)
        estimate = self.phases.get("estimate", {}).get("wall_s", 0.0)
        return optimize >= candidate >= estimate > 0.0

    def table(self) -> str:
        rows = [
            [
                name,
                int(data["calls"]),
                round(data["wall_s"] * 1000.0, 1),
                round(data["mean_us"], 1),
            ]
            for name, data in sorted(self.phases.items())
        ]
        return format_table(
            ("phase", "calls", "wall ms", "mean us/call"),
            rows,
            title=(
                f"E14 — planning hot path ({self.plans} plans over "
                f"{self.iterations} workload iterations)"
            ),
        )

    def summary(self) -> str:
        return (
            f"plans/s: {self.plans_per_second:.0f} "
            f"(unprofiled baseline {self.baseline_plans_per_second:.0f}, "
            f"profiler overhead {self.profiler_overhead_pct:+.1f}%); "
            f"candidates/s: {self.candidates_per_second:.0f}; "
            f"phases nested: {self.phases_nested}"
        )

    def to_json_dict(self) -> dict:
        """Machine-readable form (``BENCH_E14.json``)."""
        return {
            "experiment": "E14",
            "iterations": self.iterations,
            "plans": self.plans,
            "candidates": self.candidates,
            "wall_s": round(self.wall_s, 6),
            "baseline_wall_s": round(self.baseline_wall_s, 6),
            "plans_per_second": round(self.plans_per_second, 1),
            "baseline_plans_per_second": round(
                self.baseline_plans_per_second, 1
            ),
            "candidates_per_second": round(self.candidates_per_second, 1),
            "profiler_overhead_pct": round(self.profiler_overhead_pct, 1),
            "phases_nested": self.phases_nested,
            "phases": {
                name: {
                    "calls": int(data["calls"]),
                    "wall_s": round(data["wall_s"], 6),
                    "mean_us": round(data["mean_us"], 2),
                }
                for name, data in self.phases.items()
            },
        }


def _plan_loop(mediator, specs, iterations: int) -> tuple[float, int]:
    """Time ``iterations`` passes of ``plan`` over the parsed specs;
    returns (wall seconds, candidates considered)."""
    candidates = 0
    start = time.perf_counter()
    for _ in range(iterations):
        for spec in specs:
            candidates += mediator.plan(spec).stats.candidates_considered
    return time.perf_counter() - start, candidates


def run_hotpath_experiment(fast: bool = False) -> HotpathExperiment:
    iterations = ITERATIONS_FAST if fast else ITERATIONS
    experiment = HotpathExperiment(iterations=iterations)

    profiled = build_federation(observability=HOTPATH_ONLY)
    specs = [profiled.parse(sql) for _label, sql in WORKLOAD]
    _plan_loop(profiled, specs, WARMUP)
    assert profiled.telemetry is not None
    hotpath = profiled.telemetry.hotpath
    assert hotpath is not None
    hotpath.reset()  # drop parse + warmup; time only the measured loop
    experiment.wall_s, experiment.candidates = _plan_loop(
        profiled, specs, iterations
    )
    experiment.plans = iterations * len(specs)
    experiment.phases = hotpath.snapshot()

    baseline = build_federation()  # observability off entirely
    baseline_specs = [baseline.parse(sql) for _label, sql in WORKLOAD]
    _plan_loop(baseline, baseline_specs, WARMUP)
    experiment.baseline_wall_s, _ = _plan_loop(
        baseline, baseline_specs, iterations
    )
    return experiment


def main() -> None:  # pragma: no cover - CLI entry
    import sys

    experiment = run_hotpath_experiment(fast="--fast" in sys.argv)
    print(experiment.table())
    print()
    print(experiment.summary())
    from repro.bench.__main__ import parse_out_dir, write_json

    out_dir = parse_out_dir(sys.argv)
    write_json(out_dir, "BENCH_E14.json", experiment.to_json_dict())


if __name__ == "__main__":  # pragma: no cover
    main()
