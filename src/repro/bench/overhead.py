"""Experiment E4 — optimizer-side overhead of the rule machinery.

§3.3.2 warns that "the proliferation of query-specific cost rules ...
tends to slow down the cost estimate process.  In other words the cost
rules overriding mechanism should not induce significant workload on the
mediator site.  That is why we do not use the standard overriding
mechanism ... but implement our own efficient one based on kind of
virtual tables."  This experiment quantifies that, plus the §4.2/§4.3.2
optimizations:

* **dispatch index ablation** — per-estimate wall time as the number of
  registered predicate-scope rules grows, with the (source, operator)
  dispatch index on vs. a linear scan of all rules;
* **pruning ablation (§4.3.2)** — optimizer work (candidates, formula
  evaluations) with the branch-and-bound bound on vs. off;
* **required-variable propagation ablation (§4.2 Step 1)** — variables
  computed per estimate with demand-driven evaluation vs. the full
  traversal;
* **conflict-policy ablation** — formulas evaluated under lowest-value
  vs. first-match resolution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algebra.builders import scan
from repro.bench.harness import format_table
from repro.core.estimator import (
    ConflictPolicy,
    CostEstimator,
    EstimatorOptions,
)
from repro.core.generic import CoefficientSet, standard_repository
from repro.core.rules import rule, select_eq_pattern
from repro.core.statistics import AttributeStats, CollectionStats, StatisticsCatalog

#: Rule-set sizes for the dispatch-index scaling series.
DEFAULT_RULE_COUNTS = (10, 50, 200, 1000)


def _catalog() -> StatisticsCatalog:
    catalog = StatisticsCatalog()
    catalog.put(
        CollectionStats.from_extent(
            "Parts",
            10000,
            56,
            attributes=[
                AttributeStats(
                    "Id", indexed=True, count_distinct=10000, min_value=0,
                    max_value=9999,
                )
            ],
        )
    )
    return catalog


def build_estimator(
    rule_count: int,
    use_dispatch_index: bool = True,
    options: EstimatorOptions | None = None,
) -> CostEstimator:
    """An estimator whose repository holds ``rule_count`` predicate-scope
    rules for one source (each pinned to a different constant — the
    query-specific proliferation §3.3.2 describes)."""
    repository = standard_repository(use_dispatch_index=use_dispatch_index)
    for k in range(rule_count):
        repository.add_wrapper_rule(
            "src",
            rule(
                select_eq_pattern("Parts", "Id", k),
                [f"TotalTime = {100 + k}"],
                name=f"pinned-{k}",
            ),
        )
    return CostEstimator(
        repository, _catalog(), options=options, coefficients=CoefficientSet()
    )


def time_estimates(
    estimator: CostEstimator, constant: int, repetitions: int = 200
) -> float:
    """Mean wall-clock microseconds per estimate of ``select(Parts,
    Id = constant)`` submitted to the rule-heavy source."""
    plan = scan("Parts").where_eq("Id", constant).build()
    start = time.perf_counter()
    for _ in range(repetitions):
        estimator.estimate(plan, default_source="src")
    elapsed = time.perf_counter() - start
    return elapsed / repetitions * 1e6


@dataclass
class OverheadResult:
    """All E4 measurements."""

    dispatch_rows: list[tuple[int, float, float]] = field(default_factory=list)
    pruning_rows: list[tuple[str, int, int, int]] = field(default_factory=list)
    propagation_rows: list[tuple[str, int, int]] = field(default_factory=list)
    conflict_rows: list[tuple[str, int]] = field(default_factory=list)
    cache_rows: list[tuple[str, int]] = field(default_factory=list)

    def dispatch_table(self) -> str:
        return format_table(
            ("rules", "indexed (µs/est)", "linear scan (µs/est)"),
            self.dispatch_rows,
            title="E4a — rule dispatch: virtual-table index vs linear scan",
        )

    def pruning_table(self) -> str:
        return format_table(
            ("pruning", "candidates", "pruned", "formulas evaluated"),
            self.pruning_rows,
            title="E4b — §4.3.2 branch-and-bound pruning",
        )

    def propagation_table(self) -> str:
        return format_table(
            ("propagation", "variables computed", "formulas evaluated"),
            self.propagation_rows,
            title="E4c — §4.2 required-variable propagation",
        )

    def conflict_table(self) -> str:
        return format_table(
            ("policy", "formulas evaluated"),
            self.conflict_rows,
            title="E4d — conflict policy",
        )

    def cache_table(self) -> str:
        return format_table(
            ("subplan cache", "formulas evaluated per optimize()"),
            self.cache_rows,
            title="E4e — cross-candidate subplan cache",
        )


def run_dispatch_scaling(
    rule_counts: tuple[int, ...] = DEFAULT_RULE_COUNTS,
    repetitions: int = 100,
) -> list[tuple[int, float, float]]:
    rows = []
    for count in rule_counts:
        indexed = build_estimator(count, use_dispatch_index=True)
        linear = build_estimator(count, use_dispatch_index=False)
        rows.append(
            (
                count,
                time_estimates(indexed, count - 1, repetitions),
                time_estimates(linear, count - 1, repetitions),
            )
        )
    return rows


def run_pruning_ablation() -> list[tuple[str, int, int, int]]:
    """Optimize the federation three-way join with pruning on/off."""
    from repro.bench.federation import build_engines, build_mediator
    from repro.mediator.optimizer import OptimizerOptions

    sql = (
        "SELECT * FROM Orders, Suppliers, Tickets "
        "WHERE Orders.supplier = Suppliers.sid "
        "AND Tickets.supplier = Suppliers.sid AND Orders.qty < 50"
    )
    rows = []
    for use_pruning in (True, False):
        engines = build_engines()
        mediator = build_mediator("blended", engines)
        mediator.optimizer.options = OptimizerOptions(use_pruning=use_pruning)
        optimized = mediator.plan(sql)
        rows.append(
            (
                "on" if use_pruning else "off",
                optimized.stats.candidates_considered,
                optimized.stats.candidates_pruned,
                optimized.stats.formulas_evaluated,
            )
        )
    return rows


def run_propagation_ablation() -> list[tuple[str, int, int]]:
    rows = []
    for propagate in (True, False):
        estimator = build_estimator(
            0, options=EstimatorOptions(propagate_required=propagate)
        )
        plan = (
            scan("Parts").where_eq("Id", 5).keep("Id").submit_to("src").build()
        )
        estimator.estimate(plan)
        counters = estimator.last_counters
        rows.append(
            (
                "on" if propagate else "off",
                counters.variables_computed,
                counters.formulas_evaluated,
            )
        )
    return rows


def run_cache_ablation() -> list[tuple[str, int]]:
    """Optimizer work with the cross-candidate subplan cache on/off."""
    from repro.bench.federation import build_engines, build_mediator
    from repro.core.estimator import EstimatorOptions

    sql = (
        "SELECT * FROM Orders, Suppliers, Tickets "
        "WHERE Orders.supplier = Suppliers.sid "
        "AND Tickets.supplier = Suppliers.sid AND Orders.qty < 50"
    )
    rows = []
    for cache in (True, False):
        engines = build_engines()
        mediator = build_mediator("blended", engines)
        mediator.estimator.options = EstimatorOptions(cache_subplans=cache)
        mediator.estimator.subplan_cache = {} if cache else None
        optimized = mediator.plan(sql)
        rows.append(("on" if cache else "off", optimized.stats.formulas_evaluated))
    return rows


def run_conflict_ablation() -> list[tuple[str, int]]:
    rows = []
    for policy in (ConflictPolicy.LOWEST, ConflictPolicy.FIRST):
        estimator = build_estimator(
            0, options=EstimatorOptions(conflict_policy=policy)
        )
        plan = scan("Parts").where_eq("Id", 5).build()
        estimator.estimate(plan, default_source="src")
        rows.append((policy.value, estimator.last_counters.formulas_evaluated))
    return rows


def run_overhead(
    rule_counts: tuple[int, ...] = DEFAULT_RULE_COUNTS,
    repetitions: int = 100,
) -> OverheadResult:
    return OverheadResult(
        dispatch_rows=run_dispatch_scaling(rule_counts, repetitions),
        pruning_rows=run_pruning_ablation(),
        propagation_rows=run_propagation_ablation(),
        conflict_rows=run_conflict_ablation(),
        cache_rows=run_cache_ablation(),
    )


def main() -> None:  # pragma: no cover - CLI entry
    result = run_overhead()
    print(result.dispatch_table())
    print()
    print(result.pruning_table())
    print()
    print(result.propagation_table())
    print()
    print(result.conflict_table())
    print()
    print(result.cache_table())


if __name__ == "__main__":  # pragma: no cover
    main()
