"""Experiment E13 — online recalibration: drift recovery without
re-registration.

The scenario Odyssey calls "stale statistics" and the paper's §4.3
anticipates with historical *parameter adjustment*: one source's backend
changes behaviour mid-run.  Here the E8 three-branch federation runs a
west-heavy workload through the serving layer.  The generic cost model
(these wrappers export statistics only) over-estimates the scans' true
cost by roughly an order of magnitude — a *static* bias the calibrated
arm absorbs during the baseline phase.  Then the ``west`` backend is
upgraded mid-run: a :class:`~repro.wrappers.faults.FaultInjector`
profile swap makes it ×``SHIFT_SPEEDUP`` faster, with **no
re-registration** — the exported cost rules still describe the old,
slow source, compounding the static bias into a ~70× misprediction.

Two arms run the identical deterministic schedule:

* **calibrated** — the service's :class:`~repro.service.calibration.
  CalibrationManager` fits the drift window every ``cadence`` queries
  and installs guardrailed coefficient overlays; the per-query q-error
  (estimated vs. measured TotalTime) first converges during baseline,
  spikes at the shift, then recovers toward 1 as the smoothed,
  step-bounded multiplier walks down to the new truth;
* **control** — calibration off; every estimate stays wrong by the
  static bias times the shift factor.

The headline acceptance number is the *recovered-tail* ratio: the
median q-error of the calibrated arm over the last ``tail`` post-shift
queries must be ≤ 0.5× the control arm's.  The guardrails make the
recovery gradual by design (max_step bounds each overlay), which the
per-phase tables show as a falling "adapting" median.

Everything is deterministic: simulated clocks, deterministic fault
profiles (``latency_probability=1.0``), sequential service scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import build_federation, format_table
from repro.mediator.calibration import CalibrationPolicy
from repro.obs.accuracy import q_error
from repro.service.calibration import CalibrationOptions
from repro.service.service import FederationService, ServiceOptions
from repro.wrappers.faults import FaultInjector, FaultProfile

#: The wrapper whose backend shifts mid-run.
SHIFT_WRAPPER = "west"
#: Speedup of the upgraded backend at the shift point (response times
#: shrink to ``1 / SHIFT_SPEEDUP`` of the registered behaviour).
SHIFT_SPEEDUP = 8.0

#: Bench-arm guardrails: the clamp floor is widened because the fitter
#: must correct a static ~9x over-estimate *times* the ×8 speedup —
#: a true multiplier around 0.014.  Everything else is stock.
BENCH_POLICY = dict(min_samples=3, clamp_min=0.005, clamp_max=10.0)

#: West-heavy query mix: the overall q-error must reflect the shifted
#: source, not be diluted by healthy-wrapper queries (which ride along
#: as a no-false-calibration check).
E13_QUERIES: tuple[tuple[str, str], ...] = (
    ("west wide", "SELECT oid, qty FROM OrdersWest WHERE qty > 30"),
    ("west scan", "SELECT oid, qty FROM OrdersWest WHERE qty > 60"),
    ("west narrow", "SELECT oid, qty FROM OrdersWest WHERE qty > 85"),
    ("east scan", "SELECT oid, qty FROM OrdersEast WHERE qty > 60"),
)


def _median(values: list[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


@dataclass
class PhaseStats:
    """q-error summary of one phase of one arm."""

    phase: str
    queries: int
    median_q: float
    mean_q: float
    max_q: float

    @classmethod
    def from_qs(cls, phase: str, qs: list[float]) -> "PhaseStats":
        if not qs:
            return cls(phase, 0, 0.0, 0.0, 0.0)
        return cls(
            phase=phase,
            queries=len(qs),
            median_q=_median(qs),
            mean_q=sum(qs) / len(qs),
            max_q=max(qs),
        )


@dataclass
class ArmResult:
    """One arm's full run: per-query trail plus phase summaries."""

    arm: str
    phases: list[PhaseStats] = field(default_factory=list)
    #: (phase, label, estimated_ms, actual_ms, q) per query, in order.
    trail: list[tuple[str, str, float, float, float]] = field(
        default_factory=list
    )
    fits: int = 0
    overlays: int = 0
    active_version: int = 0
    #: Active TotalTime multiplier for the shifted wrapper at the end.
    final_multiplier: float = 1.0

    def phase(self, name: str) -> PhaseStats:
        for stats in self.phases:
            if stats.phase == name:
                return stats
        raise KeyError(name)


@dataclass
class CalibrationBenchResult:
    """E13 outcome: both arms plus the acceptance ratio."""

    calibrated: ArmResult
    control: ArmResult
    shift_speedup: float
    cadence: int
    baseline_queries: int
    shifted_queries: int
    tail_queries: int

    @property
    def recovered_ratio(self) -> float:
        """Calibrated tail median q over control tail median q."""
        control = self.control.phase("recovered").median_q
        if control <= 0.0:
            return float("inf")
        return self.calibrated.phase("recovered").median_q / control

    @property
    def passed(self) -> bool:
        """The ISSUE acceptance bar: calibrated ≤ 0.5× control."""
        return self.recovered_ratio <= 0.5

    def table(self) -> str:
        rows = []
        for arm in (self.control, self.calibrated):
            for stats in arm.phases:
                rows.append(
                    [
                        arm.arm,
                        stats.phase,
                        stats.queries,
                        round(stats.median_q, 2),
                        round(stats.mean_q, 2),
                        round(stats.max_q, 2),
                    ]
                )
        return format_table(
            ("arm", "phase", "queries", "median q", "mean q", "max q"),
            rows,
            title=(
                f"E13 — {SHIFT_WRAPPER} backend x{self.shift_speedup:g} "
                "faster mid-run, recovery without re-registration"
            ),
        )

    def summary(self) -> str:
        return (
            f"recovered-tail median q: calibrated "
            f"{self.calibrated.phase('recovered').median_q:.2f} vs control "
            f"{self.control.phase('recovered').median_q:.2f} "
            f"(ratio {self.recovered_ratio:.3f}, bar 0.5 -> "
            f"{'PASS' if self.passed else 'FAIL'}); "
            f"{self.calibrated.overlays} overlay(s) applied, final "
            f"{SHIFT_WRAPPER} TotalTime multiplier "
            f"{self.calibrated.final_multiplier:.2f}"
        )

    def to_json_dict(self) -> dict:
        return {
            "experiment": "E13",
            "shift_wrapper": SHIFT_WRAPPER,
            "shift_speedup": self.shift_speedup,
            "cadence_queries": self.cadence,
            "baseline_queries": self.baseline_queries,
            "shifted_queries": self.shifted_queries,
            "tail_queries": self.tail_queries,
            "recovered_ratio": self.recovered_ratio,
            "passed": self.passed,
            "arms": {
                arm.arm: {
                    "fits": arm.fits,
                    "overlays": arm.overlays,
                    "active_version": arm.active_version,
                    "final_multiplier": arm.final_multiplier,
                    "phases": [
                        {
                            "phase": s.phase,
                            "queries": s.queries,
                            "median_q": s.median_q,
                            "mean_q": s.mean_q,
                            "max_q": s.max_q,
                        }
                        for s in arm.phases
                    ],
                    "trail": [
                        {
                            "phase": phase,
                            "label": label,
                            "estimated_ms": estimated,
                            "actual_ms": actual,
                            "q_error": q,
                        }
                        for phase, label, estimated, actual, q in arm.trail
                    ],
                }
                for arm in (self.control, self.calibrated)
            },
        }


def _run_arm(
    arm: str,
    calibrate: bool,
    cadence: int,
    baseline_queries: int,
    shifted_queries: int,
    tail_queries: int,
) -> ArmResult:
    injectors: dict[str, FaultInjector] = {}

    def wrap(wrapper):
        injector = FaultInjector(wrapper, FaultProfile())
        injectors[wrapper.name] = injector
        return injector

    mediator = build_federation(wrap=wrap)
    calibration = (
        CalibrationOptions(
            cadence_queries=cadence,
            policy=CalibrationPolicy(**BENCH_POLICY),
        )
        if calibrate
        else None
    )
    service = FederationService(
        mediator, ServiceOptions(max_concurrent_queries=1, calibration=calibration)
    )
    session = service.open_session("bench")
    result = ArmResult(arm=arm)

    def run_phase(phase: str, count: int, offset: int) -> None:
        for index in range(count):
            label, sql = E13_QUERIES[(offset + index) % len(E13_QUERIES)]
            answer = service.query(session, sql)
            q = q_error(answer.estimated_ms, answer.elapsed_ms)
            result.trail.append(
                (phase, label, answer.estimated_ms, answer.elapsed_ms, q)
            )

    run_phase("baseline", baseline_queries, 0)
    # The mid-run shift: the west backend is upgraded and answers ×k
    # faster.  Nothing is re-registered — the exported cost rules still
    # describe the old source; only measurements can reveal the change.
    injectors[SHIFT_WRAPPER].set_profile(
        FaultProfile(
            latency_multiplier=1.0 / SHIFT_SPEEDUP, latency_probability=1.0
        )
    )
    adapting = shifted_queries - tail_queries
    run_phase("adapting", adapting, baseline_queries)
    run_phase("recovered", tail_queries, baseline_queries + adapting)

    for phase in ("baseline", "adapting", "recovered"):
        result.phases.append(
            PhaseStats.from_qs(
                phase, [q for p, _, _, _, q in result.trail if p == phase]
            )
        )
    if service.calibration is not None:
        result.fits = service.calibration.fits_attempted
        result.overlays = service.calibration.overlays_applied
    state = mediator.catalog.calibration
    result.active_version = state.active_version
    result.final_multiplier = state.multiplier_for(
        SHIFT_WRAPPER, None, "TotalTime"
    )
    return result


def run_calibration_experiment(fast: bool = False) -> CalibrationBenchResult:
    """Run both arms over the identical deterministic schedule.

    The baseline is long enough (~7 fit windows) for the calibrated arm
    to absorb the generic model's static bias before the shift lands;
    the shifted phase leaves ~8 further windows to track the upgrade.
    """
    cadence = 6 if fast else 8
    baseline_queries = 7 * cadence
    shifted_queries = (8 if fast else 10) * cadence
    tail_queries = 2 * cadence
    kwargs = dict(
        cadence=cadence,
        baseline_queries=baseline_queries,
        shifted_queries=shifted_queries,
        tail_queries=tail_queries,
    )
    control = _run_arm("control", calibrate=False, **kwargs)
    calibrated = _run_arm("calibrated", calibrate=True, **kwargs)
    return CalibrationBenchResult(
        calibrated=calibrated,
        control=control,
        shift_speedup=SHIFT_SPEEDUP,
        cadence=cadence,
        baseline_queries=baseline_queries,
        shifted_queries=shifted_queries,
        tail_queries=tail_queries,
    )


def main() -> None:  # pragma: no cover - CLI entry
    import sys

    experiment = run_calibration_experiment(fast="--fast" in sys.argv)
    print(experiment.table())
    print(f"\n{experiment.summary()}")
    from repro.bench.__main__ import parse_out_dir, write_json

    out_dir = parse_out_dir(sys.argv)
    write_json(out_dir, "BENCH_E13.json", experiment.to_json_dict())


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = [
    "ArmResult",
    "CalibrationBenchResult",
    "E13_QUERIES",
    "PhaseStats",
    "SHIFT_SPEEDUP",
    "SHIFT_WRAPPER",
    "run_calibration_experiment",
]
