"""Figure 12: "Improvement of ObjectStore calibration" (§5).

The paper's validation experiment: an index scan over the OO7
``AtomicParts`` extent (70 000 objects × 56 bytes, 1000 pages, 96 % fill
of 4096-byte pages, uniform ``Id``), response time against selectivity in
[0, 0.7], three series:

* **Experiment** — measured response time (here: the simulated object
  store's clock, charging IO = 25 ms/page and Output = 9 ms/object —
  the paper's 0.025 s / 0.009 s);
* **Calibration** — the [GST96]-style calibrated estimate: a linear
  model fitted on low-selectivity probes
  (:mod:`repro.core.calibration`), which overshoots as the page accesses
  saturate;
* **Yao formula** — the wrapper-exported Figure 13 rule, evaluated
  through the *actual* blended-cost-model pipeline (CDL compilation,
  registration, rule matching, formula evaluation).

The paper's qualitative claims, checked by the benchmark assertions:
the measured curve is concave; the Yao estimate tracks it closely; the
calibrated line diverges above it at high selectivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expressions import Comparison, attr, lit
from repro.algebra.logical import Scan, Select
from repro.bench.harness import ErrorSummary, format_table
from repro.core.calibration import CalibrationResult, calibrate_wrapper
from repro.core.estimator import CostEstimator
from repro.core.generic import CoefficientSet, standard_repository
from repro.mediator.registration import register_wrapper
from repro.mediator.catalog import MediatorCatalog
from repro.oo7 import PAPER, OO7Config, load_database
from repro.wrappers.objectstore import ObjectStoreWrapper

#: The paper's x axis: selectivity 0 → 0.7.
DEFAULT_SELECTIVITIES = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)


@dataclass
class Fig12Point:
    """One x-position of Figure 12."""

    selectivity: float
    selected_objects: int
    pages_fetched: int
    measured_ms: float
    calibration_ms: float
    yao_rule_ms: float


@dataclass
class Fig12Result:
    """The full figure: configuration, calibration fit, and the series."""

    config: OO7Config
    count_object: int
    page_count: int
    calibration: CalibrationResult
    points: list[Fig12Point] = field(default_factory=list)

    def table(self) -> str:
        rows = [
            [
                p.selectivity,
                p.selected_objects,
                p.pages_fetched,
                p.measured_ms / 1000.0,
                p.calibration_ms / 1000.0,
                p.yao_rule_ms / 1000.0,
            ]
            for p in self.points
        ]
        return format_table(
            (
                "selectivity",
                "objects",
                "pages",
                "Experiment (s)",
                "Calibration (s)",
                "Yao formula (s)",
            ),
            rows,
            title=(
                f"Figure 12 — index scan on AtomicParts "
                f"({self.count_object} objects, {self.page_count} pages)"
            ),
        )

    def error_table(self) -> str:
        yao = ErrorSummary.from_pairs(
            (p.yao_rule_ms, p.measured_ms) for p in self.points
        )
        calibration = ErrorSummary.from_pairs(
            (p.calibration_ms, p.measured_ms) for p in self.points
        )
        from repro.bench.harness import ERROR_HEADERS

        return format_table(
            ERROR_HEADERS,
            [yao.row("yao rule"), calibration.row("calibration")],
            title="Figure 12 — estimation error vs experiment",
        )

    @property
    def yao_error(self) -> ErrorSummary:
        return ErrorSummary.from_pairs(
            (p.yao_rule_ms, p.measured_ms) for p in self.points
        )

    @property
    def calibration_error(self) -> ErrorSummary:
        return ErrorSummary.from_pairs(
            (p.calibration_ms, p.measured_ms) for p in self.points
        )


def build_wrapper(config: OO7Config = PAPER, seed: int = 7) -> ObjectStoreWrapper:
    """The experiment's wrapper: AtomicParts only, scattered placement."""
    database = load_database(config, seed, extents=("AtomicParts",))
    return ObjectStoreWrapper("oo7", database)


def build_estimator(wrapper: ObjectStoreWrapper) -> CostEstimator:
    """An estimator with the wrapper's Yao rules registered — the full
    §2.1 registration pipeline, not a shortcut."""
    catalog = MediatorCatalog()
    repository = standard_repository()
    estimator = CostEstimator(
        repository, catalog.statistics, coefficients=CoefficientSet()
    )
    register_wrapper(wrapper, catalog, repository, estimator)
    return estimator


def run_fig12(
    config: OO7Config = PAPER,
    selectivities: tuple[float, ...] = DEFAULT_SELECTIVITIES,
    seed: int = 7,
) -> Fig12Result:
    """Regenerate Figure 12."""
    wrapper = build_wrapper(config, seed)
    engine = wrapper.database
    stats = engine.export_statistics("AtomicParts")
    count = stats.count_object
    pages = engine.page_count("AtomicParts")
    id_stats = stats.attribute("Id")
    low = id_stats.min_value.as_number()  # type: ignore[union-attr]
    high = id_stats.max_value.as_number()  # type: ignore[union-attr]

    # Calibration series: probe, then extrapolate the fitted linear model.
    calibration = calibrate_wrapper(wrapper, collections=["AtomicParts"])

    # Yao series: estimates produced by the registered Figure 13 rule.
    estimator = build_estimator(wrapper)

    result = Fig12Result(
        config=config, count_object=count, page_count=pages, calibration=calibration
    )
    for selectivity in selectivities:
        threshold = low + selectivity * (high - low)
        plan = Select(
            Scan("AtomicParts"), Comparison("<=", attr("Id"), lit(threshold))
        )
        estimate = estimator.estimate(plan, default_source="oo7")
        _rows, measured_ms, pages_fetched = wrapper.database.timed_index_scan(
            "AtomicParts", "Id", high=threshold
        )
        selected = len(_rows)
        result.points.append(
            Fig12Point(
                selectivity=selectivity,
                selected_objects=selected,
                pages_fetched=pages_fetched,
                measured_ms=measured_ms,
                calibration_ms=calibration.predicted_index_ms(selected),
                yao_rule_ms=estimate.total_time,
            )
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    result = run_fig12()
    print(result.table())
    print()
    print(result.error_table())


if __name__ == "__main__":  # pragma: no cover
    main()
