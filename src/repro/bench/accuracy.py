"""Experiment E3 — estimation accuracy under the three configurations.

For every workload query and configuration, compare the optimizer's
estimated ``TotalTime`` of the chosen plan with its measured execution
time.  The paper's mechanism predicts a strict accuracy ordering:
``blended`` (wrapper rules) < ``calibrated`` (fitted coefficients) <
``generic`` (standard values) in relative error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.federation import (
    MODELS,
    FederationExperiment,
    run_federation_experiment,
)
from repro.bench.harness import ERROR_HEADERS, ErrorSummary, format_table


@dataclass
class AccuracyReport:
    experiment: FederationExperiment

    def summary(self, model: str) -> ErrorSummary:
        return ErrorSummary.from_pairs(
            (r.estimated_ms, r.actual_ms) for r in self.experiment.for_model(model)
        )

    def table(self) -> str:
        return format_table(
            ERROR_HEADERS,
            [self.summary(model).row(model) for model in MODELS],
            title="E3 — estimated vs actual TotalTime of chosen plans",
        )

    def detail_table(self) -> str:
        labels = [r.label for r in self.experiment.for_model(MODELS[0])]
        rows = []
        for label in labels:
            row: list[object] = [label]
            for model in MODELS:
                record = self.experiment.record_for(model, label)
                row.append(record.estimated_ms)
                row.append(record.actual_ms)
            rows.append(row)
        headers = ["query"]
        for model in MODELS:
            headers += [f"{model} est", f"{model} act"]
        return format_table(headers, rows, title="E3 — per-query detail (ms)")


def run_accuracy(**kwargs) -> AccuracyReport:
    return AccuracyReport(run_federation_experiment(**kwargs))


def main() -> None:  # pragma: no cover - CLI entry
    report = run_accuracy()
    print(report.table())
    print()
    print(report.detail_table())


if __name__ == "__main__":  # pragma: no cover
    main()
