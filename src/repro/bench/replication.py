"""Experiment E15 — replicated sources: availability under a mid-run
replica kill and tail latency under hedged submits.

Two scenarios over a two-member replica set (a primary and a slightly
more expensive replica of the same ``Orders`` collection):

* **availability** — the primary is killed (``unavailable``) mid-run.
  The replicated federation keeps answering complete, non-degraded
  answers: the first post-kill submit burns its retry budget, trips the
  primary's breaker and fails over; every later query is planned
  straight onto the surviving member because the optimizer's health view
  excludes breaker-open replicas at costing time.  The replica-less
  control degrades every affected query instead.

* **hedging** — the primary suffers rare 10× latency spikes
  (``latency_probability`` ≈ 8%).  A fixed-delay :class:`~repro.
  mediator.resilience.HedgePolicy` sweep launches a backup submit at the
  replica for straggling waits; first result wins, the loser's
  unconsumed remainder is cancelled.  The report records, per delay, the
  p99 simulated TotalTime and the extra wrapper work (total wrapper
  executions versus the unhedged control) — the classic tail-vs-work
  tradeoff curve.

Everything is deterministic: fault trains are seeded per scenario and
all latencies are simulated milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import format_table
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import Mediator
from repro.mediator.resilience import (
    PARTIAL,
    BreakerPolicy,
    HedgePolicy,
    ResilienceOptions,
    RetryPolicy,
)
from repro.sources.clock import CostProfile, SimClock
from repro.sources.storage_engine import StorageEngine
from repro.wrappers.base import StorageWrapper
from repro.wrappers.faults import FaultInjector, FaultProfile

#: Replica device speeds: the replica is a touch slower, so the
#: optimizer binds the primary while both are healthy.
PRIMARY_IO_MS = 8.0
REPLICA_IO_MS = 10.0

#: The hedge-delay sweep (fixed mode, simulated ms).  Normal scan waits
#: sit near 270 ms and 10x spikes near 2,700 ms, so the grid brackets
#: the useful band: too low hedges healthy scans (wasted work), too high
#: leaves most of the spike unhedged.
HEDGE_DELAYS: tuple[float, ...] = (300.0, 600.0, 1_200.0, 2_400.0)

#: Straggler profile of the hedging scenario.
SPIKE_MULTIPLIER = 10.0
SPIKE_PROBABILITY = 0.08

#: Single-submit reads: every query exercises the replicated source.
WORKLOAD: tuple[tuple[str, str], ...] = (
    ("scan-filter", "SELECT oid, qty FROM Orders WHERE qty > 70"),
    ("point-lookup", "SELECT * FROM Orders WHERE oid = 111"),
    ("narrow-scan", "SELECT oid FROM Orders WHERE qty < 15"),
)


def _store_wrapper(name: str, io_ms: float) -> StorageWrapper:
    engine = StorageEngine(
        SimClock(CostProfile(io_ms=io_ms, cpu_ms_per_object=0.1))
    )
    engine.create_collection(
        "Orders",
        [
            {"oid": i, "supplier": i % 40, "qty": (i * 7) % 100}
            for i in range(400)
        ],
        object_size=32,
        indexed_attributes=["oid"],
    )
    return StorageWrapper(name, engine)


def _resilience(hedge: HedgePolicy | None = None) -> ResilienceOptions:
    return ResilienceOptions(
        retry=RetryPolicy(max_attempts=2, backoff_base_ms=25.0),
        breaker=BreakerPolicy(failure_threshold=2, cooldown_ms=1e9),
        mode=PARTIAL,
        hedge=hedge,
    )


def _build(
    replicated: bool,
    primary_profile: FaultProfile,
    hedge: HedgePolicy | None = None,
) -> "tuple[Mediator, FaultInjector, FaultInjector | None]":
    mediator = Mediator(
        executor_options=ExecutorOptions(resilience=_resilience(hedge))
    )
    primary = FaultInjector(_store_wrapper("store", PRIMARY_IO_MS), primary_profile)
    mediator.register(primary)
    replica: FaultInjector | None = None
    if replicated:
        replica = FaultInjector(_store_wrapper("store_b", REPLICA_IO_MS))
        mediator.register_replica(replica, of="store")
    return mediator, primary, replica


@dataclass
class AvailabilityResult:
    """One arm of the mid-run-kill scenario."""

    label: str
    queries: int = 0
    complete: int = 0
    degraded: int = 0
    failovers: int = 0
    replica_served: int = 0

    @property
    def complete_rate(self) -> float:
        return self.complete / self.queries if self.queries else 0.0

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "queries": self.queries,
            "complete": self.complete,
            "degraded": self.degraded,
            "complete_rate": self.complete_rate,
            "failovers": self.failovers,
            "replica_served": self.replica_served,
        }


@dataclass
class HedgeCell:
    """One point of the hedge-delay sweep (or the unhedged control)."""

    delay_ms: float | None
    queries: int = 0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    hedges_launched: int = 0
    hedges_won: int = 0
    wrapper_executions: int = 0
    #: Wrapper executions beyond the control run, as a fraction of it.
    extra_work: float = 0.0

    def to_dict(self) -> dict:
        return {
            "delay_ms": self.delay_ms,
            "queries": self.queries,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "wrapper_executions": self.wrapper_executions,
            "extra_work": self.extra_work,
        }


@dataclass
class ReplicationExperiment:
    """All E15 measurements."""

    availability: list[AvailabilityResult] = field(default_factory=list)
    hedging: list[HedgeCell] = field(default_factory=list)
    best_delay_ms: float | None = None
    p99_improvement: float = 0.0
    rounds: int = 0

    def table(self) -> str:
        availability = format_table(
            ("arm", "queries", "complete", "degraded", "failovers", "replica served"),
            [
                (
                    arm.label,
                    arm.queries,
                    f"{arm.complete_rate:.3f}",
                    arm.degraded,
                    arm.failovers,
                    arm.replica_served,
                )
                for arm in self.availability
            ],
            title="E15a — availability across a mid-run replica kill",
        )
        hedging = format_table(
            ("hedge delay", "p50 ms", "p99 ms", "launched", "won", "extra work"),
            [
                (
                    "off" if cell.delay_ms is None else f"{cell.delay_ms:.0f}",
                    cell.p50_ms,
                    cell.p99_ms,
                    cell.hedges_launched,
                    cell.hedges_won,
                    f"{cell.extra_work:.3f}",
                )
                for cell in self.hedging
            ],
            title="E15b — tail latency vs hedge delay (10x spikes, p=0.08)",
        )
        footer = (
            f"best delay: {self.best_delay_ms} ms, "
            f"p99 improvement over unhedged: {self.p99_improvement:.1%}"
        )
        return "\n\n".join((availability, hedging, footer))

    def to_json_dict(self) -> dict:
        return {
            "experiment": "E15",
            "rounds": self.rounds,
            "availability": [arm.to_dict() for arm in self.availability],
            "hedging": [cell.to_dict() for cell in self.hedging],
            "best_delay_ms": self.best_delay_ms,
            "p99_improvement": self.p99_improvement,
        }


def _percentile(values: "list[float]", pct: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(len(ordered) * pct / 100.0)))
    return ordered[rank]


def _run_availability(replicated: bool, rounds: int) -> AvailabilityResult:
    """Run the workload; kill the primary halfway through."""
    mediator, primary, _replica = _build(replicated, FaultProfile())
    arm = AvailabilityResult(label="replicated" if replicated else "control")
    total = rounds * len(WORKLOAD)
    kill_at = total // 2
    for index in range(total):
        if index == kill_at:
            primary.set_profile(FaultProfile(unavailable=True))
        _label, sql = WORKLOAD[index % len(WORKLOAD)]
        result = mediator.query(sql)
        arm.queries += 1
        if result.degraded:
            arm.degraded += 1
        else:
            arm.complete += 1
    stats = mediator.executor.scheduler.replica_stats
    arm.failovers = stats.total_failovers
    arm.replica_served = stats.selected.get("store_b", 0)
    return arm


def _run_hedge_cell(delay_ms: float | None, rounds: int, seed: int) -> HedgeCell:
    """One sweep point: straggling primary, hedge at ``delay_ms``."""
    spikes = FaultProfile(
        latency_multiplier=SPIKE_MULTIPLIER,
        latency_probability=SPIKE_PROBABILITY,
        seed=seed,
    )
    hedge = None if delay_ms is None else HedgePolicy(delay_ms=delay_ms)
    mediator, primary, replica = _build(True, spikes, hedge=hedge)
    cell = HedgeCell(delay_ms=delay_ms)
    latencies: list[float] = []
    for _round in range(rounds):
        for _label, sql in WORKLOAD:
            latencies.append(mediator.query(sql).elapsed_ms)
    cell.queries = len(latencies)
    cell.p50_ms = _percentile(latencies, 50.0)
    cell.p99_ms = _percentile(latencies, 99.0)
    stats = mediator.executor.scheduler.replica_stats
    cell.hedges_launched = stats.total_hedges_launched
    cell.hedges_won = stats.total_hedges_won
    assert replica is not None
    cell.wrapper_executions = primary.log.executions + replica.log.executions
    return cell


def run_replication_experiment(
    rounds: int = 40,
    hedge_delays: "tuple[float, ...]" = HEDGE_DELAYS,
    hedge_seed: int = 7,
) -> ReplicationExperiment:
    """Both scenarios; returns the full E15 record."""
    experiment = ReplicationExperiment(rounds=rounds)
    experiment.availability = [
        _run_availability(replicated=False, rounds=rounds),
        _run_availability(replicated=True, rounds=rounds),
    ]
    control = _run_hedge_cell(None, rounds, hedge_seed)
    experiment.hedging.append(control)
    best: HedgeCell | None = None
    for delay in hedge_delays:
        cell = _run_hedge_cell(delay, rounds, hedge_seed)
        if control.wrapper_executions:
            cell.extra_work = (
                cell.wrapper_executions - control.wrapper_executions
            ) / control.wrapper_executions
        experiment.hedging.append(cell)
        # Best = lowest p99 among delays within the 10% extra-work budget.
        if cell.extra_work <= 0.10 and (best is None or cell.p99_ms < best.p99_ms):
            best = cell
    if best is not None and control.p99_ms > 0:
        experiment.best_delay_ms = best.delay_ms
        experiment.p99_improvement = 1.0 - best.p99_ms / control.p99_ms
    return experiment


def main(argv: "list[str] | None" = None) -> None:
    """CLI entry point: ``python -m repro.bench.replication``."""
    import sys

    from repro.bench.__main__ import parse_out_dir, write_json

    args = list(sys.argv[1:] if argv is None else argv)
    fast = "--fast" in args
    experiment = run_replication_experiment(
        rounds=20 if fast else 40,
        hedge_delays=(300.0, 1_200.0) if fast else HEDGE_DELAYS,
    )
    print(experiment.table())
    write_json(parse_out_dir(args), "BENCH_E15.json", experiment.to_json_dict())


if __name__ == "__main__":  # pragma: no cover - CLI
    main()
