"""Experiment E5 — historical costs (§4.3.1).

Three measurements:

* **convergence** — estimation error of a repeated subquery before and
  after its first execution: query-scope recording drives the error of an
  *identical* subquery to (near) zero;
* **the limitation the paper states** — "new formulas are restricted to
  one specific subquery and cannot be reused for another, closely related
  subqueries (for instance, subqueries that vary only by the constant used
  [in] a predicate)": error on perturbed constants stays at the base
  model's level under pure query-scope recording;
* **parameter adjustment** — the paper's proposed fix: the
  :class:`~repro.core.history.OnlineCalibrator` adjusts the source's
  shared coefficients from observed (estimate, actual) pairs, improving
  *nearby* subqueries too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bench.harness import format_table
from repro.core.history import OnlineCalibrator
from repro.mediator.mediator import Mediator
from repro.oo7 import TINY, OO7Config, load_database
from repro.wrappers import ObjectStoreWrapper


def build_mediator(
    config: OO7Config = TINY, seed: int = 7, record_history: bool = True
) -> Mediator:
    """A one-source mediator *without* wrapper rules and with generic
    coefficients calibrated for a much faster class of system (scaled to
    a quarter of their defaults) — the §1 situation where "a data source
    does not follow the generic cost model", giving history something
    substantial to fix."""
    from repro.core.generic import GenericCoefficients

    mediator = Mediator(record_history=record_history)
    mediator.coefficients.default = GenericCoefficients().scaled(0.25)
    wrapper = ObjectStoreWrapper(
        "oo7", load_database(config, seed), export_rules=False
    )
    mediator.register(wrapper)
    return mediator


def _relative_error(estimated: float, actual: float) -> float:
    return abs(estimated - actual) / actual if actual > 0 else 0.0


@dataclass
class HistoryResult:
    """E5 measurements."""

    convergence_rows: list[tuple[int, float]] = field(default_factory=list)
    perturbed_error_query_scope: float = 0.0
    perturbed_error_adjusted: float = 0.0
    base_error: float = 0.0

    def convergence_table(self) -> str:
        return format_table(
            ("execution #", "relative error before run"),
            self.convergence_rows,
            title="E5a — identical subquery: error converges after one run",
        )

    def generalization_table(self) -> str:
        return format_table(
            ("model", "mean rel err on perturbed constants"),
            [
                ("base (no history)", self.base_error),
                ("query-scope recording", self.perturbed_error_query_scope),
                ("parameter adjustment", self.perturbed_error_adjusted),
            ],
            title="E5b — nearby subqueries (constants vary)",
        )


def run_convergence(
    repetitions: int = 4, config: OO7Config = TINY
) -> list[tuple[int, float]]:
    mediator = build_mediator(config)
    sql = "SELECT * FROM AtomicParts WHERE Id <= 77"
    rows: list[tuple[int, float]] = []
    for execution in range(1, repetitions + 1):
        estimated = mediator.plan(sql).estimated_total_ms
        result = mediator.query(sql)
        rows.append((execution, _relative_error(estimated, result.elapsed_ms)))
    return rows


def run_generalization(
    config: OO7Config = TINY, probes: int = 10, seed: int = 3
) -> tuple[float, float, float]:
    """Returns (base error, query-scope error, adjusted error) on queries
    whose constants differ from everything previously executed."""
    rng = random.Random(seed)
    count = load_database(config).collection("AtomicParts").count

    training = [rng.randrange(count // 4, count) for _ in range(probes)]
    testing = [rng.randrange(count // 4, count) for _ in range(probes)]

    # Base model, no history at all.
    base = build_mediator(config, record_history=False)
    base_errors = []
    for constant in testing:
        sql = f"SELECT * FROM AtomicParts WHERE Id <= {constant}"
        estimated = base.plan(sql).estimated_total_ms
        actual = base.query(sql).elapsed_ms
        base_errors.append(_relative_error(estimated, actual))

    # Query-scope recording trained on *different* constants.
    recorded = build_mediator(config, record_history=True)
    for constant in training:
        recorded.query(f"SELECT * FROM AtomicParts WHERE Id <= {constant}")
    recorded_errors = []
    for constant in testing:
        sql = f"SELECT * FROM AtomicParts WHERE Id <= {constant}"
        estimated = recorded.plan(sql).estimated_total_ms
        actual = recorded.query(sql).elapsed_ms
        recorded_errors.append(_relative_error(estimated, actual))

    # Parameter adjustment: observe the training pairs, scale coefficients.
    adjusted = build_mediator(config, record_history=False)
    calibrator = OnlineCalibrator()
    for constant in training:
        sql = f"SELECT * FROM AtomicParts WHERE Id <= {constant}"
        estimated = adjusted.plan(sql).estimated_total_ms
        actual = adjusted.query(sql).elapsed_ms
        calibrator.observe("oo7", estimated, actual)
    calibrator.apply(adjusted.coefficients)
    adjusted_errors = []
    for constant in testing:
        sql = f"SELECT * FROM AtomicParts WHERE Id <= {constant}"
        estimated = adjusted.plan(sql).estimated_total_ms
        actual = adjusted.query(sql).elapsed_ms
        adjusted_errors.append(_relative_error(estimated, actual))

    mean = lambda xs: sum(xs) / len(xs)
    return mean(base_errors), mean(recorded_errors), mean(adjusted_errors)


def run_history(config: OO7Config = TINY) -> HistoryResult:
    base, recorded, adjusted = run_generalization(config)
    return HistoryResult(
        convergence_rows=run_convergence(config=config),
        base_error=base,
        perturbed_error_query_scope=recorded,
        perturbed_error_adjusted=adjusted,
    )


def main() -> None:  # pragma: no cover - CLI entry
    result = run_history()
    print(result.convergence_table())
    print()
    print(result.generalization_table())


if __name__ == "__main__":  # pragma: no cover
    main()
