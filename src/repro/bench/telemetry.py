"""Experiment E9 — overhead and payoff of the telemetry subsystem.

The observability layer (``repro.obs``) promises two things:

* **zero perturbation** — telemetry reads the simulated clock, it never
  charges it, so every simulated measurement (``elapsed_ms``, saved ms,
  cache counters) must be bit-identical with telemetry on or off;
* **cheap when off** — with ``ObservabilityOptions(enabled=False)`` (the
  default) every instrumentation site short-circuits on the shared null
  tracer, so the *wall-clock* cost of the pipeline should be unchanged.

E9 measures both on the E8 federation workload: the same queries run
under observability off / on, repeated ``repetitions`` times with a
fresh federation per repetition (engine buffer state must not leak
across modes), and the per-repetition wall-clock medians are compared.
The "on" runs also report what the telemetry bought: span counts per
query, the metrics-registry cross-check against ``QueryResult``
diagnostics, and the number of (scope, rule) drift cells populated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.harness import WORKLOAD, build_federation, format_table
from repro.mediator.executor import ExecutorOptions
from repro.obs import ObservabilityOptions


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


@dataclass
class TelemetryExperiment:
    """All E9 measurements."""

    repetitions: int = 0
    #: (mode, median wall ms / workload, median simulated ms / workload)
    mode_rows: list[tuple[str, float, float]] = field(default_factory=list)
    #: Wall-clock overhead of enabled telemetry, percent of the off mode.
    overhead_enabled_pct: float = 0.0
    #: Simulated totals must agree across modes (zero perturbation).
    simulated_ms_identical: bool = True
    #: (query, spans, submit spans, wave spans, drift observations)
    trace_rows: list[tuple[str, int, int, int, int]] = field(default_factory=list)
    #: Registry counters equal to the summed QueryResult diagnostics.
    metrics_consistent: bool = True
    #: Number of (scope, source, rule, variable) drift cells populated.
    drift_cells: int = 0

    def overhead_table(self) -> str:
        return format_table(
            ("mode", "wall ms / workload (median)", "simulated ms / workload"),
            self.mode_rows,
            title="E9a — telemetry wall-clock overhead "
            f"({self.repetitions} repetitions)",
        )

    def trace_table(self) -> str:
        return format_table(
            ("query", "spans", "submit spans", "wave spans", "drift obs"),
            self.trace_rows,
            title="E9b — what the enabled telemetry records",
        )

    def to_json_dict(self) -> dict:
        """Machine-readable form of every table (``BENCH_E9.json``)."""
        return {
            "experiment": "E9",
            "repetitions": self.repetitions,
            "modes": [
                {
                    "mode": mode,
                    "median_wall_ms": wall,
                    "median_simulated_ms": simulated,
                }
                for mode, wall, simulated in self.mode_rows
            ],
            "overhead_enabled_pct": self.overhead_enabled_pct,
            "simulated_ms_identical": self.simulated_ms_identical,
            "metrics_consistent": self.metrics_consistent,
            "drift_cells": self.drift_cells,
            "traces": [
                {
                    "query": label,
                    "spans": spans,
                    "submit_spans": submits,
                    "wave_spans": waves,
                    "drift_observations": drift,
                }
                for label, spans, submits, waves, drift in self.trace_rows
            ],
        }


#: E9 runs the workload with cache + concurrent dispatch on, so the
#: telemetry has waves, cache hits and drift joins to record.
_EXECUTOR = ExecutorOptions(parallel_submits=True, cache_subanswers=True)


def _run_workload(observability: ObservabilityOptions | None):
    """One fresh federation through the whole workload; returns
    (wall seconds, total simulated ms, mediator)."""
    mediator = build_federation(_EXECUTOR, observability=observability)
    start = time.perf_counter()
    simulated = 0.0
    for _label, sql in WORKLOAD:
        simulated += mediator.query(sql).elapsed_ms
    return time.perf_counter() - start, simulated, mediator


def run_telemetry_experiment(repetitions: int = 9) -> TelemetryExperiment:
    experiment = TelemetryExperiment(repetitions=repetitions)
    modes: tuple[tuple[str, ObservabilityOptions | None], ...] = (
        ("off (default)", None),
        ("on (all layers)", ObservabilityOptions.all_on()),
    )
    medians: dict[str, float] = {}
    simulated_totals: dict[str, float] = {}
    for mode_label, observability in modes:
        walls: list[float] = []
        simulated = 0.0
        for _ in range(repetitions):
            wall_s, simulated, _mediator = _run_workload(observability)
            walls.append(wall_s * 1000.0)
        medians[mode_label] = _median(walls)
        simulated_totals[mode_label] = simulated
        experiment.mode_rows.append(
            (mode_label, round(medians[mode_label], 2), round(simulated, 1))
        )
    baseline = medians["off (default)"]
    experiment.overhead_enabled_pct = round(
        (medians["on (all layers)"] / baseline - 1.0) * 100.0, 1
    ) if baseline > 0 else 0.0
    experiment.simulated_ms_identical = (
        len(set(simulated_totals.values())) == 1
    )

    # One instrumented pass per query for the payoff tables.
    mediator = build_federation(
        _EXECUTOR, observability=ObservabilityOptions.all_on()
    )
    telemetry = mediator.telemetry
    assert telemetry is not None and telemetry.drift is not None
    total_hits = total_misses = total_submits = 0
    for label, sql in WORKLOAD:
        drift_before = telemetry.drift.observations
        result = mediator.query(sql)
        total_hits += result.cache_hits
        total_misses += result.cache_misses
        spans = list(result.trace.walk()) if result.trace else []
        total_submits += sum(1 for s in spans if s.kind == "submit")
        drift_after = telemetry.drift.observations
        experiment.trace_rows.append(
            (
                label,
                len(spans),
                sum(1 for s in spans if s.kind == "submit"),
                sum(1 for s in spans if s.kind == "wave"),
                drift_after - drift_before,
            )
        )
    metrics = telemetry.metrics
    assert metrics is not None
    experiment.metrics_consistent = (
        metrics["repro_cache_hits_total"].total() == total_hits
        and metrics["repro_cache_misses_total"].total() == total_misses
        and metrics["repro_submits_total"].total() == total_submits
    )
    experiment.drift_cells = len(telemetry.drift)
    return experiment


def main() -> None:  # pragma: no cover - CLI entry
    experiment = run_telemetry_experiment()
    print(experiment.overhead_table())
    print()
    print(experiment.trace_table())
    print(
        f"\nenabled-telemetry overhead: {experiment.overhead_enabled_pct:+.1f}% "
        f"wall-clock; simulated clocks identical: "
        f"{experiment.simulated_ms_identical}; metrics cross-check: "
        f"{experiment.metrics_consistent}; drift cells: {experiment.drift_cells}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
