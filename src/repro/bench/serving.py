"""Experiment E11 — the federation serving layer under multi-tenant load.

A closed-loop workload driver (every client resubmits on completion, the
classic interactive-client model) drives :class:`~repro.service.service.
FederationService` over the shared three-branch federation of
``harness.build_federation``.  Three measurements:

* **throughput vs concurrency** — the same two-tenant workload under
  ``max_concurrent_queries`` 1, 2, 4, 8: simulated makespan shrinks and
  queries-per-simulated-second grows as the scheduler packs submit waves
  of *different* queries into shared waves (``cross_query_waves`` > 0
  and ``max_in_flight`` > 1 are the direct evidence of overlap);
* **fair-share scheduling** — two tenants with identical demand but
  quotas 3:1 on a concurrency-1 service: the high-quota tenant's queries
  wait less, while the low-quota tenant still completes everything (no
  starvation — its deficit keeps accruing until each head query fits);
* **admission backpressure** — a burst into a tight policy
  (``max_concurrent=1``, shallow queue, an outstanding-ms budget):
  excess queries are rejected with typed errors and counted, instead of
  growing an unbounded backlog.

All time is simulated, so every figure is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import (
    TenantWorkload,
    build_federation,
    build_tenant_workloads,
    format_table,
)
from repro.errors import AdmissionError
from repro.mediator.executor import ExecutorOptions
from repro.service import (
    FederationService,
    ServiceOptions,
    TenantPolicy,
)

#: Concurrency ladder of the throughput scenario.
CONCURRENCY_LADDER: tuple[int, ...] = (1, 2, 4, 8)


def _percentile(values: "list[float]", q: float) -> float:
    """Nearest-rank percentile (matches ``repro.obs.metrics.Summary``)."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    index = max(0, -int(-(q * len(ordered)) // 1) - 1)
    return ordered[index]


@dataclass
class TenantOutcome:
    """Per-tenant figures of one closed-loop run."""

    tenant: str
    completed: int = 0
    mean_latency_ms: float = 0.0
    p95_latency_ms: float = 0.0
    mean_queue_wait_ms: float = 0.0

    def to_json_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "completed": self.completed,
            "mean_latency_ms": self.mean_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "mean_queue_wait_ms": self.mean_queue_wait_ms,
        }


@dataclass
class ClosedLoopResult:
    """Everything measured in one closed-loop run of the service."""

    label: str
    makespan_ms: float = 0.0
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    rejected_by_reason: "dict[str, int]" = field(default_factory=dict)
    max_in_flight: int = 0
    waves: int = 0
    cross_query_waves: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    tenants: "list[TenantOutcome]" = field(default_factory=list)

    @property
    def throughput_qps(self) -> float:
        """Completed queries per simulated second."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.completed / (self.makespan_ms / 1000.0)

    def tenant(self, name: str) -> TenantOutcome:
        for outcome in self.tenants:
            if outcome.tenant == name:
                return outcome
        raise KeyError(name)

    def to_json_dict(self) -> dict:
        return {
            "label": self.label,
            "makespan_ms": self.makespan_ms,
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "rejected_by_reason": self.rejected_by_reason,
            "throughput_qps": self.throughput_qps,
            "max_in_flight": self.max_in_flight,
            "waves": self.waves,
            "cross_query_waves": self.cross_query_waves,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "tenants": [outcome.to_json_dict() for outcome in self.tenants],
        }


def run_closed_loop(
    workloads: "list[TenantWorkload]",
    options: ServiceOptions,
    label: str = "",
    policies: "dict[str, TenantPolicy] | None" = None,
) -> ClosedLoopResult:
    """Drive one fresh federation with closed-loop clients until every
    client has submitted its full quota of queries."""
    mediator = build_federation(ExecutorOptions(parallel_submits=True))
    service = FederationService(mediator, options)
    for workload in workloads:
        policy = (
            policies.get(workload.tenant)
            if policies is not None and workload.tenant in policies
            else TenantPolicy(quota=workload.quota)
        )
        service.set_policy(workload.tenant, policy)
    result = ClosedLoopResult(label=label)

    def submit_next(workload: TenantWorkload, session, client: int, index: int):
        if index >= workload.queries_per_client:
            return
        _label, sql = workload.query_at(client, index)

        def resubmit(_ticket):
            submit_next(workload, session, client, index + 1)

        try:
            service.submit(session, sql, on_complete=resubmit)
        except AdmissionError:
            # Closed loop: a bounced client immediately tries its next
            # query (think: the dashboard page the user reloads).
            submit_next(workload, session, client, index + 1)

    for workload in workloads:
        for client in range(workload.clients):
            session = service.open_session(workload.tenant)
            submit_next(workload, session, client, 0)
    service.run()

    result.makespan_ms = service.clock.now_ms
    result.submitted = len(service.tickets)
    result.completed = sum(1 for t in service.tickets if t.status == "done")
    for ticket in service.tickets:
        if ticket.status == "rejected":
            result.rejected += 1
            reason = ticket.rejection_reason.split(":", 1)[0]
            result.rejected_by_reason[reason] = (
                result.rejected_by_reason.get(reason, 0) + 1
            )
    result.max_in_flight = service.scheduler.stats.max_in_flight
    result.waves = service.scheduler.stats.waves_dispatched
    result.cross_query_waves = service.scheduler.stats.cross_query_waves
    if service.plan_cache is not None:
        result.plan_cache_hits = service.plan_cache.stats.hits
        result.plan_cache_misses = service.plan_cache.stats.misses
    for workload in workloads:
        done = [
            t
            for t in service.tickets
            if t.tenant == workload.tenant and t.status == "done"
        ]
        latencies = [t.latency_ms for t in done]
        waits = [t.queue_wait_ms for t in done]
        result.tenants.append(
            TenantOutcome(
                tenant=workload.tenant,
                completed=len(done),
                mean_latency_ms=(
                    round(sum(latencies) / len(latencies), 1) if done else 0.0
                ),
                p95_latency_ms=round(_percentile(latencies, 0.95), 1)
                if done
                else 0.0,
                mean_queue_wait_ms=(
                    round(sum(waits) / len(waits), 1) if done else 0.0
                ),
            )
        )
    return result


@dataclass
class ServingExperiment:
    """All E11 measurements."""

    throughput_runs: "list[ClosedLoopResult]" = field(default_factory=list)
    fairness_run: ClosedLoopResult | None = None
    fairness_quotas: "dict[str, float]" = field(default_factory=dict)
    backpressure_run: ClosedLoopResult | None = None

    def throughput_table(self) -> str:
        return format_table(
            (
                "max concurrent",
                "makespan (ms)",
                "throughput (q/s)",
                "max in flight",
                "cross-query waves",
                "plan-cache hits",
            ),
            [
                (
                    run.label,
                    round(run.makespan_ms, 1),
                    round(run.throughput_qps, 2),
                    run.max_in_flight,
                    run.cross_query_waves,
                    run.plan_cache_hits,
                )
                for run in self.throughput_runs
            ],
            title="E11a — closed-loop throughput vs admission concurrency",
        )

    def fairness_table(self) -> str:
        assert self.fairness_run is not None
        return format_table(
            (
                "tenant",
                "quota",
                "completed",
                "mean latency (ms)",
                "mean queue wait (ms)",
            ),
            [
                (
                    outcome.tenant,
                    self.fairness_quotas.get(outcome.tenant, 1.0),
                    outcome.completed,
                    outcome.mean_latency_ms,
                    outcome.mean_queue_wait_ms,
                )
                for outcome in self.fairness_run.tenants
            ],
            title="E11b — fair share under 3:1 quotas (concurrency 1)",
        )

    def backpressure_table(self) -> str:
        assert self.backpressure_run is not None
        run = self.backpressure_run
        rows = [
            ("submitted", run.submitted),
            ("completed", run.completed),
            ("rejected", run.rejected),
        ]
        rows += [
            (f"rejected: {reason}", count)
            for reason, count in sorted(run.rejected_by_reason.items())
        ]
        rows.append(("max in flight", run.max_in_flight))
        return format_table(
            ("figure", "value"),
            rows,
            title="E11c — admission backpressure under a tight policy",
        )

    def to_json_dict(self) -> dict:
        """Machine-readable form of every table (``BENCH_E11.json``)."""
        assert self.fairness_run is not None
        assert self.backpressure_run is not None
        return {
            "experiment": "E11",
            "throughput": [run.to_json_dict() for run in self.throughput_runs],
            "fairness": {
                "quotas": self.fairness_quotas,
                "run": self.fairness_run.to_json_dict(),
            },
            "backpressure": self.backpressure_run.to_json_dict(),
        }


def run_serving_experiment(fast: bool = False) -> ServingExperiment:
    experiment = ServingExperiment()
    ladder = (1, 2, 4) if fast else CONCURRENCY_LADDER
    for concurrency in ladder:
        experiment.throughput_runs.append(
            run_closed_loop(
                build_tenant_workloads(fast=fast),
                ServiceOptions(max_concurrent_queries=concurrency),
                label=str(concurrency),
            )
        )
    # Fairness: identical demand per tenant, unequal quotas, one slot —
    # every start is a pure scheduling decision.  Enough clients per
    # tenant that the backlog (not the client count) limits throughput,
    # so the quota ratio actually shows in the waits.
    quotas = (1.0, 3.0)
    scan_mix = list(build_tenant_workloads()[1].queries)
    fairness_workloads = [
        TenantWorkload(
            tenant="analytics",
            quota=quotas[0],
            clients=3 if fast else 5,
            queries_per_client=2 if fast else 3,
            queries=scan_mix,
        ),
        TenantWorkload(
            tenant="dashboards",
            quota=quotas[1],
            clients=3 if fast else 5,
            queries_per_client=2 if fast else 3,
            queries=scan_mix,
        ),
    ]
    experiment.fairness_quotas = {
        "analytics": quotas[0],
        "dashboards": quotas[1],
    }
    experiment.fairness_run = run_closed_loop(
        fairness_workloads,
        ServiceOptions(max_concurrent_queries=1),
        label="fairness",
    )
    # Backpressure: a burst of dashboard clients into a one-deep queue
    # (queue_full rejections) next to an analytics tenant whose
    # outstanding-ms budget no federated query fits
    # (estimate_exceeds_budget rejections).
    backpressure_workloads = [
        TenantWorkload(
            tenant="analytics",
            quota=1.0,
            clients=1,
            queries_per_client=2 if fast else 3,
            queries=list(build_tenant_workloads()[0].queries),
        ),
        TenantWorkload(
            tenant="dashboards",
            quota=1.0,
            clients=3 if fast else 5,
            queries_per_client=2 if fast else 3,
            queries=list(build_tenant_workloads()[1].queries),
        ),
    ]
    experiment.backpressure_run = run_closed_loop(
        backpressure_workloads,
        ServiceOptions(max_concurrent_queries=1),
        label="backpressure",
        policies={
            "analytics": TenantPolicy(quota=1.0, max_outstanding_ms=500.0),
            "dashboards": TenantPolicy(
                quota=1.0, max_concurrent=1, max_queue_depth=1
            ),
        },
    )
    return experiment


def main() -> None:  # pragma: no cover - CLI entry
    import sys

    experiment = run_serving_experiment(fast="--fast" in sys.argv)
    print(experiment.throughput_table())
    print()
    print(experiment.fairness_table())
    print()
    print(experiment.backpressure_table())
    from repro.bench.__main__ import parse_out_dir, write_json

    out_dir = parse_out_dir(sys.argv)
    write_json(out_dir, "BENCH_E11.json", experiment.to_json_dict())


if __name__ == "__main__":  # pragma: no cover
    main()
