"""Experiment E8 — concurrent submit dispatch and the subanswer cache.

The paper's execution model is sequential: ``TotalTime`` of a composed
plan adds the wrapper response times (§2.3).  A mediator that dispatches
independent subqueries concurrently waits only for the slowest branch —
``docs/execution.md`` describes the wave accounting.  This experiment
quantifies both extensions on a three-branch federation:

* **sequential vs concurrent dispatch** — the same union/join workload
  under ``ExecutorOptions()`` and ``ExecutorOptions(parallel_submits=
  True)``, on fresh engines per mode so buffer state is comparable;
  answers must be row-identical;
* **concurrency cap** — the wave serialized back down with
  ``max_concurrency=1`` must reproduce the sequential clock;
* **subanswer cache** — a repeated query served from the cache charges
  (nearly) zero time; hit/miss counters surface in ``QueryResult`` and
  ``explain``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import (  # noqa: F401 (REGIONS re-exported)
    REGIONS,
    WORKLOAD,
    build_federation,
    format_table,
)
from repro.mediator.executor import ExecutorOptions
from repro.mediator.mediator import QueryResult
from repro.mediator.optimizer import OptimizerOptions


@dataclass
class ParallelExperiment:
    """All E8 measurements."""

    #: (label, sequential ms, parallel ms, saved ms, rows identical)
    dispatch_rows: list[tuple[str, float, float, float, bool]] = field(
        default_factory=list
    )
    #: (label, sequential ms, capped-to-1 ms)
    cap_rows: list[tuple[str, float, float]] = field(default_factory=list)
    #: (run, elapsed ms, cache hits, cache misses)
    cache_rows: list[tuple[str, float, int, int]] = field(default_factory=list)
    explain_text: str = ""
    first_run: QueryResult | None = None
    second_run: QueryResult | None = None

    def dispatch_table(self) -> str:
        return format_table(
            ("query", "sequential (ms)", "concurrent (ms)", "saved (ms)", "rows =="),
            self.dispatch_rows,
            title="E8a — sequential vs concurrent submit dispatch",
        )

    def cap_table(self) -> str:
        return format_table(
            ("query", "sequential (ms)", "max_concurrency=1 (ms)"),
            self.cap_rows,
            title="E8b — a single slot reproduces the sequential clock",
        )

    def cache_table(self) -> str:
        return format_table(
            ("run", "elapsed (ms)", "cache hits", "cache misses"),
            self.cache_rows,
            title="E8c — subanswer cache on a repeated query",
        )

    def to_json_dict(self) -> dict:
        """Machine-readable form of every table (``BENCH_E8.json``)."""
        return {
            "experiment": "E8",
            "dispatch": [
                {
                    "query": label,
                    "sequential_ms": sequential,
                    "concurrent_ms": concurrent,
                    "saved_ms": saved,
                    "rows_identical": identical,
                }
                for label, sequential, concurrent, saved, identical
                in self.dispatch_rows
            ],
            "concurrency_cap": [
                {
                    "query": label,
                    "sequential_ms": sequential,
                    "capped_to_one_ms": capped,
                }
                for label, sequential, capped in self.cap_rows
            ],
            "cache": [
                {
                    "run": label,
                    "elapsed_ms": elapsed,
                    "cache_hits": hits,
                    "cache_misses": misses,
                }
                for label, elapsed, hits, misses in self.cache_rows
            ],
        }


def run_dispatch_comparison() -> ParallelExperiment:
    """Sequential vs concurrent dispatch plus the concurrency-cap check."""
    experiment = ParallelExperiment()
    parallel = ExecutorOptions(parallel_submits=True)
    serialized = ExecutorOptions(parallel_submits=True, max_concurrency=1)
    for label, sql in WORKLOAD:
        # One physical plan, executed under every mode: a parallel-aware
        # optimizer may legitimately pick a different plan, but the
        # dispatch comparison must hold the plan fixed.  Bind joins
        # serialize their probes behind the outer, so the planner sticks
        # to independent-submit joins here.
        planner = build_federation()
        planner.optimizer.options = OptimizerOptions(use_bind_join=False)
        plan = planner.plan(sql).plan
        sequential = build_federation().execute_plan(plan)
        concurrent = build_federation(parallel).execute_plan(plan)
        experiment.dispatch_rows.append(
            (
                label,
                round(sequential.elapsed_ms, 1),
                round(concurrent.elapsed_ms, 1),
                round(concurrent.parallel_saved_ms, 1),
                concurrent.rows == sequential.rows,
            )
        )
        capped = build_federation(serialized).execute_plan(plan)
        experiment.cap_rows.append(
            (label, round(sequential.elapsed_ms, 1), round(capped.elapsed_ms, 1))
        )
    return experiment


def run_cache_series(experiment: ParallelExperiment | None = None) -> ParallelExperiment:
    """The same query twice against one cache-enabled mediator."""
    if experiment is None:
        experiment = ParallelExperiment()
    mediator = build_federation(
        ExecutorOptions(parallel_submits=True, cache_subanswers=True)
    )
    sql = WORKLOAD[0][1]
    experiment.first_run = mediator.query(sql)
    experiment.second_run = mediator.query(sql)
    for label, run in (("first", experiment.first_run), ("second", experiment.second_run)):
        experiment.cache_rows.append(
            (label, round(run.elapsed_ms, 1), run.cache_hits, run.cache_misses)
        )
    experiment.explain_text = mediator.explain(sql)
    return experiment


def run_parallel_experiment() -> ParallelExperiment:
    return run_cache_series(run_dispatch_comparison())


def main() -> None:  # pragma: no cover - CLI entry
    experiment = run_parallel_experiment()
    print(experiment.dispatch_table())
    print()
    print(experiment.cap_table())
    print()
    print(experiment.cache_table())
    print()
    print(experiment.explain_text)


if __name__ == "__main__":  # pragma: no cover
    main()
