"""The multi-source federation scenario behind experiments E2 and E3.

Four sources spanning the heterogeneity spectrum of §1:

* ``oo7`` — the simulated ObjectStore with OO7 data (slow device,
  25 ms/page), able to export full Yao cost rules;
* ``sales`` — a relational engine (Suppliers, Orders; fast device);
* ``api`` — a high-latency remote source (Tickets);
* ``files`` — a flat file (AuditLog) that can at best export sampled
  statistics.

Three mediator configurations embody the paper's comparison:

* ``generic`` — wrappers export *names only*: the mediator runs on its
  generic model with §6 "standard values" everywhere;
* ``calibrated`` — wrappers export statistics and the mediator's
  coefficients are fitted per source by the [DKS92]/[GST96] probing
  procedure (the state of the art the paper improves on);
* ``blended`` — calibration *plus* wrapper-exported cost rules,
  blended through the scope hierarchy (the paper's contribution).

``run_federation_experiment`` optimizes and executes a fixed workload
under each configuration, recording estimated and actual response times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.calibration import calibrate_wrapper
from repro.errors import CalibrationError
from repro.mediator.mediator import Mediator
from repro.oo7 import SMALL, OO7Config, load_database
from repro.sources.relationaldb import RelationalDatabase
from repro.wrappers import (
    FlatFileWrapper,
    ObjectStoreWrapper,
    RelationalWrapper,
    WebSourceWrapper,
)

MODELS = ("generic", "calibrated", "blended")


@dataclass
class Engines:
    """The shared data sources (engines persist across configurations)."""

    oo7_db: object
    sales_db: RelationalDatabase
    audit_rows: list[dict]
    ticket_rows: list[dict]


def build_engines(config: OO7Config = SMALL, seed: int = 7) -> Engines:
    oo7_db = load_database(
        config, seed, extents=("AtomicParts", "CompositeParts")
    )
    sales_db = RelationalDatabase()
    sales_db.create_table(
        "Suppliers",
        [
            {"sid": i, "partType": f"type{i % 10:03d}", "city": f"city{i % 5}"}
            for i in range(200)
        ],
        row_size=48,
        indexed_columns=["sid"],
    )
    sales_db.create_table(
        "Orders",
        [
            {"oid": i, "supplier": i % 200, "qty": (i * 13) % 500}
            for i in range(5000)
        ],
        row_size=32,
        indexed_columns=["oid", "supplier"],
    )
    audit_rows = [
        {"entry": i, "supplier": i % 200, "severity": i % 4} for i in range(6000)
    ]
    ticket_rows = [
        {"tid": i, "supplier": i % 200, "status": "open" if i % 3 else "closed"}
        for i in range(400)
    ]
    return Engines(
        oo7_db=oo7_db,
        sales_db=sales_db,
        audit_rows=audit_rows,
        ticket_rows=ticket_rows,
    )


def build_mediator(model: str, engines: Engines) -> Mediator:
    """Assemble a mediator in one of the three configurations."""
    if model not in MODELS:
        raise ValueError(f"unknown model configuration {model!r}")
    with_stats = model != "generic"
    with_rules = model == "blended"

    oo7 = ObjectStoreWrapper("oo7", engines.oo7_db, export_rules=with_rules)
    oo7.export_statistics = with_stats
    sales = RelationalWrapper("sales", engines.sales_db, export_rules=with_rules)
    sales.export_statistics = with_stats
    api = WebSourceWrapper("api", latency_ms=800.0)
    if "Tickets" not in api.engine.collection_names():
        api.add_collection(
            "Tickets", engines.ticket_rows, indexed_attributes=["tid"]
        )
    if not with_rules:
        api.cost_rules_cdl = lambda: None  # type: ignore[method-assign]
    api.export_statistics = with_stats
    files = FlatFileWrapper(
        "files",
        "AuditLog",
        rows=engines.audit_rows,
        export_statistics=with_stats,  # "sampled once" in the richer configs
    )

    mediator = Mediator()
    for wrapper in (oo7, sales, api, files):
        mediator.register(wrapper)

    if model in ("calibrated", "blended"):
        for wrapper in (oo7, sales, api, files):
            try:
                fitted = calibrate_wrapper(wrapper)
            except CalibrationError:
                continue
            mediator.coefficients.set_source(wrapper.name, fitted.coefficients)
    return mediator


#: The E2/E3 workload: selections, cross-source joins, same-wrapper joins,
#: a no-stats source join, and an aggregate.
WORKLOAD: tuple[tuple[str, str], ...] = (
    (
        "point",
        "SELECT * FROM AtomicParts WHERE Id = 4321",
    ),
    (
        "range",
        "SELECT * FROM AtomicParts WHERE Id BETWEEN 100 AND 599",
    ),
    (
        "cross-join",
        "SELECT * FROM AtomicParts, Suppliers "
        "WHERE AtomicParts.type = Suppliers.partType "
        "AND Suppliers.city = 'city1' AND AtomicParts.Id < 500",
    ),
    (
        "local-join",
        "SELECT * FROM Orders, Suppliers "
        "WHERE Orders.supplier = Suppliers.sid AND Suppliers.city = 'city0'",
    ),
    (
        "file-join",
        "SELECT * FROM AuditLog, Suppliers "
        "WHERE AuditLog.supplier = Suppliers.sid "
        "AND AuditLog.severity = 3 AND Suppliers.city = 'city2'",
    ),
    (
        "remote-join",
        "SELECT * FROM Tickets, Suppliers "
        "WHERE Tickets.supplier = Suppliers.sid AND Tickets.status = 'closed'",
    ),
    (
        "three-way",
        "SELECT * FROM Orders, Suppliers, Tickets "
        "WHERE Orders.supplier = Suppliers.sid "
        "AND Tickets.supplier = Suppliers.sid "
        "AND Tickets.status = 'closed' AND Orders.qty < 50",
    ),
    (
        "audit-chain",
        # Join-order sensitive: the good order filters Suppliers first;
        # the bad one builds the 150 000-row AuditLog x Orders
        # intermediate.  Without statistics the orders are estimated as
        # equals, so the generic configuration can pick either.
        "SELECT * FROM AuditLog, Orders, Suppliers "
        "WHERE AuditLog.supplier = Suppliers.sid "
        "AND Orders.supplier = Suppliers.sid AND Suppliers.city = 'city3'",
    ),
    (
        "aggregate",
        "SELECT type, COUNT(*) AS n FROM AtomicParts GROUP BY type",
    ),
)


@dataclass
class QueryRecord:
    """One (configuration, query) measurement."""

    model: str
    label: str
    estimated_ms: float
    actual_ms: float
    rows: int
    candidates: int
    pruned: int


@dataclass
class FederationExperiment:
    """All measurements of one experiment run."""

    records: list[QueryRecord] = field(default_factory=list)

    def for_model(self, model: str) -> list[QueryRecord]:
        return [r for r in self.records if r.model == model]

    def total_actual(self, model: str) -> float:
        return sum(r.actual_ms for r in self.for_model(model))

    def record_for(self, model: str, label: str) -> QueryRecord:
        for record in self.records:
            if record.model == model and record.label == label:
                return record
        raise KeyError((model, label))


def run_federation_experiment(
    config: OO7Config = SMALL,
    seed: int = 7,
    workload: tuple[tuple[str, str], ...] = WORKLOAD,
    models: tuple[str, ...] = MODELS,
) -> FederationExperiment:
    """Run the workload under every configuration."""
    experiment = FederationExperiment()
    for model in models:
        engines = build_engines(config, seed)
        mediator = build_mediator(model, engines)
        for label, sql in workload:
            result = mediator.query(sql)
            experiment.records.append(
                QueryRecord(
                    model=model,
                    label=label,
                    estimated_ms=result.estimated_ms,
                    actual_ms=result.elapsed_ms,
                    rows=result.count,
                    candidates=result.optimizer_stats.candidates_considered,
                    pruned=result.optimizer_stats.candidates_pruned,
                )
            )
    return experiment
