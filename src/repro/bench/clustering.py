"""Experiment E6 — clustering (§7).

"We particularly investigate the case of clustering, which can not be
easily captured by a calibrating model."  The same extent is loaded twice
— physically **scattered** (placement uncorrelated with the indexed
attribute; Yao's regime) and **clustered** on the indexed attribute
(selected objects sit on consecutive pages).  An index scan of the same
selectivity then differs by an order of magnitude in pages fetched, and:

* the calibrated linear model, fitted on either store, has no way to
  express the difference (one coefficient, two behaviours);
* the wrapper *knows* its clustering and exports the matching rule —
  the Yao formula for the scattered extent, a consecutive-pages formula
  for the clustered one — so the blended estimates track both stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expressions import Comparison, attr, lit
from repro.algebra.logical import Scan, Select
from repro.bench.harness import ErrorSummary, format_table
from repro.bench.fig12 import build_estimator
from repro.core.calibration import calibrate_wrapper
from repro.sources.objectdb import ObjectDatabase
from repro.wrappers.objectstore import ObjectStoreWrapper

DEFAULT_SELECTIVITIES = (0.02, 0.05, 0.1, 0.2, 0.4)


def build_store(clustering: str, count: int = 7000) -> ObjectStoreWrapper:
    """One extent of ``count`` 56-byte objects (~100 pages), loaded with
    the given clustering policy and indexed on Id."""
    db = ObjectDatabase()
    db.create_extent(
        "Parts",
        [{"Id": i} for i in range(count)],
        object_size=56,
        indexed_attributes=["Id"],
        clustering=clustering,
    )
    return ObjectStoreWrapper("store", db)


@dataclass
class ClusteringPoint:
    selectivity: float
    scattered_pages: int
    clustered_pages: int
    scattered_measured_ms: float
    clustered_measured_ms: float
    scattered_rule_ms: float
    clustered_rule_ms: float
    calibration_ms: float  # one linear model for both stores


@dataclass
class ClusteringResult:
    count: int
    page_count: int
    points: list[ClusteringPoint] = field(default_factory=list)

    def table(self) -> str:
        rows = [
            [
                p.selectivity,
                p.scattered_pages,
                p.clustered_pages,
                p.scattered_measured_ms,
                p.scattered_rule_ms,
                p.clustered_measured_ms,
                p.clustered_rule_ms,
                p.calibration_ms,
            ]
            for p in self.points
        ]
        return format_table(
            (
                "sel",
                "pages scat",
                "pages clus",
                "scat meas",
                "scat rule",
                "clus meas",
                "clus rule",
                "calib (one model)",
            ),
            rows,
            title=(
                f"E6 — clustering: index scan on {self.count} objects / "
                f"{self.page_count} pages (ms)"
            ),
        )

    @property
    def scattered_rule_error(self) -> ErrorSummary:
        return ErrorSummary.from_pairs(
            (p.scattered_rule_ms, p.scattered_measured_ms) for p in self.points
        )

    @property
    def clustered_rule_error(self) -> ErrorSummary:
        return ErrorSummary.from_pairs(
            (p.clustered_rule_ms, p.clustered_measured_ms) for p in self.points
        )

    @property
    def calibration_error_on_clustered(self) -> ErrorSummary:
        return ErrorSummary.from_pairs(
            (p.calibration_ms, p.clustered_measured_ms) for p in self.points
        )


def run_clustering(
    selectivities: tuple[float, ...] = DEFAULT_SELECTIVITIES, count: int = 7000
) -> ClusteringResult:
    scattered = build_store("scattered", count)
    clustered = build_store("clustered:Id", count)
    # One calibration, fitted on the scattered store — a single linear
    # model, as the calibrating approach would maintain per source class.
    calibration = calibrate_wrapper(scattered, collections=["Parts"])
    scattered_estimator = build_estimator(scattered)
    clustered_estimator = build_estimator(clustered)

    result = ClusteringResult(
        count=count, page_count=scattered.engine.page_count("Parts")
    )
    for selectivity in selectivities:
        threshold = int(selectivity * count) - 1
        plan = Select(Scan("Parts"), Comparison("<=", attr("Id"), lit(threshold)))
        scat_est = scattered_estimator.estimate(plan, default_source=scattered.name)
        plan2 = Select(Scan("Parts"), Comparison("<=", attr("Id"), lit(threshold)))
        clus_est = clustered_estimator.estimate(plan2, default_source=clustered.name)
        rows_s, scat_ms, scat_pages = scattered.database.timed_index_scan(
            "Parts", "Id", high=threshold
        )
        rows_c, clus_ms, clus_pages = clustered.database.timed_index_scan(
            "Parts", "Id", high=threshold
        )
        assert len(rows_s) == len(rows_c)
        result.points.append(
            ClusteringPoint(
                selectivity=selectivity,
                scattered_pages=scat_pages,
                clustered_pages=clus_pages,
                scattered_measured_ms=scat_ms,
                clustered_measured_ms=clus_ms,
                scattered_rule_ms=scat_est.total_time,
                clustered_rule_ms=clus_est.total_time,
                calibration_ms=calibration.predicted_index_ms(len(rows_s)),
            )
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    result = run_clustering()
    print(result.table())
    print()
    print(
        "mean relative errors — scattered rule: "
        f"{result.scattered_rule_error.mean_relative_error:.3f}, "
        "clustered rule: "
        f"{result.clustered_rule_error.mean_relative_error:.3f}, "
        "single calibrated model on clustered store: "
        f"{result.calibration_error_on_clustered.mean_relative_error:.3f}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
