"""Experiment E10 — fault tolerance: answered-query rate and latency
versus fault probability.

The E8 three-branch federation runs under injected fault profiles: each
branch wrapper is decorated with a :class:`~repro.wrappers.faults.
FaultInjector` whose transient-error probability sweeps a grid.  For
every cell the same workload runs twice:

* **strict mode** — a submit that exhausts its retries fails the whole
  query; the *answered rate* drops with the fault probability;
* **partial mode** — the query completes with the surviving subtrees;
  everything answers, and the *complete rate* (answers that are not
  degraded) shows how often retries repaired the faults outright.

Latency is the mean simulated elapsed time of the answered queries —
retries, backoff sleeps and breaker fast-fails all charge the simulated
clock, so degradation cost is visible in the same milliseconds the cost
model predicts.  Everything is deterministic: per-wrapper fault seeds
derive from the grid cell, and backoff jitter runs on the scheduler's
seeded RNG.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.bench.harness import WORKLOAD, build_federation, format_table
from repro.errors import SubmitFailedError
from repro.mediator.executor import ExecutorOptions
from repro.mediator.resilience import (
    PARTIAL,
    STRICT,
    BreakerPolicy,
    ResilienceOptions,
    RetryPolicy,
)
from repro.wrappers.faults import FaultInjector, FaultProfile

#: The default fault-probability sweep (p = per-attempt transient-error
#: probability of *each* of the three branch wrappers).
PROBABILITIES: tuple[float, ...] = (0.0, 0.05, 0.15, 0.3, 0.5)

#: Simulated time a transient failure takes to surface at the wrapper.
ERROR_LATENCY_MS = 30.0


def _resilience(mode: str, seed: int) -> ResilienceOptions:
    return ResilienceOptions(
        retry=RetryPolicy(
            max_attempts=3,
            backoff_base_ms=50.0,
            backoff_multiplier=2.0,
            backoff_max_ms=500.0,
            jitter_ratio=0.2,
        ),
        breaker=BreakerPolicy(failure_threshold=5, cooldown_ms=2_000.0),
        mode=mode,
        seed=seed,
    )


def _faulted_federation(mode: str, probability: float, seed: int):
    def wrap(wrapper):
        return FaultInjector(
            wrapper,
            FaultProfile(
                error_probability=probability,
                error_latency_ms=ERROR_LATENCY_MS,
                # Distinct per-wrapper fault trains, reproducible per
                # cell (crc32, not hash(): PYTHONHASHSEED-independent).
                seed=seed * 1_000 + zlib.crc32(wrapper.name.encode()) % 997,
            ),
        )

    return build_federation(
        options=ExecutorOptions(resilience=_resilience(mode, seed)),
        wrap=wrap,
    )


@dataclass
class FaultCell:
    """Measurements of one (probability, mode-pair) grid cell."""

    probability: float
    queries: int = 0
    strict_answered: int = 0
    partial_complete: int = 0
    partial_degraded: int = 0
    mean_partial_elapsed_ms: float = 0.0
    retries: int = 0
    timeouts: int = 0
    breaker_trips: int = 0
    failed_submits: int = 0

    @property
    def strict_answered_rate(self) -> float:
        return self.strict_answered / self.queries if self.queries else 0.0

    @property
    def partial_complete_rate(self) -> float:
        return self.partial_complete / self.queries if self.queries else 0.0

    def to_dict(self) -> dict:
        return {
            "probability": self.probability,
            "queries": self.queries,
            "strict_answered_rate": self.strict_answered_rate,
            "partial_complete_rate": self.partial_complete_rate,
            "partial_degraded": self.partial_degraded,
            "mean_partial_elapsed_ms": self.mean_partial_elapsed_ms,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "breaker_trips": self.breaker_trips,
            "failed_submits": self.failed_submits,
        }


@dataclass
class FaultExperiment:
    """All E10 measurements."""

    cells: list[FaultCell] = field(default_factory=list)
    rounds: int = 0

    def table(self) -> str:
        rows = [
            (
                f"{cell.probability:.2f}",
                f"{cell.strict_answered_rate:.2f}",
                f"{cell.partial_complete_rate:.2f}",
                cell.partial_degraded,
                cell.mean_partial_elapsed_ms,
                cell.retries,
                cell.breaker_trips,
            )
            for cell in self.cells
        ]
        return format_table(
            (
                "fault p",
                "strict answered",
                "partial complete",
                "degraded",
                "mean ms (partial)",
                "retries",
                "trips",
            ),
            rows,
            title="E10 — answered-query rate and latency vs fault probability",
        )

    def to_json_dict(self) -> dict:
        return {
            "experiment": "E10",
            "rounds": self.rounds,
            "error_latency_ms": ERROR_LATENCY_MS,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def run_fault_experiment(
    probabilities: "tuple[float, ...]" = PROBABILITIES, rounds: int = 6
) -> FaultExperiment:
    """Sweep the fault-probability grid over the E8 workload."""
    experiment = FaultExperiment(rounds=rounds)
    for index, probability in enumerate(probabilities):
        cell = FaultCell(probability=probability)
        strict = _faulted_federation(STRICT, probability, seed=index + 1)
        partial = _faulted_federation(PARTIAL, probability, seed=index + 1)
        elapsed_total = 0.0
        for _round in range(rounds):
            for _label, sql in WORKLOAD:
                cell.queries += 1
                try:
                    strict.query(sql)
                    cell.strict_answered += 1
                except SubmitFailedError:
                    pass
                result = partial.query(sql)
                elapsed_total += result.elapsed_ms
                if result.degraded:
                    cell.partial_degraded += 1
                else:
                    cell.partial_complete += 1
        stats = partial.executor.scheduler.resilience_stats
        cell.retries = stats.total_retries
        cell.timeouts = stats.total_timeouts
        cell.breaker_trips = stats.total_breaker_trips
        cell.failed_submits = stats.total_failed_submits
        cell.mean_partial_elapsed_ms = (
            elapsed_total / cell.queries if cell.queries else 0.0
        )
        experiment.cells.append(cell)
    return experiment


def main(argv: "list[str] | None" = None) -> None:
    """CLI entry point: ``python -m repro.bench.resilience``."""
    import sys

    from repro.bench.__main__ import parse_out_dir, write_json

    args = list(sys.argv[1:] if argv is None else argv)
    fast = "--fast" in args
    experiment = run_fault_experiment(
        probabilities=(0.0, 0.15, 0.5) if fast else PROBABILITIES,
        rounds=2 if fast else 6,
    )
    print(experiment.table())
    write_json(parse_out_dir(args), "BENCH_E10.json", experiment.to_json_dict())


if __name__ == "__main__":  # pragma: no cover - CLI
    main()
