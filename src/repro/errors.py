"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so a
client can catch one type at the mediator boundary.  Sub-hierarchies mirror
the package layout: the cost-language front end raises ``Cdl*`` errors, the
cost model raises ``Cost*`` errors, query processing raises ``Query*``
errors and the simulated storage substrate raises ``Storage*`` errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Cost communication language (repro.cdl)
# ---------------------------------------------------------------------------


class CdlError(ReproError):
    """Base class for errors in the cost communication language."""


class CdlSyntaxError(CdlError):
    """A CDL document failed to tokenize or parse.

    Carries the source position so wrapper implementors can find the
    offending text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class CdlCompileError(CdlError):
    """A parsed CDL document could not be lowered to cost-model objects."""


# ---------------------------------------------------------------------------
# Cost model (repro.core)
# ---------------------------------------------------------------------------


class CostModelError(ReproError):
    """Base class for cost-model errors."""


class FormulaError(CostModelError):
    """A cost formula is malformed or failed to evaluate."""


class UnknownStatisticError(CostModelError):
    """A formula referenced a statistic that no scope can provide."""


class NoApplicableRuleError(CostModelError):
    """No rule — not even a default-scope rule — matched an operator.

    The mediator's default cost model guarantees a formula for every
    variable of every operator, so this error indicates a registry that was
    built without the generic model installed.
    """


class CalibrationError(CostModelError):
    """The calibration procedure could not fit the generic-model
    coefficients (e.g. not enough probe queries)."""


# ---------------------------------------------------------------------------
# Query processing (repro.sqlfe, repro.algebra, repro.mediator)
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for query-processing errors."""


class SqlSyntaxError(QueryError):
    """The SQL text failed to parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class PlanError(QueryError):
    """An algebraic plan is structurally invalid."""


class UnknownCollectionError(QueryError):
    """A query referenced a collection not present in the catalog."""


class UnknownAttributeError(QueryError):
    """A query referenced an attribute not present in its collection."""


class CapabilityError(QueryError):
    """A subplan was submitted to a wrapper that cannot execute it."""


class RegistrationError(QueryError):
    """A wrapper could not be registered with the mediator."""


# ---------------------------------------------------------------------------
# Source faults and fault-tolerant dispatch (repro.wrappers.faults,
# repro.mediator.resilience)
# ---------------------------------------------------------------------------


class SourceFaultError(QueryError):
    """A data source failed while executing a wrapper subquery.

    Raised by fault-injecting wrappers (and, in a real deployment, by
    wrappers whose source misbehaved).  ``elapsed_ms`` is the simulated
    time the mediator spent waiting before the failure surfaced, so the
    scheduler can charge the failed attempt to its clock.
    """

    def __init__(self, message: str, elapsed_ms: float = 0.0) -> None:
        self.elapsed_ms = elapsed_ms
        super().__init__(message)


class SourceUnavailableError(SourceFaultError):
    """The source is down: every attempt fails (until it comes back)."""


class TransientSourceError(SourceFaultError):
    """The source failed this attempt but a retry may succeed."""


class SourceTimeoutError(SourceFaultError):
    """A wrapper wait exceeded the per-submit deadline and was cancelled."""


class CircuitOpenError(SourceFaultError):
    """The wrapper's circuit breaker is open: the submit fast-failed
    without consuming an attempt."""


class SubmitFailedError(QueryError):
    """A Submit exhausted its retry budget in ``strict`` mode.

    Carries the structured :class:`~repro.mediator.resilience.
    SubmitFailure` so clients can see which wrapper died and why.
    """

    def __init__(self, failure) -> None:
        self.failure = failure
        super().__init__(
            f"submit to wrapper {failure.wrapper!r} failed after "
            f"{failure.attempts} attempt(s): {failure.reason}"
        )


# ---------------------------------------------------------------------------
# Federation serving layer (repro.service)
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for serving-layer errors (sessions, admission,
    scheduling)."""


class SessionError(ServiceError):
    """A session operation failed (unknown session, closed session...)."""


class UnknownPreparedStatementError(SessionError):
    """A prepared-statement handle was not found in its session."""


class AdmissionError(ServiceError):
    """Base class for admission-control backpressure errors.

    Carries the tenant and a machine-readable ``reason`` so clients (and
    the serving metrics) can distinguish *why* the query was pushed back.
    """

    def __init__(self, message: str, tenant: str = "", reason: str = "") -> None:
        self.tenant = tenant
        self.reason = reason
        super().__init__(message)


class AdmissionRejectedError(AdmissionError):
    """The query was rejected outright: its estimated cost can never fit
    the tenant's (or the global) budget."""


class QueueOverflowError(AdmissionError):
    """The tenant's admission queue is full — backpressure: the client
    should slow down and retry later."""


class ServiceDegradedError(AdmissionError):
    """Every wrapper the query's plan depends on has an open circuit
    breaker: the query is rejected fast instead of queued behind sources
    that cannot answer."""


# ---------------------------------------------------------------------------
# Simulated storage substrate (repro.sources)
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for simulated-source errors."""


class PageError(StorageError):
    """A page-level operation failed (overfull page, bad page id...)."""


class IndexError_(StorageError):
    """A B+tree index operation failed.

    Named with a trailing underscore to avoid shadowing the builtin.
    """
