"""The scope specialization hierarchy and the rule repository (§4.1).

Rules are grouped "into three scopes based on their applicability domain:
wrapper-scope, collection-scope and predicate-scope ... Furthermore, the
mediator has two additional scopes, the default-scope and the local-scope"
(Figure 10).  Section 4.3.1 adds a sixth, most-specific **query scope**
holding rules recorded from actual executions.

Matching order (§4.2, Step 1): query > predicate > collection > wrapper >
(local) > default.  Within one scope, rules are ordered by pattern
specificity (:meth:`OperatorPattern.specificity`), and ties fall back to
the order "given by the wrapper implementor".

The paper notes that naive rule lookup "tends to slow down the cost
estimate process ... That is why we do not use the standard overriding
mechanism of Java, but implement our own efficient one based on kind of
virtual tables."  :class:`RuleRepository` reproduces that: rules are
pre-grouped per (source, operator name) into lists sorted by scope rank
and specificity at registration time, so per-node matching only scans the
rules that could possibly apply.  The linear-scan alternative is kept
(``use_dispatch_index=False``) for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator

from repro.algebra.logical import PlanNode
from repro.core.rules import Bindings, CostRule, OperatorPattern
from repro.errors import CostModelError


class Scope(IntEnum):
    """Scopes of Figure 10, ordered by increasing specificity."""

    DEFAULT = 0
    LOCAL = 1
    WRAPPER = 2
    COLLECTION = 3
    PREDICATE = 4
    QUERY = 5

    def __str__(self) -> str:
        return self.name.lower()


#: The mediator's own pseudo-source name for LOCAL/DEFAULT scope rules.
MEDIATOR_SOURCE = "__mediator__"


def classify_wrapper_rule(rule: CostRule) -> Scope:
    """Derive the scope of a wrapper-exported rule from its head (§4.1).

    * no bound collection → wrapper-scope (applies to any collection of
      the source);
    * bound collection, free predicate → collection-scope;
    * bound attribute or value → predicate-scope.
    """
    collections_bound, _shape_bound, attributes_bound, values_bound = (
        rule.specificity()
    )
    if attributes_bound or values_bound:
        return Scope.PREDICATE
    if collections_bound:
        return Scope.COLLECTION
    return Scope.WRAPPER


@dataclass(frozen=True)
class ScopedRule:
    """A rule placed in the hierarchy: who exported it and at which scope."""

    rule: CostRule
    scope: Scope
    source: str

    @property
    def sort_key(self) -> tuple[int, ...]:
        """Descending match priority: scope, then the specificity levels,
        then declaration order (ascending)."""
        spec = self.rule.specificity()
        return (-int(self.scope), *(-level for level in spec), self.rule.order)


@dataclass(frozen=True)
class RuleMatch:
    """A successful unification of a scoped rule with a plan node."""

    scoped: ScopedRule
    bindings: Bindings

    @property
    def rule(self) -> CostRule:
        return self.scoped.rule

    @property
    def scope(self) -> Scope:
        return self.scoped.scope

    @property
    def level(self) -> tuple[int, ...]:
        """The paper's "matching level": scope plus pattern specificity.

        Rules at the same level are *all* associated with a node and their
        formulas race to the lowest value (§4.2, Step 3).
        """
        spec = self.rule.specificity()
        return (int(self.scope), *spec)


class RuleRepository:
    """All scoped rules known to one mediator.

    Wrapper rules are integrated at registration time (§4.1: "Integration
    consists of compiling the rules ... and transmitting the results of
    compilation to the mediator"); formula compilation happened when the
    :class:`~repro.core.formulas.Formula` objects were built, so adding a
    rule here only indexes it.
    """

    def __init__(self, use_dispatch_index: bool = True) -> None:
        self.use_dispatch_index = use_dispatch_index
        self._rules: list[ScopedRule] = []
        # The "virtual table": (source, operator) -> sorted scoped rules.
        self._index: dict[tuple[str, str], list[ScopedRule]] = {}
        # Fully pinned select rules (bound collection, attribute, op and
        # value) hash directly on their constants, so a thousand
        # query-specific rules cost one dict probe, not a scan — the
        # §3.3.2 "virtual tables" point.
        self._pinned: dict[tuple, list[ScopedRule]] = {}
        self._orders: dict[tuple[str, Scope], int] = {}

    # -- registration -----------------------------------------------------------

    def _next_order(self, source: str, scope: Scope) -> int:
        key = (source, scope)
        order = self._orders.get(key, 0)
        self._orders[key] = order + 1
        return order

    def _insert(self, scoped: ScopedRule) -> None:
        self._rules.append(scoped)
        pinned_key = self._pinned_key_for_rule(scoped)
        if pinned_key is not None:
            bucket = self._pinned.setdefault(pinned_key, [])
        else:
            bucket = self._index.setdefault(
                (scoped.source, scoped.rule.head.operator), []
            )
        bucket.append(scoped)
        bucket.sort(key=lambda s: s.sort_key)

    @staticmethod
    def _pinned_key_for_rule(scoped: ScopedRule) -> tuple | None:
        """Hash key for a fully bound select rule, or None."""
        head = scoped.rule.head
        if type(head) is not OperatorPattern or head.operator != "select":
            return None
        pred = head.predicate
        from repro.core.rules import SelectPredPattern, Var

        if not isinstance(pred, SelectPredPattern):
            return None
        collection = head.collections[0]
        if (
            isinstance(collection, Var)
            or isinstance(pred.attribute, Var)
            or isinstance(pred.value, Var)
        ):
            return None
        try:
            hash(pred.value)
        except TypeError:
            return None
        return (scoped.source, collection, pred.attribute, pred.op, pred.value)

    @staticmethod
    def _pinned_key_for_node(node: PlanNode, source: str) -> tuple | None:
        """The pinned-bucket key a select node would hash to, or None."""
        from repro.algebra.expressions import AttributeRef, Comparison, Literal
        from repro.algebra.logical import Select

        if not isinstance(node, Select):
            return None
        predicate = node.predicate
        if not isinstance(predicate, Comparison):
            return None
        predicate = predicate.normalized()
        if not predicate.is_attr_value:
            return None
        collection = node.primary_collection()
        if collection is None:
            return None
        attribute = predicate.left
        literal = predicate.right
        assert isinstance(attribute, AttributeRef)
        assert isinstance(literal, Literal)
        try:
            hash(literal.value)
        except TypeError:
            return None
        return (source, collection, attribute.name, predicate.op, literal.value)

    def add_default_rule(self, rule: CostRule) -> ScopedRule:
        """Install a generic-model rule (default-scope)."""
        rule.order = self._next_order(MEDIATOR_SOURCE, Scope.DEFAULT)
        scoped = ScopedRule(rule, Scope.DEFAULT, MEDIATOR_SOURCE)
        self._insert(scoped)
        return scoped

    def add_local_rule(self, rule: CostRule) -> ScopedRule:
        """Install a mediator local-scope rule (physical mediator operators)."""
        rule.order = self._next_order(MEDIATOR_SOURCE, Scope.LOCAL)
        scoped = ScopedRule(rule, Scope.LOCAL, MEDIATOR_SOURCE)
        self._insert(scoped)
        return scoped

    def add_wrapper_rule(self, source: str, rule: CostRule) -> ScopedRule:
        """Install a wrapper-exported rule, deriving its scope from the head."""
        if source == MEDIATOR_SOURCE:
            raise CostModelError(
                f"wrapper rules cannot use the reserved source {source!r}"
            )
        scope = classify_wrapper_rule(rule)
        rule.order = self._next_order(source, scope)
        scoped = ScopedRule(rule, scope, source)
        self._insert(scoped)
        return scoped

    def add_wrapper_rules(self, source: str, rules: Iterable[CostRule]) -> None:
        for rule in rules:
            self.add_wrapper_rule(source, rule)

    def add_query_rule(self, source: str, rule: CostRule) -> ScopedRule:
        """Install a query-scope rule (§4.3.1 historical costs)."""
        rule.order = self._next_order(source, Scope.QUERY)
        scoped = ScopedRule(rule, Scope.QUERY, source)
        self._insert(scoped)
        return scoped

    def remove_source(self, source: str) -> int:
        """Drop every rule of a source (wrapper re-registration).  Returns
        the number of rules removed."""
        before = len(self._rules)
        self._rules = [s for s in self._rules if s.source != source]
        for key in [k for k in self._index if k[0] == source]:
            del self._index[key]
        for key in [k for k in self._pinned if k[0] == source]:
            del self._pinned[key]
        for key in [k for k in self._orders if k[0] == source]:
            del self._orders[key]
        return before - len(self._rules)

    # -- lookup --------------------------------------------------------------------

    def _candidate_rules(
        self, node: PlanNode, source: str | None
    ) -> Iterator[ScopedRule]:
        """Scoped rules that could match ``node`` owned by ``source``
        (``None`` = a mediator-local node), most specific first."""
        operator = node.operator_name
        if self.use_dispatch_index:
            buckets: list[list[ScopedRule]] = []
            if source is not None:
                pinned_key = self._pinned_key_for_node(node, source)
                if pinned_key is not None:
                    buckets.append(self._pinned.get(pinned_key, []))
                buckets.append(self._index.get((source, operator), []))
            buckets.append(self._index.get((MEDIATOR_SOURCE, operator), []))
            merged = [s for bucket in buckets for s in bucket]
        else:
            wanted_sources = {MEDIATOR_SOURCE}
            if source is not None:
                wanted_sources.add(source)
            merged = [
                s
                for s in self._rules
                if s.source in wanted_sources and s.rule.head.operator == operator
            ]
        # Mediator-local nodes must not see another wrapper's rules; and a
        # wrapper node must not use LOCAL-scope rules (the mediator runs a
        # physical algebra locally, §4.1 footnote).
        for scoped in sorted(merged, key=lambda s: s.sort_key):
            if source is None and scoped.scope not in (Scope.LOCAL, Scope.DEFAULT):
                continue
            if source is not None and scoped.scope is Scope.LOCAL:
                continue
            yield scoped

    def matches(self, node: PlanNode, source: str | None) -> list[RuleMatch]:
        """All rules matching ``node``, most specific first."""
        found: list[RuleMatch] = []
        for scoped in self._candidate_rules(node, source):
            bindings = scoped.rule.match(node)
            if bindings is not None:
                found.append(RuleMatch(scoped, bindings))
        return found

    def matches_providing(
        self, node: PlanNode, source: str | None, variable: str
    ) -> list[RuleMatch]:
        """The matches to use for one variable: every match at the highest
        matching level that provides the variable (§4.2 Steps 1 & 3)."""
        best_level: tuple[int, int, int, int] | None = None
        selected: list[RuleMatch] = []
        for scoped in self._candidate_rules(node, source):
            if variable not in scoped.rule.provides:
                continue
            bindings = scoped.rule.match(node)
            if bindings is None:
                continue
            match = RuleMatch(scoped, bindings)
            if best_level is None:
                best_level = match.level
                selected.append(match)
            elif match.level == best_level:
                selected.append(match)
            else:
                # Candidates are sorted, so the first lower level ends it.
                break
        return selected

    # -- introspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rules)

    def rules_for_source(self, source: str) -> list[ScopedRule]:
        return [s for s in self._rules if s.source == source]

    def describe(self) -> str:
        """Render the hierarchy, outermost (default) scope first —
        a textual Figure 10."""
        lines: list[str] = []
        by_scope: dict[Scope, list[ScopedRule]] = {}
        for scoped in self._rules:
            by_scope.setdefault(scoped.scope, []).append(scoped)
        for scope in sorted(by_scope, key=int):
            lines.append(f"{scope}:")
            for scoped in by_scope[scope]:
                lines.append(f"  [{scoped.source}] {scoped.rule}")
        return "\n".join(lines)
