"""Statistics exported by wrappers and stored in the mediator catalog.

Section 3.2 of the paper defines exactly which statistics a wrapper may
export through the two ``cardinality`` methods:

* ``extent(out CountObject, out TotalSize, out ObjectSize)`` — per
  collection: the number of objects, the total size in bytes, and the
  average object size in bytes.
* ``attribute(in AttributeName, out Indexed, out CountDistinct,
  out Min, out Max)`` — per attribute: whether an index exists, the number
  of distinct values, and the minimum and maximum values.

Because ``Min``/``Max`` may be of any type, the paper wraps them in a
polymorphic ``Constant``; :class:`Constant` plays that role here, ordering
numbers numerically and strings lexicographically, and exposing a numeric
projection so selectivity arithmetic works on either.

Figure 7 fixes the naming scheme under which formulas reference these
values (``C.CountObject``, ``C.A.CountDistinct``, ...); that scheme is
implemented by :meth:`CollectionStats.lookup`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import UnknownStatisticError

#: Statistic names valid at collection level (Figure 7).
COLLECTION_STATISTICS = ("CountObject", "TotalSize", "ObjectSize")

#: Statistic names valid at attribute level (Figure 7).
ATTRIBUTE_STATISTICS = ("Indexed", "CountDistinct", "Min", "Max")


class Constant:
    """Polymorphic constant for attribute Min/Max values (§3.2).

    Wraps either a number or a string.  Comparisons require both operands
    to be of the same kind, mirroring typed attributes.  ``as_number``
    maps strings onto a numeric scale using their first characters so the
    uniform-selectivity estimate of the generic cost model can interpolate
    over string ranges too (a standard optimizer trick).
    """

    __slots__ = ("value",)

    def __init__(self, value: float | int | str | "Constant") -> None:
        if isinstance(value, Constant):
            value = value.value
        if not isinstance(value, (int, float, str)):
            raise TypeError(f"Constant must wrap a number or string, got {value!r}")
        self.value = value

    @property
    def is_numeric(self) -> bool:
        return isinstance(self.value, (int, float))

    def as_number(self) -> float:
        """Project the constant onto a numeric axis.

        Numbers map to themselves.  Strings map to a base-256 fraction of
        their first eight characters, which preserves lexicographic order:
        ``Constant("a").as_number() < Constant("b").as_number()``.
        """
        if isinstance(self.value, (int, float)):
            return float(self.value)
        total = 0.0
        for position, char in enumerate(self.value[:8]):
            total += min(ord(char), 255) / (256.0 ** (position + 1))
        return total

    def _check_comparable(self, other: object) -> "Constant":
        other_const = other if isinstance(other, Constant) else Constant(other)  # type: ignore[arg-type]
        if self.is_numeric != other_const.is_numeric:
            raise TypeError(
                f"cannot compare {self.value!r} with {other_const.value!r}"
            )
        return other_const

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (Constant, int, float, str)):
            return NotImplemented
        other_const = other if isinstance(other, Constant) else Constant(other)
        return self.value == other_const.value

    def __lt__(self, other: object) -> bool:
        return self.value < self._check_comparable(other).value  # type: ignore[operator]

    def __le__(self, other: object) -> bool:
        return self.value <= self._check_comparable(other).value  # type: ignore[operator]

    def __gt__(self, other: object) -> bool:
        return self.value > self._check_comparable(other).value  # type: ignore[operator]

    def __ge__(self, other: object) -> bool:
        return self.value >= self._check_comparable(other).value  # type: ignore[operator]

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


@dataclass
class AttributeStats:
    """Statistics of one attribute of one collection (§3.2).

    Attributes:
        name: the attribute name.
        indexed: whether the source maintains an index on the attribute.
        count_distinct: number of distinct values in the extent.
        min_value: smallest value, or ``None`` when unknown.
        max_value: largest value, or ``None`` when unknown.
    """

    name: str
    indexed: bool = False
    count_distinct: int | None = None
    min_value: Constant | None = None
    max_value: Constant | None = None

    def __post_init__(self) -> None:
        if self.min_value is not None and not isinstance(self.min_value, Constant):
            self.min_value = Constant(self.min_value)
        if self.max_value is not None and not isinstance(self.max_value, Constant):
            self.max_value = Constant(self.max_value)
        if self.count_distinct is not None and self.count_distinct < 0:
            raise ValueError(
                f"CountDistinct must be non-negative, got {self.count_distinct}"
            )

    def lookup(self, statistic: str) -> float | bool | Constant:
        """Resolve an attribute-level statistic by its Figure 7 name."""
        if statistic == "Indexed":
            return self.indexed
        if statistic == "CountDistinct":
            if self.count_distinct is None:
                raise UnknownStatisticError(
                    f"CountDistinct unknown for attribute {self.name!r}"
                )
            return float(self.count_distinct)
        if statistic == "Min":
            if self.min_value is None:
                raise UnknownStatisticError(f"Min unknown for attribute {self.name!r}")
            return self.min_value
        if statistic == "Max":
            if self.max_value is None:
                raise UnknownStatisticError(f"Max unknown for attribute {self.name!r}")
            return self.max_value
        raise UnknownStatisticError(
            f"{statistic!r} is not an attribute statistic "
            f"(expected one of {ATTRIBUTE_STATISTICS})"
        )

    @property
    def has_range(self) -> bool:
        """True when both Min and Max are known."""
        return self.min_value is not None and self.max_value is not None


@dataclass
class CollectionStats:
    """Statistics of one collection, as returned by the two cardinality
    methods of §3.2 plus the per-attribute map.

    Attributes:
        name: collection name as exported by the wrapper.
        count_object: number of objects in the extent.
        total_size: extent size in bytes.
        object_size: average object size in bytes.
        attributes: per-attribute statistics keyed by attribute name.
    """

    name: str
    count_object: int
    total_size: int
    object_size: int
    attributes: dict[str, AttributeStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.count_object < 0:
            raise ValueError(f"CountObject must be non-negative: {self.count_object}")
        if self.total_size < 0:
            raise ValueError(f"TotalSize must be non-negative: {self.total_size}")
        if self.object_size < 0:
            raise ValueError(f"ObjectSize must be non-negative: {self.object_size}")

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_extent(
        cls,
        name: str,
        count_object: int,
        object_size: int,
        attributes: Iterable[AttributeStats] = (),
    ) -> "CollectionStats":
        """Build stats deriving TotalSize from count and average size."""
        return cls(
            name=name,
            count_object=count_object,
            total_size=count_object * object_size,
            object_size=object_size,
            attributes={attr.name: attr for attr in attributes},
        )

    def add_attribute(self, stats: AttributeStats) -> None:
        self.attributes[stats.name] = stats

    def attribute(self, name: str) -> AttributeStats:
        try:
            return self.attributes[name]
        except KeyError:
            raise UnknownStatisticError(
                f"collection {self.name!r} has no statistics for attribute {name!r}"
            ) from None

    # -- Figure 7 name resolution ---------------------------------------------

    def lookup(
        self, statistic: str, attribute: str | None = None
    ) -> float | bool | Constant:
        """Resolve ``C.Statistic`` or ``C.Attribute.Statistic`` (Figure 7)."""
        if attribute is None:
            if statistic == "CountObject":
                return float(self.count_object)
            if statistic == "TotalSize":
                return float(self.total_size)
            if statistic == "ObjectSize":
                return float(self.object_size)
            raise UnknownStatisticError(
                f"{statistic!r} is not a collection statistic "
                f"(expected one of {COLLECTION_STATISTICS})"
            )
        return self.attribute(attribute).lookup(statistic)

    @property
    def page_estimate(self) -> int:
        """Number of pages the extent occupies at 4096-byte pages.

        Only an estimate for formulas that need ``CountPage`` but whose
        wrapper did not export a page size; the Figure 13 rule computes its
        own page count from ``TotalSize / PageSize``.
        """
        return max(1, math.ceil(self.total_size / 4096))


class StatisticsCatalog:
    """All collection statistics known to a mediator, keyed by name.

    The catalog is filled during the registration phase (§2.1) and consulted
    by the cost estimator whenever a formula references a statistic path.
    Collection names are unique mediator-wide; the mediator catalog proper
    (``repro.mediator.catalog``) additionally remembers which wrapper owns
    which collection.
    """

    def __init__(self) -> None:
        self._collections: dict[str, CollectionStats] = {}

    def put(self, stats: CollectionStats) -> None:
        """Insert or replace statistics for a collection."""
        self._collections[stats.name] = stats

    def get(self, name: str) -> CollectionStats:
        try:
            return self._collections[name]
        except KeyError:
            raise UnknownStatisticError(
                f"no statistics registered for collection {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def __iter__(self) -> Iterator[CollectionStats]:
        return iter(self._collections.values())

    def __len__(self) -> int:
        return len(self._collections)

    def names(self) -> list[str]:
        return sorted(self._collections)

    def as_mapping(self) -> Mapping[str, CollectionStats]:
        """Read-only view used by formula evaluation environments."""
        return dict(self._collections)

    def remove(self, name: str) -> None:
        """Drop a collection's statistics (e.g. wrapper re-registration)."""
        self._collections.pop(name, None)
