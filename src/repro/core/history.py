"""Historical costs — the §4.3.1 extension.

Two mechanisms, both described in the paper:

* **Query-scope recording** ("A simple way to have very accurate cost is
  to extend the scope hierarchy with a query scope.  In the query scope,
  specific rules match a wrapper subquery exactly.  A new formula is added
  after a subquery has been executed and the associated formula are now
  real costs, not estimates."): :class:`HistoryStore` turns each executed
  wrapper subquery into a query-scope rule whose formulas are the measured
  constants.  Re-executing the same subquery *updates* the rule in place,
  so history never proliferates rules for one subquery — addressing the
  HERMES statistics-proliferation problem the paper discusses.

* **Parameter adjustment** ("One solution takes existing formulas and
  adjusts the input parameters until the formula returns a cost close to
  real execution the cost.  Thus, we store only the adjusted parameters
  instead of new formulas."): :class:`OnlineCalibrator` maintains one
  multiplicative adjustment per source — an exponentially smoothed ratio
  of actual to estimated cost — and applies it to the source's calibrated
  coefficients, so *all* formulas sharing those parameters improve at
  once, including for nearby (not identical) subqueries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.algebra.logical import PlanNode, Submit
from repro.core.formulas import Number, Formula
from repro.core.generic import CoefficientSet, GenericCoefficients
from repro.core.rules import CostRule, OperatorPattern, Var
from repro.core.scopes import RuleRepository

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mediator.catalog import MediatorCatalog
    from repro.wrappers.base import ExecutionResult


def plan_fingerprint(plan: PlanNode) -> str:
    """A structural identity for a subplan: operators, collections,
    predicates and constants — two subqueries with the same fingerprint
    are "identical" in the §4.3.1 sense."""
    children = ",".join(plan_fingerprint(child) for child in plan.children)
    return f"{plan.describe()}({children})"


class ExactSubplanPattern(OperatorPattern):
    """A rule head that matches one exact subplan (the query scope).

    Reuses the :class:`OperatorPattern` machinery (so scoped storage,
    ordering and matching all work unchanged) but unifies by structural
    fingerprint instead of argument patterns.
    """

    def __init__(self, plan: PlanNode) -> None:
        expected = 2 if plan.operator_name in ("join", "union") else 1
        object.__setattr__(self, "operator", plan.operator_name)
        object.__setattr__(
            self, "collections", tuple(Var(f"_Q{i}") for i in range(expected))
        )
        object.__setattr__(self, "predicate", None)
        object.__setattr__(self, "fingerprint", plan_fingerprint(plan))

    def specificity(self) -> tuple[int, int, int, int]:
        # Everything is bound in an exact match.
        return (9, 9, 9, 9)

    def match(self, node: PlanNode):
        if plan_fingerprint(node) == self.fingerprint:  # type: ignore[attr-defined]
            return {}
        return None

    def __str__(self) -> str:
        return f"exact[{self.fingerprint}]"  # type: ignore[attr-defined]


def _constant_formulas(values: dict[str, float]) -> list[Formula]:
    return [
        Formula(target=name, expression=Number(value), source=f"{name} = {value} (measured)")
        for name, value in values.items()
    ]


@dataclass
class HistoryEntry:
    """Bookkeeping for one recorded subquery."""

    rule: CostRule
    executions: int = 0
    last_total_ms: float = 0.0


class HistoryStore:
    """Query-scope rules recorded from real executions."""

    def __init__(self, repository: RuleRepository) -> None:
        self.repository = repository
        self._entries: dict[tuple[str, str], HistoryEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def record(
        self,
        subplan: PlanNode,
        source: str,
        result: "ExecutionResult",
        object_size: int = 100,
    ) -> HistoryEntry:
        """Record one executed wrapper subquery.

        First execution installs a query-scope rule with the measured
        constants; later executions of the *same* subquery update the
        formulas in place ("two executions of the same subquery have the
        same cost regardless of differences in time").
        """
        fingerprint = plan_fingerprint(subplan)
        key = (source, fingerprint)
        values = {
            "TotalTime": float(result.total_time_ms),
            "TimeFirst": float(result.time_first_ms),
            "CountObject": float(result.count),
            "TotalSize": float(result.count * object_size),
        }
        entry = self._entries.get(key)
        if entry is None:
            rule = CostRule(
                head=ExactSubplanPattern(subplan),
                formulas=_constant_formulas(values),
                name=f"history[{fingerprint}]",
            )
            self.repository.add_query_rule(source, rule)
            entry = HistoryEntry(rule=rule)
            self._entries[key] = entry
        else:
            entry.rule.formulas = _constant_formulas(values)
        entry.executions += 1
        entry.last_total_ms = values["TotalTime"]
        return entry

    def record_plan(
        self,
        plan: PlanNode,
        execution: Any,
        catalog: "MediatorCatalog",
    ) -> int:
        """Record every Submit subquery of an executed plan.

        ``execution`` may carry per-submit measurements (the mediator
        executor's ``submit_log``); without them nothing is recorded.
        """
        recorded = 0
        submit_log = getattr(execution, "submit_log", None)
        if not submit_log:
            return 0
        for node, result in submit_log:
            assert isinstance(node, Submit)
            object_size = 100
            primary = node.child.primary_collection()
            if primary is not None and primary in catalog.statistics:
                object_size = max(1, catalog.statistics.get(primary).object_size)
            self.record(node.child, node.wrapper, result, object_size)
            recorded += 1
        return recorded


@dataclass
class _Adjustment:
    factor: float = 1.0
    observations: int = 0


class OnlineCalibrator:
    """Per-source multiplicative parameter adjustment (§4.3.1).

    ``alpha`` is the smoothing weight of new observations.  The adjusted
    coefficient sets produced by :meth:`apply` improve every generic-model
    formula of the source simultaneously — including for subqueries that
    "vary only by the constant used [in] a predicate", which query-scope
    recording cannot help with.
    """

    def __init__(self, alpha: float = 0.4) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._adjustments: dict[str, _Adjustment] = {}

    def observe(self, source: str, estimated_ms: float, actual_ms: float) -> float:
        """Fold one (estimate, measurement) pair in; returns the factor."""
        if estimated_ms <= 0:
            return self.factor(source)
        ratio = actual_ms / estimated_ms
        adjustment = self._adjustments.setdefault(source, _Adjustment())
        if adjustment.observations == 0:
            adjustment.factor = ratio
        else:
            adjustment.factor += self.alpha * (ratio - adjustment.factor)
        adjustment.observations += 1
        return adjustment.factor

    def factor(self, source: str) -> float:
        adjustment = self._adjustments.get(source)
        return adjustment.factor if adjustment is not None else 1.0

    def apply(self, coefficients: CoefficientSet) -> None:
        """Install adjusted per-source coefficients into a set."""
        for source, adjustment in self._adjustments.items():
            base: GenericCoefficients = coefficients.for_source(source)
            coefficients.set_source(source, base.scaled(adjustment.factor))
