"""Selectivity estimation and page-access models.

Three families of estimators from the paper:

* **Uniform estimates** (§2.3): the generic cost model derives the
  selectivity of a restriction from ``Min``, ``Max`` and ``CountDistinct``
  of the restricted attribute — ``1 / CountDistinct`` for equality and
  linear interpolation over ``[Min, Max]`` for ranges.  Join selectivity is
  ``1 / max(CountDistinct(A), CountDistinct(B))`` (the paper's
  ``1/Min(...)`` denotes the smaller *cardinality factor*, i.e. the usual
  System-R estimate).
* **Histograms** (§3.3.2): the ad-hoc ``selectivity(A, V)`` function a
  wrapper implementor may export "could handle, for example, histogram
  statistics [IP95, PIHS96]".  :class:`EquiWidthHistogram` and
  :class:`EquiDepthHistogram` implement the two classical shapes.
* **Yao's formula** (§5, [Yao77]): the expected fraction of pages fetched
  by an index scan that touches ``k`` of ``n`` records spread over ``m``
  pages.  Both the exact form and the exponential approximation the paper
  prints (``1 - exp(-sel * CountObject / CountPage)``) are provided; the
  approximation is what Figure 13's wrapper rule ships to the mediator.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Sequence

from repro.core.statistics import AttributeStats, Constant

# ---------------------------------------------------------------------------
# Uniform estimates (generic cost model, §2.3)
# ---------------------------------------------------------------------------


def equality_selectivity(stats: AttributeStats) -> float:
    """Selectivity of ``A = v`` under uniformity: ``1 / CountDistinct``.

    Falls back to 0.1 (the classical System-R default) when the distinct
    count is unknown, mirroring "standard values are given, as usual" (§6).
    """
    if not stats.count_distinct:
        return 0.1
    return 1.0 / stats.count_distinct


def range_selectivity(
    stats: AttributeStats,
    low: Constant | float | str | None,
    high: Constant | float | str | None,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Selectivity of ``low <= A <= high`` by linear interpolation.

    Either bound may be ``None`` (one-sided range).  When the attribute's
    Min/Max are unknown the System-R default of 1/3 is returned.  The
    result is clamped to ``[0, 1]``.
    """
    if not stats.has_range:
        return 1.0 / 3.0
    minimum = stats.min_value.as_number()  # type: ignore[union-attr]
    maximum = stats.max_value.as_number()  # type: ignore[union-attr]
    width = maximum - minimum
    if width <= 0:
        # Single-valued domain: any compatible range keeps everything.
        return 1.0
    low_n = minimum if low is None else Constant(low).as_number()
    high_n = maximum if high is None else Constant(high).as_number()
    low_n = max(low_n, minimum)
    high_n = min(high_n, maximum)
    if high_n < low_n:
        return 0.0
    fraction = (high_n - low_n) / width
    # Half-open bounds shave off one distinct value's worth of mass.
    if stats.count_distinct:
        step = 1.0 / stats.count_distinct
        if not low_inclusive:
            fraction -= step
        if not high_inclusive:
            fraction -= step
    return min(1.0, max(0.0, fraction))


def inequality_selectivity(stats: AttributeStats) -> float:
    """Selectivity of ``A != v``: complement of the equality estimate."""
    return max(0.0, 1.0 - equality_selectivity(stats))


def join_selectivity(left: AttributeStats, right: AttributeStats) -> float:
    """Equi-join selectivity ``1 / max(d(A), d(B))`` (§2.3).

    With unknown distinct counts on both sides, falls back to 0.01.
    """
    distinct_counts = [
        stats.count_distinct
        for stats in (left, right)
        if stats.count_distinct
    ]
    if not distinct_counts:
        return 0.01
    return 1.0 / max(distinct_counts)


# ---------------------------------------------------------------------------
# Histograms (§3.3.2 ad-hoc selectivity functions)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket over ``[low, high)`` holding ``count`` values."""

    low: float
    high: float
    count: int
    distinct: int = 1

    @property
    def width(self) -> float:
        return self.high - self.low


class _Histogram:
    """Shared estimation logic over a list of sorted buckets."""

    def __init__(self, buckets: Sequence[Bucket], total: int) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = list(buckets)
        self.total = total

    def selectivity_eq(self, value: float) -> float:
        """Estimate ``P(A = value)`` assuming uniformity inside a bucket.

        Heavily skewed data produces zero-width buckets (all copies of one
        value); every bucket whose range contains the value contributes.
        """
        if self.total == 0:
            return 0.0
        mass = 0.0
        for bucket in self.buckets:
            if bucket.width == 0:
                if value == bucket.low:
                    mass += bucket.count
            elif bucket.low <= value < bucket.high or (
                value == bucket.high and bucket is self.buckets[-1]
            ):
                mass += bucket.count / max(1, bucket.distinct)
        return min(1.0, mass / self.total)

    def selectivity_range(
        self, low: float | None, high: float | None
    ) -> float:
        """Estimate ``P(low <= A <= high)`` with partial-bucket scaling."""
        if self.total == 0:
            return 0.0
        low_v = self.buckets[0].low if low is None else low
        high_v = self.buckets[-1].high if high is None else high
        if high_v < low_v:
            return 0.0
        covered = 0.0
        for bucket in self.buckets:
            if bucket.width == 0:
                # Degenerate single-value bucket: count it whenever its
                # value falls inside the queried range.
                if low_v <= bucket.low <= high_v:
                    covered += bucket.count
                continue
            overlap_low = max(bucket.low, low_v)
            overlap_high = min(bucket.high, high_v)
            if overlap_high <= overlap_low:
                continue
            covered += bucket.count * (overlap_high - overlap_low) / bucket.width
        return min(1.0, covered / self.total)


class EquiWidthHistogram(_Histogram):
    """Histogram whose buckets all span the same value range [IP95]."""

    @classmethod
    def build(
        cls, values: Sequence[float], bucket_count: int = 10
    ) -> "EquiWidthHistogram":
        if not values:
            raise ValueError("cannot build a histogram from no values")
        if bucket_count < 1:
            raise ValueError("bucket_count must be >= 1")
        ordered = sorted(float(v) for v in values)
        low, high = ordered[0], ordered[-1]
        if high == low:
            return cls([Bucket(low, high, len(ordered), 1)], len(ordered))
        width = (high - low) / bucket_count
        buckets: list[Bucket] = []
        for index in range(bucket_count):
            b_low = low + index * width
            b_high = high if index == bucket_count - 1 else b_low + width
            left = bisect_left(ordered, b_low)
            right = (
                len(ordered)
                if index == bucket_count - 1
                else bisect_left(ordered, b_high)
            )
            members = ordered[left:right]
            buckets.append(
                Bucket(b_low, b_high, len(members), max(1, len(set(members))))
            )
        return cls(buckets, len(ordered))


class EquiDepthHistogram(_Histogram):
    """Histogram whose buckets all hold the same number of values [PIHS96]."""

    @classmethod
    def build(
        cls, values: Sequence[float], bucket_count: int = 10
    ) -> "EquiDepthHistogram":
        if not values:
            raise ValueError("cannot build a histogram from no values")
        if bucket_count < 1:
            raise ValueError("bucket_count must be >= 1")
        ordered = sorted(float(v) for v in values)
        total = len(ordered)
        bucket_count = min(bucket_count, total)
        depth = total / bucket_count
        buckets: list[Bucket] = []
        for index in range(bucket_count):
            left = round(index * depth)
            right = total if index == bucket_count - 1 else round((index + 1) * depth)
            members = ordered[left:right]
            if not members:
                continue
            b_low = members[0]
            b_high = ordered[right] if right < total else members[-1]
            buckets.append(
                Bucket(b_low, b_high, len(members), max(1, len(set(members))))
            )
        return cls(buckets, total)


# ---------------------------------------------------------------------------
# Yao's formula (§5)
# ---------------------------------------------------------------------------


def yao_exact(count_object: int, count_page: int, selected: int) -> float:
    """Exact expected number of pages touched [Yao77].

    Selecting ``selected`` of ``count_object`` records uniformly at random
    without replacement, with records packed ``count_object / count_page``
    per page, the expected number of distinct pages fetched is::

        m * (1 - C(n - n/m, k) / C(n, k))

    computed here in a numerically stable product form.
    """
    if count_page <= 0 or count_object <= 0:
        return 0.0
    selected = max(0, min(selected, count_object))
    if selected == 0:
        return 0.0
    per_page = count_object / count_page
    # probability that a fixed page is *missed* by all k picks
    miss = 1.0
    for pick in range(selected):
        numerator = count_object - per_page - pick
        denominator = count_object - pick
        if numerator <= 0:
            miss = 0.0
            break
        miss *= numerator / denominator
    # With fewer objects than pages (n/m < 1) the model's expectation can
    # exceed the pick count; clamp to the trivial bounds.
    return min(count_page * (1.0 - miss), float(selected))


def yao_fraction(selectivity: float, count_object: int, count_page: int) -> float:
    """The paper's exponential approximation of Yao's formula.

    ``Yao(sel) = 1 - exp(-sel * CountObject / CountPage)`` — the fraction
    of pages fetched by an index scan of the given selectivity (§5).
    """
    if count_page <= 0:
        return 0.0
    selectivity = max(0.0, min(1.0, selectivity))
    return 1.0 - math.exp(-selectivity * count_object / count_page)


def yao_pages(selectivity: float, count_object: int, count_page: int) -> float:
    """Expected page count via the exponential approximation."""
    return count_page * yao_fraction(selectivity, count_object, count_page)


def index_scan_cost_yao(
    selectivity: float,
    count_object: int,
    count_page: int,
    io_ms: float = 25.0,
    output_ms: float = 9.0,
) -> float:
    """The corrected index-scan cost formula of §5 (and Figure 13)::

        cost = IO * CountPage * Yao(sel) + sel * CountObject * Output

    Defaults use the paper's constants, expressed in milliseconds
    (IO = 0.025 s, Output = 0.009 s).
    """
    selected = selectivity * count_object
    return (
        io_ms * yao_pages(selectivity, count_object, count_page)
        + selected * output_ms
    )


def index_scan_cost_linear(
    selectivity: float,
    count_object: int,
    ms_per_selected_object: float,
) -> float:
    """The *calibrated* linear estimate Figure 12 shows overshooting.

    The calibration approach of [DKS92]/[GST96] fits a single per-result
    coefficient on probe queries and assumes response time proportional to
    the number of selected objects ("the number of pages fetched is
    proportional to the selectivity", §5).  Because the true page-access
    curve saturates (Yao), a coefficient fitted on low-selectivity probes
    overshoots at high selectivity — the gap Figure 12 displays.  The
    coefficient itself comes from :mod:`repro.core.calibration`.
    """
    selectivity = max(0.0, min(1.0, selectivity))
    return ms_per_selected_object * selectivity * count_object
