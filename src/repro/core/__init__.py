"""The paper's primary contribution: the extensible blended cost model."""

from repro.core.calibration import CalibrationResult, calibrate_wrapper
from repro.core.estimator import (
    ConflictPolicy,
    CostEstimator,
    EstimatorOptions,
    NodeEstimate,
    PlanEstimate,
    SourceEnvironment,
)
from repro.core.generic import (
    CoefficientSet,
    GenericCoefficients,
    install_generic_model,
    install_local_model,
    standard_repository,
)
from repro.core.history import HistoryStore, OnlineCalibrator, plan_fingerprint
from repro.core.rules import (
    CostRule,
    OperatorPattern,
    join_pattern,
    rule,
    scan_pattern,
    select_eq_pattern,
    select_pattern,
    var,
)
from repro.core.scopes import RuleRepository, Scope
from repro.core.selectivity import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    index_scan_cost_linear,
    index_scan_cost_yao,
    yao_exact,
    yao_fraction,
    yao_pages,
)
from repro.core.statistics import (
    AttributeStats,
    CollectionStats,
    Constant,
    StatisticsCatalog,
)

__all__ = [
    "AttributeStats",
    "CalibrationResult",
    "CoefficientSet",
    "CollectionStats",
    "ConflictPolicy",
    "Constant",
    "CostEstimator",
    "CostRule",
    "EquiDepthHistogram",
    "EquiWidthHistogram",
    "EstimatorOptions",
    "GenericCoefficients",
    "HistoryStore",
    "NodeEstimate",
    "OnlineCalibrator",
    "OperatorPattern",
    "PlanEstimate",
    "RuleRepository",
    "Scope",
    "SourceEnvironment",
    "StatisticsCatalog",
    "calibrate_wrapper",
    "index_scan_cost_linear",
    "index_scan_cost_yao",
    "install_generic_model",
    "install_local_model",
    "join_pattern",
    "plan_fingerprint",
    "rule",
    "scan_pattern",
    "select_eq_pattern",
    "select_pattern",
    "standard_repository",
    "var",
    "yao_exact",
    "yao_fraction",
    "yao_pages",
]
