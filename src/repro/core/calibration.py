"""The calibration procedure of [DKS92]/[GST96] (§5, related work §6).

"First, several invariant coefficients appearing in cost formulas are
isolated.  Then, a set of queries on a calibrating database on each local
site are run to deduce cost formula coefficients."

:func:`calibrate_wrapper` reproduces that procedure against any wrapper:

* **sequential-scan probes** — one full scan per collection; a least
  squares fit of ``time = startup + per_object * N`` over the probes
  yields ``ms_scan_startup`` / ``ms_per_object_scanned``;
* **index probes** — low-selectivity range selections on an indexed
  attribute; fitting ``time = startup + per_selected * k`` yields the
  *linear* index-scan model (``ms_index_startup`` /
  ``ms_per_object_index``).

The linear index model is exactly the "calibrated formula" of Figure 12:
it matches the probes but, because the true page-access curve saturates
(Yao), it overshoots at high selectivity.  The Figure 12 benchmark uses
this module for its Calibration series.

Calibration is the no-rules end of the paper's spectrum: "the two extremes
indeed encompass calibration (i.e., no specific rules for a data source)
and historical query caching" (§1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.algebra.expressions import Comparison, attr, lit
from repro.algebra.logical import Scan, Select
from repro.core.generic import GenericCoefficients
from repro.core.statistics import CollectionStats
from repro.errors import CalibrationError
from repro.wrappers.base import Wrapper

#: Probe selectivities of the calibrating workload: low values, as a
#: calibrating database keeps probe queries cheap.
DEFAULT_PROBE_SELECTIVITIES = (0.005, 0.01, 0.02, 0.05, 0.10)


@dataclass(frozen=True)
class ProbeObservation:
    """One calibration probe: what ran and what was measured."""

    kind: str  # 'scan' or 'index'
    collection: str
    selectivity: float
    rows: int
    measured_ms: float


@dataclass
class CalibrationResult:
    """Fitted coefficients plus the raw probe data."""

    coefficients: GenericCoefficients
    observations: list[ProbeObservation] = field(default_factory=list)

    def predicted_index_ms(self, selected: float) -> float:
        """The calibrated (linear) index-scan estimate for ``selected``
        result objects — the Figure 12 "Calibration" curve."""
        return (
            self.coefficients.ms_index_startup
            + self.coefficients.ms_per_object_index * selected
        )

    def predicted_scan_ms(self, count: float) -> float:
        return (
            self.coefficients.ms_scan_startup
            + self.coefficients.ms_per_object_scanned * count
        )


def _numeric_indexed_attribute(stats: CollectionStats) -> str | None:
    """An indexed attribute with a numeric range, preferring more distinct
    values (better probe resolution)."""
    best: tuple[int, str] | None = None
    for attribute in stats.attributes.values():
        if not attribute.indexed or not attribute.has_range:
            continue
        if not attribute.min_value.is_numeric:  # type: ignore[union-attr]
            continue
        distinct = attribute.count_distinct or 0
        if best is None or distinct > best[0]:
            best = (distinct, attribute.name)
    return best[1] if best is not None else None


def _fit_line(xs: list[float], ys: list[float]) -> tuple[float, float]:
    """Least-squares fit of ``y = intercept + slope * x`` with a
    non-negative intercept (startup costs cannot be negative)."""
    if len(xs) == 1:
        return 0.0, ys[0] / xs[0] if xs[0] else 0.0
    matrix = np.column_stack([np.ones(len(xs)), np.asarray(xs, dtype=float)])
    solution, *_ = np.linalg.lstsq(matrix, np.asarray(ys, dtype=float), rcond=None)
    intercept, slope = float(solution[0]), float(solution[1])
    if intercept < 0:
        # Refit through the origin.
        xs_arr = np.asarray(xs, dtype=float)
        ys_arr = np.asarray(ys, dtype=float)
        denominator = float(xs_arr @ xs_arr)
        slope = float(xs_arr @ ys_arr) / denominator if denominator else 0.0
        intercept = 0.0
    return intercept, max(0.0, slope)


def _fit_proportional(xs: list[float], ys: list[float]) -> float:
    """Least-squares fit of ``y = slope * x`` through the origin."""
    xs_arr = np.asarray(xs, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    denominator = float(xs_arr @ xs_arr)
    if denominator == 0:
        return 0.0
    return max(0.0, float(xs_arr @ ys_arr) / denominator)


def calibrate_wrapper(
    wrapper: Wrapper,
    collections: list[str] | None = None,
    probe_selectivities: tuple[float, ...] = DEFAULT_PROBE_SELECTIVITIES,
    base: GenericCoefficients | None = None,
) -> CalibrationResult:
    """Run the calibrating workload against a wrapper and fit coefficients.

    Args:
        wrapper: the wrapper to probe (its simulated clock advances).
        collections: which collections to probe (default: all with
            statistics).
        probe_selectivities: range-selection selectivities of the index
            probes (low values, per the calibrating-database tradition).
        base: coefficients to start from; only the scan/index entries are
            replaced by fitted values.

    Raises:
        CalibrationError: no probe-able collection was found.
    """
    export = wrapper.export_cost_info()
    stats_by_name = {s.name: s for s in export.statistics}
    if collections is None:
        collections = sorted(stats_by_name)
    if not collections:
        raise CalibrationError(
            f"wrapper {wrapper.name!r} exports no statistics to calibrate against"
        )

    observations: list[ProbeObservation] = []
    scan_points: list[tuple[float, float]] = []
    index_points: list[tuple[float, float]] = []

    for collection in collections:
        stats = stats_by_name.get(collection)
        if stats is None or stats.count_object == 0:
            continue
        # Sequential-scan probe.
        result = wrapper.execute(Scan(collection))
        scan_points.append((float(result.count), result.total_time_ms))
        observations.append(
            ProbeObservation(
                kind="scan",
                collection=collection,
                selectivity=1.0,
                rows=result.count,
                measured_ms=result.total_time_ms,
            )
        )
        # Index probes on a numeric indexed attribute, if any.
        attribute = _numeric_indexed_attribute(stats)
        if attribute is None:
            continue
        attr_stats = stats.attribute(attribute)
        low = attr_stats.min_value.as_number()  # type: ignore[union-attr]
        high = attr_stats.max_value.as_number()  # type: ignore[union-attr]
        for selectivity in probe_selectivities:
            threshold = low + selectivity * (high - low)
            plan = Select(
                Scan(collection), Comparison("<=", attr(attribute), lit(threshold))
            )
            result = wrapper.execute(plan)
            index_points.append((float(result.count), result.total_time_ms))
            observations.append(
                ProbeObservation(
                    kind="index",
                    collection=collection,
                    selectivity=selectivity,
                    rows=result.count,
                    measured_ms=result.total_time_ms,
                )
            )

    if not scan_points:
        raise CalibrationError(
            f"wrapper {wrapper.name!r}: no collection could be probed"
        )

    coefficients = replace(base) if base is not None else GenericCoefficients()
    startup, per_object = _fit_line(
        [n for n, _ in scan_points], [t for _, t in scan_points]
    )
    coefficients.ms_scan_startup = startup
    coefficients.ms_per_object_scanned = per_object
    if index_points:
        # The calibrated index model is *proportional*: "The formula
        # assumes that the number of pages fetched is proportional to the
        # selectivity of the operator" (§5).  Because the true page-access
        # curve is concave (Yao), the fitted slope is inflated by the
        # steep low-selectivity probes — the Figure 12 overshoot.
        per_selected = _fit_proportional(
            [n for n, _ in index_points], [t for _, t in index_points]
        )
        coefficients.ms_index_startup = 0.0
        coefficients.ms_per_object_index = per_selected
    return CalibrationResult(coefficients=coefficients, observations=observations)
