"""The mediator's generic cost model (§2.3).

"When no specific information are given by wrappers, the mediator
estimates the cost of plans using a cost model ... for simplicity, the
generic cost model does not separate CPU and IO costs, which are buried in
global cost formulas parameters."

The model distinguishes, exactly as the paper describes:

* **unary operators** — two cases, *sequential scan* and *index scan*; the
  relevant one is selected through the index-presence statistic and, per
  §4.2 Step 3, by installing both formulas at the same matching level so
  the cheaper estimate wins;
* **binary operators** — three cases, *index join*, *nested loops* and
  *sort-merge*: "When an index is existing, the index join formula is
  selected, otherwise the best of the two others is chosen" — again
  realized as three same-level rules racing to the lowest value;
* selectivities derived from ``Min``/``Max``/``CountDistinct`` (§2.3), and
  join cardinality from ``1 / max(CountDistinct(A), CountDistinct(B))``.

Every rule is installed at **default scope**, so any wrapper-exported rule
at wrapper/collection/predicate scope overrides it per variable — that is
the leverage mechanism of the paper's title.  A parallel set with
mediator-local coefficients is installed at **local scope** for operators
the mediator executes itself (§4.1 footnote).

The numeric coefficients live in :class:`GenericCoefficients`; the
calibration procedure (:mod:`repro.core.calibration`) estimates them per
source class, following [DKS92]/[GST96].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.algebra.expressions import (
    And,
    AttributeRef,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.algebra.logical import BindJoin, Join, PlanNode, Scan, Select, Submit
from repro.core import selectivity as sel_mod
from repro.sources.clock import ParallelClock
from repro.core.formulas import PythonFormula, Value
from repro.core.rules import (
    CostRule,
    OperatorPattern,
    join_pattern,
    scan_pattern,
    select_pattern,
    unary_pattern,
    union_pattern,
    var,
)
from repro.core.scopes import RuleRepository
from repro.core.statistics import AttributeStats

#: An "impossible" cost used by method formulas that do not apply (no
#: index, wrong shape).  Under the lowest-value policy it simply loses.
NOT_APPLICABLE = math.inf

#: Fan-out network multiplier for scatter communication (Snippet 3's
#: multi-node scan factor): a full S-shard scatter serializes its
#: per-branch transfers through the mediator's network interface under
#: contention, priced at this multiple of the lone-branch cost.  A
#: pruned single-shard lookup pays multiplier 1 — the Snippet 3
#: "sharding access fraction" (~0.1 at S=10) then falls out of simply
#: not paying the other S-1 branches.
SCATTER_NETWORK_MULTIPLIER = 5.0


@dataclass
class GenericCoefficients:
    """The calibrated time parameters of the generic model (milliseconds).

    Names follow the three-form scheme of §2.3 — overheads feed
    ``TimeFirst``, per-object terms feed ``TimeNext``/``TotalTime``.
    """

    # unary operators
    ms_scan_startup: float = 100.0
    ms_per_object_scanned: float = 10.0
    ms_index_startup: float = 50.0
    ms_per_object_index: float = 12.0
    ms_per_object_filter: float = 0.5
    ms_per_object_project: float = 0.2
    # binary operators
    ms_per_pair_nested_loop: float = 0.2
    ms_sort_factor: float = 0.8
    ms_per_object_merge: float = 0.4
    ms_per_probe_index_join: float = 26.0
    ms_per_object_fetch: float = 10.0
    # aggregates / sets
    ms_per_object_hash: float = 0.6
    # communication (submit)
    ms_per_message: float = 150.0
    ms_per_byte: float = 0.002
    # generic output term
    ms_per_object_output: float = 1.0

    def scaled(self, factor: float) -> "GenericCoefficients":
        """A uniformly scaled copy (useful for modelling faster devices)."""
        values = {
            name: getattr(self, name) * factor
            for name in self.__dataclass_fields__
        }
        return GenericCoefficients(**values)


#: Coefficients for operators executed by the mediator itself: pure
#: in-memory processing, no device I/O.
MEDIATOR_COEFFICIENTS = GenericCoefficients(
    ms_scan_startup=1.0,
    ms_per_object_scanned=0.05,
    ms_index_startup=1.0,
    ms_per_object_index=0.06,
    ms_per_object_filter=0.02,
    ms_per_object_project=0.01,
    ms_per_pair_nested_loop=0.02,
    ms_sort_factor=0.03,
    ms_per_object_merge=0.02,
    ms_per_probe_index_join=0.06,
    ms_per_object_fetch=0.05,
    ms_per_object_hash=0.03,
    ms_per_message=150.0,
    ms_per_byte=0.002,
    ms_per_object_output=0.02,
)


class CoefficientSet:
    """Per-source calibrated coefficients with a shared default.

    The calibrating approach specializes the generic model "for a class of
    systems"; each registered wrapper may get its own fitted coefficients
    while unknown sources fall back to the defaults.
    """

    def __init__(self, default: GenericCoefficients | None = None) -> None:
        self.default = default or GenericCoefficients()
        self._per_source: dict[str, GenericCoefficients] = {}
        self.mediator = MEDIATOR_COEFFICIENTS

    def set_source(self, source: str, coefficients: GenericCoefficients) -> None:
        self._per_source[source] = coefficients

    def for_source(self, source: str | None) -> GenericCoefficients:
        if source is None:
            return self.mediator
        return self._per_source.get(source, self.default)

    def sources(self) -> list[str]:
        return sorted(self._per_source)


def _coeffs(ctx) -> GenericCoefficients:
    """Coefficients applicable at the node a formula is evaluating."""
    holder = ctx.coefficients
    if isinstance(holder, CoefficientSet):
        return holder.for_source(ctx.source)
    if isinstance(holder, GenericCoefficients):
        return holder
    return GenericCoefficients()


def _mediator_coeffs(ctx) -> GenericCoefficients:
    holder = ctx.coefficients
    if isinstance(holder, CoefficientSet):
        return holder.mediator
    return _coeffs(ctx)


def _parallel_children_total(ctx) -> float | None:
    """Parallel-aware TotalTime combinator for mediator-side binary nodes.

    Mirrors the executor's concurrent submit dispatch: when every child of
    a mediator-executed Join/Union reaches wrappers through Submit nodes,
    their wrapper waits overlap — the combined input cost is the
    list-scheduled makespan of the per-child wrapper shares plus the
    (serialized) per-branch communication.  Returns ``None`` when the
    additive §2.3 combination applies: option off, node owned by a
    wrapper, or some child never leaves the mediator.
    """
    options = ctx.options
    if not getattr(options, "parallel_submits", False) or ctx.source is not None:
        return None
    children = ctx.node.children
    if len(children) < 2:
        return None
    submits_per_child = [
        [d for d in child.walk() if isinstance(d, Submit)] for child in children
    ]
    if any(not submits for submits in submits_per_child):
        return None
    coeffs = _mediator_coeffs(ctx)
    waits: list[float] = []
    communication = 0.0
    for index, (child, submits) in enumerate(zip(children, submits_per_child)):
        total = ctx.child_value("TotalTime", index)
        comm = 0.0
        for submit in submits:
            size = float(ctx.estimation.value_of(submit, "TotalSize"))
            comm += 2.0 * coeffs.ms_per_message + size * coeffs.ms_per_byte
        comm = min(comm, total)
        communication += comm
        waits.append(total - comm)
    makespan = ParallelClock.makespan(
        waits, getattr(options, "max_concurrency", None)
    )
    return makespan + communication


# ---------------------------------------------------------------------------
# Predicate selectivity (native derivation, §2.3)
# ---------------------------------------------------------------------------


def _attribute_stats(ctx, attribute: AttributeRef) -> AttributeStats:
    stats = ctx.attribute_stats(attribute.collection, attribute.name)
    if stats is None:
        stats = ctx.estimation.estimator.default_attribute_stats(attribute.name)
    return stats


def predicate_selectivity(ctx, predicate: Predicate) -> float:
    """Estimate the fraction of input rows a predicate keeps.

    Conjunctions multiply, disjunctions use inclusion–exclusion, negation
    complements; comparisons use the uniform estimators of
    :mod:`repro.core.selectivity` over the catalog statistics, with §6's
    standard fallback values when statistics are missing.
    """
    if isinstance(predicate, TruePredicate):
        return 1.0
    if isinstance(predicate, And):
        return predicate_selectivity(ctx, predicate.left) * predicate_selectivity(
            ctx, predicate.right
        )
    if isinstance(predicate, Or):
        left = predicate_selectivity(ctx, predicate.left)
        right = predicate_selectivity(ctx, predicate.right)
        return min(1.0, left + right - left * right)
    if isinstance(predicate, Not):
        return max(0.0, 1.0 - predicate_selectivity(ctx, predicate.operand))
    if isinstance(predicate, Comparison):
        return _comparison_selectivity(ctx, predicate.normalized())
    return 1.0 / 3.0


def _comparison_selectivity(ctx, comparison: Comparison) -> float:
    if comparison.is_attr_attr:
        # Attribute-to-attribute restriction inside one collection.
        return 0.1
    if not comparison.is_attr_value:
        return 1.0 / 3.0
    attribute = comparison.left
    literal = comparison.right
    assert isinstance(attribute, AttributeRef) and isinstance(literal, Literal)
    stats = _attribute_stats(ctx, attribute)
    op = comparison.op
    if op == "=":
        return sel_mod.equality_selectivity(stats)
    if op == "!=":
        return sel_mod.inequality_selectivity(stats)
    if op in ("<", "<="):
        return sel_mod.range_selectivity(
            stats, None, literal.value, high_inclusive=(op == "<=")
        )
    return sel_mod.range_selectivity(
        stats, literal.value, None, low_inclusive=(op == ">=")
    )


def _single_indexed_comparison(ctx, node: PlanNode) -> Comparison | None:
    """The comparison enabling an index access path, if any.

    Requires the select to sit directly on a Scan (the access-path shape)
    and the restricted attribute to be exported as indexed.
    """
    if not isinstance(node, Select) or not isinstance(node.child, Scan):
        return None
    predicate = node.predicate
    comparisons = [
        c.normalized()
        for c in predicate.conjuncts()
        if isinstance(c, Comparison) and c.normalized().is_attr_value
    ]
    for comparison in comparisons:
        attribute = comparison.left
        assert isinstance(attribute, AttributeRef)
        stats = ctx.attribute_stats(attribute.collection, attribute.name)
        if stats is not None and stats.indexed:
            return comparison
    return None


# ---------------------------------------------------------------------------
# Native formula helpers
# ---------------------------------------------------------------------------


def _native(
    target: str,
    body: Callable[..., Value],
    label: str,
    child_req: tuple[str, ...] = (),
    own_req: tuple[str, ...] = (),
) -> PythonFormula:
    return PythonFormula(
        target,
        body,
        source=f"{target} = <generic:{label}>",
        child_requirements=frozenset(child_req),
        own_requirements=frozenset(own_req),
    )


def _time_next_formula() -> PythonFormula:
    """Catch-all ``TimeNext = (TotalTime - TimeFirst) / CountObject``."""

    def time_next(ctx) -> Value:
        total = ctx.own_value("TotalTime")
        first = ctx.own_value("TimeFirst")
        count = max(1.0, ctx.own_value("CountObject"))
        return max(0.0, (total - first)) / count

    return _native(
        "TimeNext",
        time_next,
        "avg-per-tuple",
        own_req=("TotalTime", "TimeFirst", "CountObject"),
    )


def _rule(pattern: OperatorPattern, formulas: list[PythonFormula], name: str) -> CostRule:
    return CostRule(head=pattern, formulas=list(formulas), name=name)


# ---------------------------------------------------------------------------
# Rules per operator
# ---------------------------------------------------------------------------


def _scan_rules() -> list[CostRule]:
    pattern = scan_pattern(var("C"))

    def count_object(ctx) -> Value:
        collection = ctx.match.bindings["C"]
        return float(ctx.estimation.estimator.stats_for(collection).count_object)

    def total_size(ctx) -> Value:
        collection = ctx.match.bindings["C"]
        return float(ctx.estimation.estimator.stats_for(collection).total_size)

    def time_first(ctx) -> Value:
        return _coeffs(ctx).ms_scan_startup

    def total_time(ctx) -> Value:
        coeffs = _coeffs(ctx)
        count = ctx.own_value("CountObject")
        return coeffs.ms_scan_startup + count * coeffs.ms_per_object_scanned

    return [
        _rule(
            pattern,
            [
                _native("CountObject", count_object, "scan-card"),
                _native("TotalSize", total_size, "scan-size"),
                _native("TimeFirst", time_first, "scan-first"),
                _native(
                    "TotalTime", total_time, "seq-scan", own_req=("CountObject",)
                ),
                _time_next_formula(),
            ],
            name="generic-scan",
        )
    ]


def _select_rules() -> list[CostRule]:
    pattern = select_pattern(var("C"))

    def count_object(ctx) -> Value:
        selectivity = predicate_selectivity(ctx, ctx.node.predicate)
        return ctx.child_value("CountObject") * selectivity

    def total_size(ctx) -> Value:
        return ctx.own_value("CountObject") * ctx.child_value("ObjectSize")

    def time_first_seq(ctx) -> Value:
        return ctx.child_value("TimeFirst")

    def total_time_seq(ctx) -> Value:
        coeffs = _coeffs(ctx)
        return (
            ctx.child_value("TotalTime")
            + ctx.child_value("CountObject") * coeffs.ms_per_object_filter
        )

    def total_time_index(ctx) -> Value:
        comparison = _single_indexed_comparison(ctx, ctx.node)
        if comparison is None:
            return NOT_APPLICABLE
        coeffs = _coeffs(ctx)
        selectivity = predicate_selectivity(ctx, ctx.node.predicate)
        base_count = ctx.child_value("CountObject")
        selected = selectivity * base_count
        return coeffs.ms_index_startup + selected * coeffs.ms_per_object_index

    def time_first_index(ctx) -> Value:
        if _single_indexed_comparison(ctx, ctx.node) is None:
            return NOT_APPLICABLE
        return _coeffs(ctx).ms_index_startup

    seq_rule = _rule(
        pattern,
        [
            _native(
                "CountObject", count_object, "select-card", child_req=("CountObject",)
            ),
            _native(
                "TotalSize",
                total_size,
                "select-size",
                child_req=("ObjectSize",),
                own_req=("CountObject",),
            ),
            _native(
                "TimeFirst", time_first_seq, "select-seq-first", child_req=("TimeFirst",)
            ),
            _native(
                "TotalTime",
                total_time_seq,
                "seq-filter",
                child_req=("TotalTime", "CountObject"),
            ),
            _time_next_formula(),
        ],
        name="generic-select-seq",
    )
    index_rule = _rule(
        pattern,
        [
            _native(
                "TotalTime",
                total_time_index,
                "index-scan",
                child_req=("CountObject",),
            ),
            _native("TimeFirst", time_first_index, "index-scan-first"),
        ],
        name="generic-select-index",
    )
    return [seq_rule, index_rule]


def _project_rules() -> list[CostRule]:
    pattern = unary_pattern("project", var("C"))

    def count_object(ctx) -> Value:
        return ctx.child_value("CountObject")

    def total_size(ctx) -> Value:
        node = ctx.node
        stats = ctx.primary_stats_or_none()
        if stats is not None and stats.attributes:
            fraction = min(1.0, len(node.attributes) / len(stats.attributes))
        else:
            fraction = 0.5
        return ctx.child_value("TotalSize") * fraction

    def time_first(ctx) -> Value:
        return ctx.child_value("TimeFirst")

    def total_time(ctx) -> Value:
        coeffs = _coeffs(ctx)
        return (
            ctx.child_value("TotalTime")
            + ctx.child_value("CountObject") * coeffs.ms_per_object_project
        )

    return [
        _rule(
            pattern,
            [
                _native(
                    "CountObject", count_object, "project-card", child_req=("CountObject",)
                ),
                _native(
                    "TotalSize", total_size, "project-size", child_req=("TotalSize",)
                ),
                _native(
                    "TimeFirst", time_first, "project-first", child_req=("TimeFirst",)
                ),
                _native(
                    "TotalTime",
                    total_time,
                    "project-time",
                    child_req=("TotalTime", "CountObject"),
                ),
                _time_next_formula(),
            ],
            name="generic-project",
        )
    ]


def _sort_rules() -> list[CostRule]:
    pattern = unary_pattern("sort", var("C"))

    def carry(variable: str) -> Callable[..., Value]:
        def body(ctx) -> Value:
            return ctx.child_value(variable)

        body.__name__ = f"carry_{variable}"
        return body

    def total_time(ctx) -> Value:
        coeffs = _coeffs(ctx)
        count = ctx.child_value("CountObject")
        return ctx.child_value("TotalTime") + coeffs.ms_sort_factor * count * math.log2(
            count + 2.0
        )

    def time_first(ctx) -> Value:
        # A sort is blocking: the first tuple appears only at the end
        # ("TimeFirst accounts for query start up time and, in particular,
        # sort operations", §2.3).
        return ctx.own_value("TotalTime")

    return [
        _rule(
            pattern,
            [
                _native(
                    "CountObject",
                    carry("CountObject"),
                    "sort-card",
                    child_req=("CountObject",),
                ),
                _native(
                    "TotalSize", carry("TotalSize"), "sort-size", child_req=("TotalSize",)
                ),
                _native(
                    "TotalTime",
                    total_time,
                    "sort-time",
                    child_req=("TotalTime", "CountObject"),
                ),
                _native("TimeFirst", time_first, "sort-first", own_req=("TotalTime",)),
                _time_next_formula(),
            ],
            name="generic-sort",
        )
    ]


def _distinct_rules() -> list[CostRule]:
    pattern = unary_pattern("distinct", var("C"))

    def count_object(ctx) -> Value:
        # Without value statistics of the full tuple, duplicate elimination
        # keeps everything (conservative upper bound).
        return ctx.child_value("CountObject")

    def total_size(ctx) -> Value:
        return ctx.own_value("CountObject") * ctx.child_value("ObjectSize")

    def total_time(ctx) -> Value:
        coeffs = _coeffs(ctx)
        return (
            ctx.child_value("TotalTime")
            + ctx.child_value("CountObject") * coeffs.ms_per_object_hash
        )

    def time_first(ctx) -> Value:
        return ctx.own_value("TotalTime")

    return [
        _rule(
            pattern,
            [
                _native(
                    "CountObject", count_object, "distinct-card", child_req=("CountObject",)
                ),
                _native(
                    "TotalSize",
                    total_size,
                    "distinct-size",
                    child_req=("ObjectSize",),
                    own_req=("CountObject",),
                ),
                _native(
                    "TotalTime",
                    total_time,
                    "distinct-time",
                    child_req=("TotalTime", "CountObject"),
                ),
                _native("TimeFirst", time_first, "distinct-first", own_req=("TotalTime",)),
                _time_next_formula(),
            ],
            name="generic-distinct",
        )
    ]


def _aggregate_rules() -> list[CostRule]:
    pattern = unary_pattern("aggregate", var("C"))

    def count_object(ctx) -> Value:
        node = ctx.node
        child_count = ctx.child_value("CountObject")
        if not node.group_by:
            return 1.0
        stats = ctx.primary_stats_or_none()
        groups = 1.0
        for attribute in node.group_by:
            attr_stats = None
            if stats is not None and attribute in stats.attributes:
                attr_stats = stats.attributes[attribute]
            if attr_stats is not None and attr_stats.count_distinct:
                groups *= attr_stats.count_distinct
            else:
                groups *= math.sqrt(max(1.0, child_count))
        return min(child_count, groups)

    def total_size(ctx) -> Value:
        node = ctx.node
        width = 16.0 * (len(node.group_by) + len(node.aggregates))
        return ctx.own_value("CountObject") * width

    def total_time(ctx) -> Value:
        coeffs = _coeffs(ctx)
        return (
            ctx.child_value("TotalTime")
            + ctx.child_value("CountObject") * coeffs.ms_per_object_hash
        )

    def time_first(ctx) -> Value:
        return ctx.own_value("TotalTime")

    return [
        _rule(
            pattern,
            [
                _native(
                    "CountObject", count_object, "agg-card", child_req=("CountObject",)
                ),
                _native("TotalSize", total_size, "agg-size", own_req=("CountObject",)),
                _native(
                    "TotalTime",
                    total_time,
                    "agg-time",
                    child_req=("TotalTime", "CountObject"),
                ),
                _native("TimeFirst", time_first, "agg-first", own_req=("TotalTime",)),
                _time_next_formula(),
            ],
            name="generic-aggregate",
        )
    ]


def _join_selectivity(ctx, node: Join) -> float:
    left_stats = ctx.attribute_stats(
        node.left_attribute.collection or _side_collection(node.left),
        node.left_attribute.name,
    )
    right_stats = ctx.attribute_stats(
        node.right_attribute.collection or _side_collection(node.right),
        node.right_attribute.name,
    )
    if left_stats is None and right_stats is None:
        return 0.01
    fallback = AttributeStats(name="?", count_distinct=None)
    return sel_mod.join_selectivity(left_stats or fallback, right_stats or fallback)


def _side_collection(node: PlanNode) -> str | None:
    return node.primary_collection()


def _index_join_applicable(ctx, node: Join) -> bool:
    """§2.3: "When an index is existing, the index join formula is
    selected" — applicable when the right input is a base scan with an
    exported index on the join attribute."""
    right = node.right
    if not isinstance(right, Scan):
        return False
    right_stats = ctx.attribute_stats(right.collection, node.right_attribute.name)
    return right_stats is not None and right_stats.indexed


def _join_rules() -> list[CostRule]:
    pattern = join_pattern(var("C1"), var("C2"))

    def count_object(ctx) -> Value:
        node = ctx.node
        selectivity = _join_selectivity(ctx, node)
        return (
            ctx.child_value("CountObject", 0)
            * ctx.child_value("CountObject", 1)
            * selectivity
        )

    def total_size(ctx) -> Value:
        width = ctx.child_value("ObjectSize", 0) + ctx.child_value("ObjectSize", 1)
        return ctx.own_value("CountObject") * width

    def total_time_nested(ctx) -> Value:
        # §2.3 precedence: the index-join formula is *selected* when an
        # index exists; only otherwise do nested-loop and sort-merge race.
        if _index_join_applicable(ctx, ctx.node):
            return NOT_APPLICABLE
        coeffs = _coeffs(ctx)
        n1 = ctx.child_value("CountObject", 0)
        n2 = ctx.child_value("CountObject", 1)
        inputs = _parallel_children_total(ctx)
        if inputs is None:
            inputs = ctx.child_value("TotalTime", 0) + ctx.child_value(
                "TotalTime", 1
            )
        return inputs + n1 * n2 * coeffs.ms_per_pair_nested_loop

    def total_time_sort_merge(ctx) -> Value:
        if _index_join_applicable(ctx, ctx.node):
            return NOT_APPLICABLE
        coeffs = _coeffs(ctx)
        n1 = ctx.child_value("CountObject", 0)
        n2 = ctx.child_value("CountObject", 1)
        sort_cost = coeffs.ms_sort_factor * (
            n1 * math.log2(n1 + 2.0) + n2 * math.log2(n2 + 2.0)
        )
        merge_cost = (n1 + n2) * coeffs.ms_per_object_merge
        inputs = _parallel_children_total(ctx)
        if inputs is None:
            inputs = ctx.child_value("TotalTime", 0) + ctx.child_value(
                "TotalTime", 1
            )
        return inputs + sort_cost + merge_cost

    def total_time_index(ctx) -> Value:
        node = ctx.node
        if not _index_join_applicable(ctx, node):
            return NOT_APPLICABLE
        right = node.right
        assert isinstance(right, Scan)
        right_stats = ctx.attribute_stats(right.collection, node.right_attribute.name)
        assert right_stats is not None
        coeffs = _coeffs(ctx)
        n1 = ctx.child_value("CountObject", 0)
        n2 = ctx.child_value("CountObject", 1)
        matches_per_probe = n2 / max(1.0, float(right_stats.count_distinct or n2))
        probe_cost = coeffs.ms_per_probe_index_join + (
            matches_per_probe * coeffs.ms_per_object_fetch
        )
        return ctx.child_value("TotalTime", 0) + n1 * probe_cost

    def time_first(ctx) -> Value:
        return ctx.child_value("TimeFirst", 0) + ctx.child_value("TimeFirst", 1)

    main_rule = _rule(
        pattern,
        [
            _native(
                "CountObject", count_object, "join-card", child_req=("CountObject",)
            ),
            _native(
                "TotalSize",
                total_size,
                "join-size",
                child_req=("ObjectSize",),
                own_req=("CountObject",),
            ),
            _native(
                "TotalTime",
                total_time_nested,
                "nested-loop-join",
                child_req=("TotalTime", "CountObject"),
            ),
            _native(
                "TimeFirst", time_first, "join-first", child_req=("TimeFirst",)
            ),
            _time_next_formula(),
        ],
        name="generic-join-nested-loop",
    )
    sort_merge_rule = _rule(
        pattern,
        [
            _native(
                "TotalTime",
                total_time_sort_merge,
                "sort-merge-join",
                child_req=("TotalTime", "CountObject"),
            )
        ],
        name="generic-join-sort-merge",
    )
    index_rule = _rule(
        pattern,
        [
            _native(
                "TotalTime",
                total_time_index,
                "index-join",
                child_req=("TotalTime", "CountObject"),
            )
        ],
        name="generic-join-index",
    )
    return [main_rule, sort_merge_rule, index_rule]


def _bindjoin_rules() -> list[CostRule]:
    pattern = unary_pattern("bindjoin", var("C"))

    def _inner_stats(ctx):
        node: BindJoin = ctx.node
        return ctx.stats_or_none(node.inner_collection)

    def _inner_attr_stats(ctx):
        node: BindJoin = ctx.node
        return ctx.attribute_stats(node.inner_collection, node.inner_attribute.name)

    def _distinct_keys(ctx) -> float:
        """Estimated distinct outer join-key values to probe with."""
        node: BindJoin = ctx.node
        outer_count = ctx.child_value("CountObject")
        outer_attr = ctx.attribute_stats(
            node.outer_attribute.collection or node.outer.primary_collection(),
            node.outer_attribute.name,
        )
        if outer_attr is not None and outer_attr.count_distinct:
            return min(outer_count, float(outer_attr.count_distinct))
        return outer_count

    def count_object(ctx) -> Value:
        node: BindJoin = ctx.node
        inner = _inner_stats(ctx)
        inner_count = (
            float(inner.count_object)
            if inner is not None
            else float(ctx.options.default_count_object)
        )
        inner_attr = _inner_attr_stats(ctx)
        distinct = float(
            inner_attr.count_distinct
            if inner_attr is not None and inner_attr.count_distinct
            else ctx.options.default_count_distinct
        )
        matches_per_key = inner_count / max(1.0, distinct)
        selectivity = 1.0
        if node.inner_filters is not None:
            selectivity = predicate_selectivity(ctx, node.inner_filters)
        return ctx.child_value("CountObject") * matches_per_key * selectivity

    def total_size(ctx) -> Value:
        inner = _inner_stats(ctx)
        inner_width = float(inner.object_size) if inner is not None else 100.0
        return ctx.own_value("CountObject") * (
            ctx.child_value("ObjectSize") + inner_width
        )

    def total_time(ctx) -> Value:
        node: BindJoin = ctx.node
        inner_attr = _inner_attr_stats(ctx)
        if inner_attr is None or not inner_attr.indexed:
            # Probing without an index means one inner scan per batch —
            # never competitive; let the classic join win.
            return NOT_APPLICABLE
        holder = ctx.coefficients
        inner_coeffs = (
            holder.for_source(node.wrapper)
            if isinstance(holder, CoefficientSet)
            else _coeffs(ctx)
        )
        mediator_coeffs = (
            holder.mediator if isinstance(holder, CoefficientSet) else _coeffs(ctx)
        )
        keys = _distinct_keys(ctx)
        inner = _inner_stats(ctx)
        inner_count = (
            float(inner.count_object)
            if inner is not None
            else float(ctx.options.default_count_object)
        )
        matches_per_key = inner_count / max(
            1.0, float(inner_attr.count_distinct or inner_count)
        )
        # Each probe is one index lookup at the inner source; the
        # calibrated per-selected-object index coefficient (fitted by the
        # [GST96] procedure) prices the retrieved objects.
        probe_cost = inner_coeffs.ms_index_startup / max(
            1.0, node.batch_size
        ) + matches_per_key * max(
            inner_coeffs.ms_per_object_index, inner_coeffs.ms_per_object_fetch
        )
        batches = math.ceil(keys / node.batch_size)
        communication = 2.0 * batches * mediator_coeffs.ms_per_message
        probe_time = keys * probe_cost
        if getattr(ctx.options, "parallel_submits", False) and batches > 1:
            # Probe batches dispatch as one wave: the inner-source waits
            # overlap (communication stays serialized at the mediator).
            batch_keys = [float(node.batch_size)] * (batches - 1)
            batch_keys.append(keys - node.batch_size * (batches - 1))
            probe_time = ParallelClock.makespan(
                [k * probe_cost for k in batch_keys],
                getattr(ctx.options, "max_concurrency", None),
            )
        return ctx.child_value("TotalTime") + communication + probe_time

    def time_first(ctx) -> Value:
        holder = ctx.coefficients
        mediator_coeffs = (
            holder.mediator if isinstance(holder, CoefficientSet) else _coeffs(ctx)
        )
        return ctx.child_value("TotalTime") + mediator_coeffs.ms_per_message

    return [
        _rule(
            pattern,
            [
                _native(
                    "CountObject",
                    count_object,
                    "bindjoin-card",
                    child_req=("CountObject",),
                ),
                _native(
                    "TotalSize",
                    total_size,
                    "bindjoin-size",
                    child_req=("ObjectSize",),
                    own_req=("CountObject",),
                ),
                _native(
                    "TotalTime",
                    total_time,
                    "bind-join",
                    child_req=("TotalTime", "CountObject"),
                ),
                _native(
                    "TimeFirst", time_first, "bindjoin-first", child_req=("TotalTime",)
                ),
                _time_next_formula(),
            ],
            name="generic-bindjoin",
        )
    ]


def _union_rules() -> list[CostRule]:
    pattern = union_pattern(var("C1"), var("C2"))

    def count_object(ctx) -> Value:
        return ctx.child_value("CountObject", 0) + ctx.child_value("CountObject", 1)

    def total_size(ctx) -> Value:
        return ctx.child_value("TotalSize", 0) + ctx.child_value("TotalSize", 1)

    def total_time(ctx) -> Value:
        coeffs = _coeffs(ctx)
        count = ctx.own_value("CountObject")
        inputs = _parallel_children_total(ctx)
        if inputs is None:
            inputs = ctx.child_value("TotalTime", 0) + ctx.child_value(
                "TotalTime", 1
            )
        return inputs + count * coeffs.ms_per_object_output

    def time_first(ctx) -> Value:
        return min(ctx.child_value("TimeFirst", 0), ctx.child_value("TimeFirst", 1))

    return [
        _rule(
            pattern,
            [
                _native(
                    "CountObject", count_object, "union-card", child_req=("CountObject",)
                ),
                _native(
                    "TotalSize", total_size, "union-size", child_req=("TotalSize",)
                ),
                _native(
                    "TotalTime",
                    total_time,
                    "union-time",
                    child_req=("TotalTime",),
                    own_req=("CountObject",),
                ),
                _native(
                    "TimeFirst", time_first, "union-first", child_req=("TimeFirst",)
                ),
                _time_next_formula(),
            ],
            name="generic-union",
        )
    ]


def _submit_rules() -> list[CostRule]:
    pattern = unary_pattern("submit", var("C"))

    def count_object(ctx) -> Value:
        return ctx.child_value("CountObject")

    def total_size(ctx) -> Value:
        return ctx.child_value("TotalSize")

    def total_time(ctx) -> Value:
        coeffs = _coeffs(ctx)
        return (
            ctx.child_value("TotalTime")
            + 2.0 * coeffs.ms_per_message
            + ctx.child_value("TotalSize") * coeffs.ms_per_byte
        )

    def time_first(ctx) -> Value:
        return ctx.child_value("TimeFirst") + _coeffs(ctx).ms_per_message

    return [
        _rule(
            pattern,
            [
                _native(
                    "CountObject", count_object, "submit-card", child_req=("CountObject",)
                ),
                _native(
                    "TotalSize", total_size, "submit-size", child_req=("TotalSize",)
                ),
                _native(
                    "TotalTime",
                    total_time,
                    "submit-time",
                    child_req=("TotalTime", "TotalSize"),
                ),
                _native(
                    "TimeFirst", time_first, "submit-first", child_req=("TimeFirst",)
                ),
                _time_next_formula(),
            ],
            name="generic-submit",
        )
    ]


def _scatter_rules() -> list[CostRule]:
    """Cost of fanning one subquery out to the shards of a partition.

    The scatter is mediator-executed: its branches dispatch as one
    submit wave, so input time is the PR 1 list-scheduled makespan of
    the per-branch wrapper waits plus the (serialized) per-branch
    communication — the same decomposition as
    :func:`_parallel_children_total` — scaled by a fan-out factor that
    interpolates from 1 (single pruned branch) to
    :data:`SCATTER_NETWORK_MULTIPLIER` (all ``total_shards`` branches).
    """
    pattern = unary_pattern("scatter", var("C"))

    def count_object(ctx) -> Value:
        return sum(
            ctx.child_value("CountObject", index)
            for index in range(len(ctx.node.children))
        )

    def total_size(ctx) -> Value:
        return sum(
            ctx.child_value("TotalSize", index)
            for index in range(len(ctx.node.children))
        )

    def _branch_costs(ctx) -> tuple[list[float], float]:
        coeffs = _mediator_coeffs(ctx)
        waits: list[float] = []
        communication = 0.0
        for index in range(len(ctx.node.children)):
            total = ctx.child_value("TotalTime", index)
            size = ctx.child_value("TotalSize", index)
            comm = min(
                total, 2.0 * coeffs.ms_per_message + size * coeffs.ms_per_byte
            )
            communication += comm
            waits.append(total - comm)
        return waits, communication

    def _fanout_overhead(node) -> float:
        fanned = len(node.branches)
        total = node.total_shards
        return 1.0 + (SCATTER_NETWORK_MULTIPLIER - 1.0) * (fanned - 1) / max(
            1, total - 1
        )

    def total_time(ctx) -> Value:
        waits, communication = _branch_costs(ctx)
        makespan = ParallelClock.makespan(
            waits, getattr(ctx.options, "max_concurrency", None)
        )
        return makespan + _fanout_overhead(ctx.node) * communication

    def time_first(ctx) -> Value:
        # A lone pruned branch streams like the plain submit it wraps;
        # a true fan-out gathers in branch order, so conservatively the
        # first row waits for the whole wave.
        if len(ctx.node.children) == 1:
            return ctx.child_value("TimeFirst", 0)
        return ctx.own_value("TotalTime")

    return [
        _rule(
            pattern,
            [
                _native(
                    "CountObject",
                    count_object,
                    "scatter-card",
                    child_req=("CountObject",),
                ),
                _native(
                    "TotalSize", total_size, "scatter-size", child_req=("TotalSize",)
                ),
                _native(
                    "TotalTime",
                    total_time,
                    "scatter-wave",
                    child_req=("TotalTime", "TotalSize"),
                ),
                _native(
                    "TimeFirst",
                    time_first,
                    "scatter-first",
                    child_req=("TimeFirst",),
                    own_req=("TotalTime",),
                ),
                _time_next_formula(),
            ],
            name="generic-scatter",
        )
    ]


def all_generic_rules() -> list[CostRule]:
    """Fresh instances of every generic-model rule."""
    return (
        _scan_rules()
        + _select_rules()
        + _project_rules()
        + _sort_rules()
        + _distinct_rules()
        + _aggregate_rules()
        + _join_rules()
        + _bindjoin_rules()
        + _union_rules()
        + _submit_rules()
        + _scatter_rules()
    )


def install_generic_model(repository: RuleRepository) -> int:
    """Install the generic model at default scope.  Returns rule count.

    "The mediator default cost model guarantees that at least one formula
    is found for every variable for every node" (§4.2) — after this call
    that guarantee holds.
    """
    rules = all_generic_rules()
    for generic_rule in rules:
        repository.add_default_rule(generic_rule)
    return len(rules)


def install_local_model(repository: RuleRepository) -> int:
    """Install local-scope copies for mediator-executed operators.

    Local rules shadow the default scope only for nodes the mediator runs
    itself (source ``None``); their coefficients come from
    ``CoefficientSet.mediator`` automatically via ``_coeffs``, so the rule
    bodies are identical — what differs is the coefficient set the context
    hands out.  Installing them still matters for the paper's architecture
    point: the mediator's physical operators occupy a distinct scope level
    (§4.1 footnote), and wrapper rules must never apply to them.
    """
    rules = all_generic_rules()
    for generic_rule in rules:
        generic_rule.name = generic_rule.name.replace("generic-", "local-")
        repository.add_local_rule(generic_rule)
    return len(rules)


def standard_repository(use_dispatch_index: bool = True) -> RuleRepository:
    """A repository with the generic + local models installed."""
    repository = RuleRepository(use_dispatch_index=use_dispatch_index)
    install_generic_model(repository)
    install_local_model(repository)
    return repository
